"""Setup shim enabling legacy editable installs (offline env lacks wheel)."""
from setuptools import setup

setup()
