"""Tests for repro.core.superset (topic reduction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.superset import (cluster_topics_js,
                                 reduce_by_count_frequency,
                                 reduce_by_document_frequency,
                                 select_final_topics,
                                 topic_document_frequencies,
                                 topic_document_frequencies_from_counts)


class TestThetaDocumentFrequencies:
    def test_counts_documents_over_threshold(self):
        theta = np.array([[0.9, 0.1], [0.5, 0.5], [0.02, 0.98]])
        freqs = topic_document_frequencies(theta, min_proportion=0.4)
        np.testing.assert_array_equal(freqs, [2, 2])

    def test_validates_proportion(self):
        with pytest.raises(ValueError, match="min_proportion"):
            topic_document_frequencies(np.ones((1, 1)), min_proportion=2.0)

    def test_validates_ndim(self):
        with pytest.raises(ValueError, match="2-d"):
            topic_document_frequencies(np.ones(3))


class TestCountDocumentFrequencies:
    def test_zero_for_unassigned_topics(self):
        nd = np.array([[3.0, 0.0], [2.0, 0.0]])
        lengths = np.array([3.0, 2.0])
        freqs = topic_document_frequencies_from_counts(nd, lengths)
        np.testing.assert_array_equal(freqs, [2, 0])

    def test_proportion_threshold(self):
        nd = np.array([[9.0, 1.0]])
        lengths = np.array([10.0])
        # topic 1 holds 10% of the document
        freqs = topic_document_frequencies_from_counts(
            nd, lengths, min_proportion=0.2)
        np.testing.assert_array_equal(freqs, [1, 0])

    def test_minimum_one_token(self):
        nd = np.array([[1.0, 0.0]])
        lengths = np.array([100.0])
        freqs = topic_document_frequencies_from_counts(
            nd, lengths, min_proportion=0.0)
        np.testing.assert_array_equal(freqs, [1, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="doc_lengths"):
            topic_document_frequencies_from_counts(
                np.ones((2, 2)), np.ones(3))


class TestReduction:
    def test_reduce_by_document_frequency(self):
        theta = np.array([[0.8, 0.15, 0.05],
                          [0.7, 0.25, 0.05]])
        kept = reduce_by_document_frequency(theta, min_documents=2,
                                            min_proportion=0.1)
        np.testing.assert_array_equal(kept, [0, 1])

    def test_reduce_by_count_frequency(self):
        nd = np.array([[5.0, 1.0, 0.0], [4.0, 2.0, 0.0]])
        lengths = np.array([6.0, 6.0])
        kept = reduce_by_count_frequency(nd, lengths, min_documents=2,
                                         min_proportion=0.0)
        np.testing.assert_array_equal(kept, [0, 1])

    def test_negative_min_documents(self):
        with pytest.raises(ValueError, match="min_documents"):
            reduce_by_count_frequency(np.ones((1, 1)), np.ones(1),
                                      min_documents=-1)


class TestClusterTopicsJs:
    def test_groups_identical_topics(self, rng):
        base_a = np.array([0.7, 0.1, 0.1, 0.1])
        base_b = np.array([0.1, 0.1, 0.1, 0.7])
        phi = np.vstack([base_a, base_a, base_b, base_b])
        labels, centroids = cluster_topics_js(phi, 2, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        np.testing.assert_allclose(centroids.sum(axis=1), 1.0)

    def test_single_cluster(self):
        phi = np.array([[0.5, 0.5], [0.9, 0.1]])
        labels, centroids = cluster_topics_js(phi, 1, seed=0)
        np.testing.assert_array_equal(labels, [0, 0])

    def test_cluster_count_validation(self):
        with pytest.raises(ValueError, match="num_clusters"):
            cluster_topics_js(np.array([[1.0]]), 5)

    def test_deterministic(self):
        rng_phi = np.random.default_rng(1).dirichlet(np.ones(6), size=8)
        a, _ = cluster_topics_js(rng_phi, 3, seed=4)
        b, _ = cluster_topics_js(rng_phi, 3, seed=4)
        np.testing.assert_array_equal(a, b)


class TestSelectFinalTopics:
    def test_returns_survivors_when_few(self):
        theta = np.array([[0.9, 0.05, 0.05],
                          [0.85, 0.1, 0.05]])
        phi = np.random.default_rng(0).dirichlet(np.ones(4), size=3)
        kept = select_final_topics(theta, phi, target_count=2,
                                   min_documents=2, min_proportion=0.5)
        np.testing.assert_array_equal(kept, [0])

    def test_clusters_when_too_many(self):
        rng = np.random.default_rng(3)
        theta = rng.dirichlet(np.ones(6), size=10)
        phi = np.vstack([rng.dirichlet([20, 1, 1, 1], size=3),
                         rng.dirichlet([1, 1, 1, 20], size=3)])
        kept = select_final_topics(theta, phi, target_count=2,
                                   min_documents=0, min_proportion=0.0)
        assert 1 <= kept.size <= 2

    def test_empty_survivors_fallback(self):
        theta = np.array([[0.5, 0.5]])
        phi = np.array([[0.5, 0.5], [0.5, 0.5]])
        kept = select_final_topics(theta, phi, target_count=1,
                                   min_documents=99)
        assert kept.size == 1

    def test_target_validation(self):
        with pytest.raises(ValueError, match="target_count"):
            select_final_topics(np.ones((1, 1)), np.ones((1, 1)), 0)
