"""Shared fixtures: small corpora and knowledge sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import SyntheticWikipedia
from repro.text.corpus import Corpus


@pytest.fixture
def tiny_corpus() -> Corpus:
    """The paper's two-document case-study corpus."""
    return Corpus.from_texts(
        ["pencil pencil umpire", "ruler ruler baseball"], tokenizer=None)


@pytest.fixture
def small_source() -> KnowledgeSource:
    """A three-article knowledge source with distinctive vocabularies."""
    return KnowledgeSource({
        "School Supplies": ("pencil pencil pencil ruler ruler eraser "
                            "notebook paper pen crayon").split(),
        "Baseball": ("baseball baseball umpire umpire bat ball pitcher "
                     "inning glove base").split(),
        "Cooking": ("recipe oven flour sugar butter saucepan whisk bake "
                    "bake knead").split(),
    })


@pytest.fixture
def wiki_source() -> KnowledgeSource:
    """A synthetic-Wikipedia source of five pseudo-word topics."""
    wiki = SyntheticWikipedia([f"Topic {i}" for i in range(5)],
                              article_length=120, core_vocab_size=10,
                              background_vocab_size=40, seed=11)
    return wiki.knowledge_source()


@pytest.fixture
def wiki_corpus(wiki_source: KnowledgeSource) -> Corpus:
    """A 40-document corpus sampled from the wiki_source articles."""
    rng = np.random.default_rng(7)
    texts = []
    labels = wiki_source.labels
    for index in range(40):
        article = wiki_source.tokens(labels[index % len(labels)])
        texts.append(" ".join(rng.choice(article, size=30)))
    return Corpus.from_texts(texts, tokenizer=None)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
