"""Tests for the baseline models: LDA, EDA, CTM and the shared base API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.base import (FittedTopicModel, default_alpha,
                               default_beta)
from repro.models.ctm import CTM, concept_word_mask
from repro.models.eda import EDA
from repro.models.lda import LDA
from repro.text.vocabulary import Vocabulary


class TestDefaults:
    def test_paper_priors(self):
        assert default_alpha(50) == 1.0       # 50 / T
        assert default_beta(200) == 1.0       # 200 / V

    def test_validation(self):
        with pytest.raises(ValueError):
            default_alpha(0)
        with pytest.raises(ValueError):
            default_beta(0)


class TestFittedTopicModel:
    def _make(self) -> FittedTopicModel:
        vocab = Vocabulary.from_tokens(["a", "b", "c"])
        phi = np.array([[0.7, 0.2, 0.1], [0.1, 0.2, 0.7]])
        theta = np.array([[0.5, 0.5]])
        return FittedTopicModel(
            phi=phi, theta=theta,
            assignments=[np.array([0, 1, 1])],
            vocabulary=vocab, topic_labels=("X", None))

    def test_top_words(self):
        model = self._make()
        assert model.top_words(0, 2) == ["a", "b"]
        assert model.top_words(1, 1) == ["c"]

    def test_label_accessors(self):
        model = self._make()
        assert model.label_of(0) == "X"
        assert model.label_of(1) is None
        assert model.labeled_topic_indices() == [0]

    def test_topics_used(self):
        model = self._make()
        assert model.topics_used(min_tokens=1) == [0, 1]
        assert model.topics_used(min_tokens=2) == [1]

    def test_flat_assignments(self):
        np.testing.assert_array_equal(self._make().flat_assignments(),
                                      [0, 1, 1])

    def test_default_labels_all_none(self):
        vocab = Vocabulary.from_tokens(["a"])
        model = FittedTopicModel(phi=np.array([[1.0]]),
                                 theta=np.array([[1.0]]),
                                 assignments=[], vocabulary=vocab)
        assert model.topic_labels == (None,)

    def test_shape_validation(self):
        vocab = Vocabulary.from_tokens(["a"])
        with pytest.raises(ValueError, match="topics"):
            FittedTopicModel(phi=np.ones((2, 1)) / 1,
                             theta=np.ones((1, 3)) / 3,
                             assignments=[], vocabulary=vocab)

    def test_label_count_validation(self):
        vocab = Vocabulary.from_tokens(["a"])
        with pytest.raises(ValueError, match="labels"):
            FittedTopicModel(phi=np.array([[1.0]]),
                             theta=np.array([[1.0]]), assignments=[],
                             vocabulary=vocab, topic_labels=("a", "b"))


class TestLDA:
    def test_output_shapes(self, wiki_corpus):
        fitted = LDA(3, alpha=0.5, beta=0.1).fit(wiki_corpus,
                                                 iterations=5, seed=0)
        assert fitted.phi.shape == (3, wiki_corpus.vocab_size)
        assert fitted.theta.shape == (len(wiki_corpus), 3)

    def test_distributions_normalized(self, wiki_corpus):
        fitted = LDA(3).fit(wiki_corpus, iterations=5, seed=0)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0)
        np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)

    def test_no_labels(self, wiki_corpus):
        fitted = LDA(2).fit(wiki_corpus, iterations=2, seed=0)
        assert all(label is None for label in fitted.topic_labels)

    def test_deterministic(self, wiki_corpus):
        a = LDA(3).fit(wiki_corpus, iterations=5, seed=9)
        b = LDA(3).fit(wiki_corpus, iterations=5, seed=9)
        np.testing.assert_array_equal(a.flat_assignments(),
                                      b.flat_assignments())

    def test_log_likelihood_improves(self, wiki_corpus):
        fitted = LDA(5, alpha=0.5, beta=0.1).fit(
            wiki_corpus, iterations=25, seed=1,
            track_log_likelihood=True)
        lls = fitted.log_likelihoods
        assert lls[-1] > lls[0]

    def test_snapshots(self, wiki_corpus):
        fitted = LDA(2).fit(wiki_corpus, iterations=5, seed=0,
                            snapshot_iterations=[1, 3])
        assert set(fitted.metadata["snapshots"]) == {1, 3}

    def test_separates_planted_topics(self, wiki_source, wiki_corpus):
        """LDA should discover roughly the planted per-article structure."""
        fitted = LDA(5, alpha=0.5, beta=0.1).fit(wiki_corpus,
                                                 iterations=40, seed=3)
        # Each fitted topic's top words should be dominated by one article.
        counts = wiki_source.count_matrix(wiki_corpus.vocabulary)
        hits = 0
        for topic in range(5):
            ids = fitted.top_word_ids(topic, 5)
            per_article = counts[:, ids].sum(axis=1)
            hits += per_article.max() >= 0.6 * per_article.sum()
        assert hits >= 3

    def test_invalid_topic_count(self):
        with pytest.raises(ValueError, match="num_topics"):
            LDA(0)

    def test_invalid_priors(self, wiki_corpus):
        with pytest.raises(ValueError, match="alpha and beta"):
            LDA(2, alpha=-1).fit(wiki_corpus, iterations=1, seed=0)


class TestEDA:
    def test_phi_fixed_to_source(self, wiki_source, wiki_corpus):
        fitted = EDA(wiki_source).fit(wiki_corpus, iterations=5, seed=0)
        counts = wiki_source.count_matrix(wiki_corpus.vocabulary)
        expected = (counts + 0.01) / (counts + 0.01).sum(axis=1,
                                                         keepdims=True)
        np.testing.assert_allclose(fitted.phi, expected)

    def test_labels_from_source(self, wiki_source, wiki_corpus):
        fitted = EDA(wiki_source).fit(wiki_corpus, iterations=3, seed=0)
        assert fitted.topic_labels == wiki_source.labels

    def test_classifies_generated_documents(self, wiki_source,
                                            wiki_corpus):
        fitted = EDA(wiki_source, alpha=0.5).fit(wiki_corpus,
                                                 iterations=20, seed=0)
        # Documents were generated round-robin from the 5 articles; theta
        # should put its argmax on the generating article most of the time.
        correct = sum(
            1 for index in range(len(wiki_corpus))
            if fitted.theta[index].argmax() == index % 5)
        assert correct >= 0.8 * len(wiki_corpus)

    def test_theta_normalized(self, wiki_source, wiki_corpus):
        fitted = EDA(wiki_source).fit(wiki_corpus, iterations=3, seed=0)
        np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)


class TestConceptWordMask:
    def test_mask_top_words_only(self, small_source):
        vocab = small_source.vocabulary()
        mask = concept_word_mask(small_source, vocab, top_n_words=2)
        assert mask.shape == (len(vocab), 3)
        assert mask[vocab["pencil"], 0]
        # top-2 of School Supplies are pencil (3) and ruler (2)
        assert mask[:, 0].sum() == 2

    def test_validation(self, small_source):
        with pytest.raises(ValueError, match="top_n_words"):
            concept_word_mask(small_source, small_source.vocabulary(), 0)


class TestCTM:
    def test_concept_phi_respects_mask(self, small_source, tiny_corpus):
        fitted = CTM(small_source, num_free_topics=0, top_n_words=3).fit(
            tiny_corpus, iterations=5, seed=0)
        mask = concept_word_mask(small_source, tiny_corpus.vocabulary, 3)
        outside = fitted.phi * (~mask.T.astype(bool))
        # Words outside a concept's bag carry (almost) no probability.
        assert outside.max() < 1e-9 or np.allclose(
            fitted.phi[outside.max(axis=1) > 0].sum(axis=1), 1.0)

    def test_free_topics_unrestricted(self, small_source, wiki_corpus):
        fitted = CTM(small_source, num_free_topics=2, top_n_words=5).fit(
            wiki_corpus, iterations=3, seed=0)
        assert fitted.num_topics == 2 + len(small_source)
        assert fitted.topic_labels[:2] == (None, None)
        assert fitted.topic_labels[2:] == small_source.labels

    def test_phi_rows_normalized(self, small_source, tiny_corpus):
        fitted = CTM(small_source, num_free_topics=1, top_n_words=3).fit(
            tiny_corpus, iterations=5, seed=0)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0)

    def test_invalid_free_topics(self, small_source):
        with pytest.raises(ValueError, match="num_free_topics"):
            CTM(small_source, num_free_topics=-1)

    def test_word_outside_all_bags_still_sampled(self, small_source):
        """A corpus word in no concept bag must not crash the sampler."""
        from repro.text.corpus import Corpus
        corpus = Corpus.from_texts(["pencil zzz zzz baseball"],
                                   tokenizer=None)
        fitted = CTM(small_source, num_free_topics=0, top_n_words=2).fit(
            corpus, iterations=5, seed=0)
        assert fitted.phi.shape[0] == 3
