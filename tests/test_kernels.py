"""Tests for repro.core.kernels (Equations 2, 3 and 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import SourceTopicsKernel
from repro.core.priors import SourcePrior
from repro.sampling.integration import LambdaGrid
from repro.sampling.state import GibbsState


@pytest.fixture
def setup(small_source, tiny_corpus):
    prior = SourcePrior(small_source, tiny_corpus.vocabulary)
    return prior, tiny_corpus


def _kernel(prior, corpus, num_free, grid, rng_seed=0):
    tables = prior.grid_tables(grid.nodes)
    state = GibbsState(corpus, num_free + prior.num_topics)
    state.initialize_random(np.random.default_rng(rng_seed))
    kernel = SourceTopicsKernel(state, num_free=num_free, alpha=0.5,
                                beta=0.1, tables=tables, grid=grid)
    return state, kernel


class TestSingleNodeEquivalence:
    """With one grid node the kernel must equal the closed-form
    fixed-delta expressions of Equation 2."""

    def test_weights_match_manual_formula(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.fixed(1.0)
        state, kernel = _kernel(prior, corpus, num_free=0, grid=grid)
        delta = prior.hyperparameters
        word, doc = int(state.words[0]), int(state.doc_ids[0])
        state.decrement(0)
        expected = ((state.nw[word] + delta[:, word])
                    / (state.nt + delta.sum(axis=1))
                    * (state.nd[doc] + 0.5))
        np.testing.assert_allclose(kernel.weights(word, doc), expected,
                                   rtol=1e-12)
        state.increment(0, 0)

    def test_phi_matches_equation_one(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.fixed(1.0)
        state, kernel = _kernel(prior, corpus, num_free=0, grid=grid)
        delta = prior.hyperparameters
        expected = ((state.nw + delta.T)
                    / (state.nt + delta.sum(axis=1))).T
        np.testing.assert_allclose(kernel.phi(), expected, rtol=1e-12)


class TestMixedLayout:
    def test_free_topics_use_symmetric_beta(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.fixed(1.0)
        state, kernel = _kernel(prior, corpus, num_free=2, grid=grid)
        word, doc = int(state.words[0]), int(state.doc_ids[0])
        state.decrement(0)
        weights = kernel.weights(word, doc)
        vocab_size = corpus.vocab_size
        expected_free = ((state.nw[word, :2] + 0.1)
                         / (state.nt[:2] + 0.1 * vocab_size)
                         * (state.nd[doc, :2] + 0.5))
        np.testing.assert_allclose(weights[:2], expected_free, rtol=1e-12)
        state.increment(0, 0)

    def test_phi_rows_all_normalized(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=5)
        _, kernel = _kernel(prior, corpus, num_free=2, grid=grid)
        np.testing.assert_allclose(kernel.phi().sum(axis=1), 1.0,
                                   atol=1e-9)


class TestGridIntegration:
    def test_weights_are_weighted_average_over_nodes(self, setup):
        prior, corpus = setup
        grid = LambdaGrid(nodes=np.array([0.0, 1.0]),
                          weights=np.array([0.3, 0.7]))
        state, kernel = _kernel(prior, corpus, num_free=0, grid=grid)
        word, doc = int(state.words[0]), int(state.doc_ids[0])
        state.decrement(0)
        combined = kernel.weights(word, doc)
        parts = []
        for node in (0.0, 1.0):
            delta = prior.delta(node)
            parts.append((state.nw[word] + delta[:, word])
                         / (state.nt + delta.sum(axis=1)))
        expected = (0.3 * parts[0] + 0.7 * parts[1]) \
            * (state.nd[doc] + 0.5)
        np.testing.assert_allclose(combined, expected, rtol=1e-12)
        state.increment(0, 0)

    def test_log_likelihood_finite(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=4)
        _, kernel = _kernel(prior, corpus, num_free=1, grid=grid)
        assert np.isfinite(kernel.log_likelihood())

    def test_log_likelihood_single_node_matches_closed_form(self, setup):
        from repro.sampling.gibbs import \
            asymmetric_dirichlet_log_likelihood
        prior, corpus = setup
        grid = LambdaGrid.fixed(1.0)
        state, kernel = _kernel(prior, corpus, num_free=0, grid=grid)
        expected = asymmetric_dirichlet_log_likelihood(
            state.nw, state.nt, prior.hyperparameters)
        assert kernel.log_likelihood() == pytest.approx(expected,
                                                        rel=1e-9)


class TestValidation:
    def test_rejects_bad_split(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.fixed(1.0)
        tables = prior.grid_tables(grid.nodes)
        state = GibbsState(corpus, prior.num_topics)  # no room for free
        state.initialize_random(np.random.default_rng(0))
        with pytest.raises(ValueError, match="invalid split"):
            SourceTopicsKernel(state, num_free=prior.num_topics,
                               alpha=0.5, beta=0.1, tables=tables,
                               grid=grid)

    def test_rejects_node_count_mismatch(self, setup):
        prior, corpus = setup
        tables = prior.grid_tables(np.array([1.0]))
        state = GibbsState(corpus, prior.num_topics)
        state.initialize_random(np.random.default_rng(0))
        with pytest.raises(ValueError, match="nodes"):
            SourceTopicsKernel(state, num_free=0, alpha=0.5, beta=0.1,
                               tables=tables,
                               grid=LambdaGrid.from_prior(0.5, 0.5, 3))

    def test_rejects_nonpositive_priors(self, setup):
        prior, corpus = setup
        grid = LambdaGrid.fixed(1.0)
        tables = prior.grid_tables(grid.nodes)
        state = GibbsState(corpus, prior.num_topics)
        state.initialize_random(np.random.default_rng(0))
        with pytest.raises(ValueError, match="positive"):
            SourceTopicsKernel(state, num_free=0, alpha=0.0, beta=0.1,
                               tables=tables, grid=grid)
