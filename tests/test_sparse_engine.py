"""Statistical equivalence of the sparse bucketed sweep engine.

The sparse engine (`repro.sampling.sparse_engine`) reassociates the
per-topic weight sums into buckets, so — unlike the fast engine — it is
not draw-for-draw identical to the reference.  Its contract is pinned in
three layers:

* **decomposition oracle**: each sparse path's bucket formulas,
  assembled into a dense vector, must equal the kernel's weights up to
  floating-point reassociation (this is the per-token conditional
  distribution, so it pins correctness of every draw);
* **chain validity**: sweeps preserve the count-matrix invariants and
  the RNG stream (chunk boundaries included);
* **distributional checks**: chains driven by the sparse engine land on
  the same posterior summaries as reference chains;

plus draw-for-draw equality with the reference for kernels that fall
back to the fast engine (CTM, custom kernels).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import SourceTopicsKernel
from repro.core.priors import SourcePrior
from repro.models.ctm import CtmKernel, concept_word_mask
from repro.models.eda import EdaKernel
from repro.models.lda import LdaKernel
from repro.sampling.gibbs import (ENGINES, CollapsedGibbsSampler,
                                  TopicWeightKernel)
from repro.sampling.integration import LambdaGrid
from repro.sampling.sparse_engine import SparseSweepEngine
from repro.sampling.state import GibbsState

INIT_SEED = 3
DRAW_SEED = 11


def make_state(corpus, num_topics, seed=INIT_SEED):
    state = GibbsState(corpus, num_topics)
    state.initialize_random(np.random.default_rng(seed))
    return state


def eda_phi(source, corpus):
    from repro.knowledge.distributions import source_hyperparameters
    counts = source.count_matrix(corpus.vocabulary)
    smoothed = source_hyperparameters(counts, 0.01)
    return smoothed / smoothed.sum(axis=1, keepdims=True)


def source_kernel_factory(source, corpus, num_free, grid):
    prior = SourcePrior(source, corpus.vocabulary)
    tables = prior.grid_tables(grid.nodes)
    return (lambda s: SourceTopicsKernel(
        s, num_free=num_free, alpha=0.5, beta=0.1, tables=tables,
        grid=grid), num_free + prior.num_topics)


def assert_decomposition_matches(state, kernel, rtol=1e-9):
    """The bucket decomposition must reproduce kernel.weights for every
    distinct (word, doc) pair of the corpus."""
    path = kernel.sparse_path()
    path.begin_sweep()
    seen = set()
    for token in range(state.num_tokens):
        pair = (int(state.words[token]), int(state.doc_ids[token]))
        if pair in seen:
            continue
        seen.add(pair)
        np.testing.assert_allclose(
            path.dense_weights(*pair), kernel.weights(*pair), rtol=rtol)


class TestDecompositionOracle:
    def test_lda(self, wiki_corpus):
        state = make_state(wiki_corpus, 6)
        assert_decomposition_matches(state, LdaKernel(state, 0.5, 0.1))

    def test_eda(self, wiki_source, wiki_corpus):
        state = make_state(wiki_corpus, len(wiki_source))
        phi = eda_phi(wiki_source, wiki_corpus)
        assert_decomposition_matches(state, EdaKernel(state, phi, 0.5))

    def test_source_bijective(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 5))
        state = make_state(wiki_corpus, num_topics)
        assert_decomposition_matches(state, make(state))

    def test_source_mixture(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 3, LambdaGrid.fixed(0.7))
        state = make_state(wiki_corpus, num_topics)
        assert_decomposition_matches(state, make(state))

    def test_source_full_grid_small(self, small_source, tiny_corpus):
        make, num_topics = source_kernel_factory(
            small_source, tiny_corpus, 1,
            LambdaGrid.from_prior(0.7, 0.3, 4))
        state = make_state(tiny_corpus, num_topics)
        assert_decomposition_matches(state, make(state))


class TestChainValidity:
    def run_sparse(self, corpus, make_kernel, num_topics, sweeps=4):
        state = make_state(corpus, num_topics)
        kernel = make_kernel(state)
        sampler = CollapsedGibbsSampler(
            state, kernel, np.random.default_rng(DRAW_SEED),
            engine="sparse")
        sampler.run(sweeps)
        assert state.counts_consistent()
        assert state.z.min() >= 0
        assert state.z.max() < num_topics
        return state

    def test_lda(self, wiki_corpus):
        self.run_sparse(wiki_corpus,
                        lambda s: LdaKernel(s, 0.5, 0.1), 6)

    def test_eda(self, wiki_source, wiki_corpus):
        phi = eda_phi(wiki_source, wiki_corpus)
        self.run_sparse(wiki_corpus,
                        lambda s: EdaKernel(s, phi, 0.5),
                        len(wiki_source))

    def test_source_bijective(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 5))
        self.run_sparse(wiki_corpus, make, num_topics)

    def test_source_mixture(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 2, LambdaGrid.fixed(1.0))
        self.run_sparse(wiki_corpus, make, num_topics)

    def test_single_document_corpus(self, small_source):
        # Exercises the bijective lane's position-counter reset across
        # sweeps when document boundaries never change.
        from repro.text.corpus import Corpus
        corpus = Corpus.from_texts(
            ["pencil ruler baseball umpire recipe oven pencil bake"],
            tokenizer=None)
        make, num_topics = source_kernel_factory(
            small_source, corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 3))
        self.run_sparse(corpus, make, num_topics, sweeps=5)

    def test_chunk_boundaries_preserve_chain(self, wiki_source,
                                             wiki_corpus):
        # The bijective lane carries per-document state across chunk
        # boundaries; a tiny chunk size must reproduce the default
        # chain exactly (the uniform stream is identical by
        # construction).
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 4))
        states = {}
        for chunk_size in (7, 65536):
            state = make_state(wiki_corpus, num_topics)
            engine = SparseSweepEngine(
                state, make(state), np.random.default_rng(DRAW_SEED),
                chunk_size=chunk_size)
            for _ in range(3):
                engine.sweep()
            states[chunk_size] = state
        np.testing.assert_array_equal(states[7].z, states[65536].z)

    def test_zero_mass_raises(self, tiny_corpus):
        state = make_state(tiny_corpus, 2)
        phi = np.zeros((2, tiny_corpus.vocab_size))
        kernel = EdaKernel(state, phi + 1e-300, alpha=1e-9)
        kernel._phi_by_word[:] = 0.0
        path = kernel.sparse_path()
        sampler = CollapsedGibbsSampler(state, kernel,
                                        np.random.default_rng(0),
                                        engine="sparse")
        assert sampler._sweep_engine._path is not None
        with pytest.raises(ValueError, match="positive finite mass"):
            sampler.sweep()
        del path


class PlainKernel(TopicWeightKernel):
    """No sparse (or fast) path — exercises the fallback chain."""

    def __init__(self, state, alpha=0.5, beta=0.1):
        super().__init__(state)
        self.alpha = alpha
        self.beta = beta

    def weights(self, word, doc):
        state = self.state
        return ((state.nw[word] + self.beta)
                / (state.nt + self.beta * state.vocab_size)
                * (state.nd[doc] + self.alpha))

    def phi(self):
        raise NotImplementedError

    def log_likelihood(self):
        raise NotImplementedError


class TestFallback:
    """Kernels without a sparse path must stay draw-for-draw identical
    to the reference under engine="sparse"."""

    def run_engines(self, corpus, make_kernel, num_topics, engines,
                    sweeps=3):
        states = {}
        for engine in engines:
            state = make_state(corpus, num_topics)
            sampler = CollapsedGibbsSampler(
                state, make_kernel(state),
                np.random.default_rng(DRAW_SEED), engine=engine)
            for _ in range(sweeps):
                sampler.sweep()
            states[engine] = state
        return states

    def test_custom_kernel_matches_reference(self, wiki_corpus):
        states = self.run_engines(wiki_corpus, PlainKernel, 4,
                                  ("reference", "sparse"))
        np.testing.assert_array_equal(states["reference"].z,
                                      states["sparse"].z)

    def test_ctm_falls_back_to_fast(self, wiki_source, wiki_corpus):
        mask = concept_word_mask(wiki_source, wiki_corpus.vocabulary,
                                 top_n_words=20)
        num_topics = 2 + len(wiki_source)
        states = self.run_engines(
            wiki_corpus,
            lambda s: CtmKernel(s, mask, 2, alpha=0.5, beta=0.1),
            num_topics, ("reference", "fast", "sparse"))
        np.testing.assert_array_equal(states["reference"].z,
                                      states["sparse"].z)
        np.testing.assert_array_equal(states["fast"].z,
                                      states["sparse"].z)

    def test_fallback_engine_reports_no_path(self, tiny_corpus, rng):
        state = make_state(tiny_corpus, 2)
        engine = SparseSweepEngine(state, PlainKernel(state),
                                   np.random.default_rng(0))
        assert engine._path is None
        assert engine._fallback is not None
        engine.sweep()
        assert state.counts_consistent()


class TestDistributionalEquivalence:
    """Sparse chains must land where reference chains land.

    All checks are deterministic given the fixed seeds; tolerances are
    sized for chain-to-chain Monte Carlo variation, not float error.
    """

    def test_eda_topic_occupancy(self, wiki_source, wiki_corpus):
        # EDA topics are anchored by the fixed phi, so per-topic token
        # shares are comparable across independent chains.
        phi = eda_phi(wiki_source, wiki_corpus)
        num_topics = len(wiki_source)
        shares = {}
        for engine in ("reference", "sparse"):
            state = make_state(wiki_corpus, num_topics)
            kernel = EdaKernel(state, phi, alpha=0.5)
            CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine).run(15)
            shares[engine] = state.nt / state.num_tokens
        np.testing.assert_allclose(shares["sparse"],
                                   shares["reference"], atol=0.08)

    def test_source_log_likelihood_agrees(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 5))
        finals = {}
        for engine in ("reference", "sparse"):
            state = make_state(wiki_corpus, num_topics)
            kernel = make(state)
            lls = CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine).run(12, track_log_likelihood=True)
            finals[engine] = np.mean(lls[-4:])
        assert finals["sparse"] == pytest.approx(finals["reference"],
                                                 rel=0.02)

    def test_lda_log_likelihood_agrees(self, wiki_corpus):
        finals = {}
        for engine in ("reference", "sparse"):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            lls = CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine).run(15, track_log_likelihood=True)
            finals[engine] = np.mean(lls[-5:])
        assert finals["sparse"] == pytest.approx(finals["reference"],
                                                 rel=0.02)


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("fast", "sparse", "alias", "reference")

    def test_invalid_engine_rejected(self, tiny_corpus, rng):
        state = make_state(tiny_corpus, 2)
        kernel = LdaKernel(state, 0.5, 0.1)
        with pytest.raises(ValueError, match="engine"):
            CollapsedGibbsSampler(state, kernel, rng, engine="warp")

    def test_all_six_models_accept_sparse(self, wiki_source, wiki_corpus):
        from repro.core.bijective import BijectiveSourceLDA
        from repro.core.mixture import MixtureSourceLDA
        from repro.core.source_lda import SourceLDA
        from repro.models.ctm import CTM
        from repro.models.eda import EDA
        from repro.models.lda import LDA

        models = [
            LDA(4, engine="sparse"),
            EDA(wiki_source, engine="sparse"),
            CTM(wiki_source, num_free_topics=1, top_n_words=20,
                engine="sparse"),
            BijectiveSourceLDA(wiki_source, engine="sparse"),
            MixtureSourceLDA(wiki_source, num_free_topics=2,
                             engine="sparse"),
            SourceLDA(wiki_source, num_unlabeled_topics=1,
                      approximation_steps=3, engine="sparse"),
        ]
        for model in models:
            fitted = model.fit(wiki_corpus, iterations=2, seed=5)
            np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)
            assignments = fitted.flat_assignments()
            assert assignments.min() >= 0
            assert assignments.max() < fitted.num_topics

    def test_scan_strategies_on_sparse_engine(self, wiki_corpus):
        # Scan strategies drive the sparse engine's full-vector bucket
        # scans; exact parallel scans must reproduce the serial chain.
        from repro.sampling.prefix_sums import PrefixSumScan
        from repro.sampling.scans import SerialScan
        from repro.sampling.simple_parallel import SimpleParallelScan
        chains = {}
        for name, scan in (("serial", SerialScan()),
                           ("prefix", PrefixSumScan()),
                           ("blocked", SimpleParallelScan(blocks=3))):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                scan=scan, engine="sparse").run(3)
            assert state.counts_consistent()
            chains[name] = state.z.copy()
        np.testing.assert_array_equal(chains["serial"], chains["prefix"])
        np.testing.assert_array_equal(chains["serial"], chains["blocked"])


class FakeNearOneRng:
    """An rng whose every uniform is the largest double below 1.

    Drives boundary draws: ``u * total`` rounds up to exactly ``total``
    whenever ``total < 1``, which must select the last positive-weight
    topic — never a zero-weight tail entry.
    """

    U = 1.0 - 2.0 ** -53

    def random(self, size=None):
        if size is None:
            return self.U
        return np.full(size, self.U)


class TestBoundaryDraws:
    """Satellite: u rounding up to the total with zero-weight tails, on
    all three engines (scan-level coverage lives in test_scans.py)."""

    @pytest.fixture
    def corpus(self):
        from repro.text.corpus import Corpus
        return Corpus.from_texts(["a b a b", "b a b a"], tokenizer=None)

    @pytest.fixture
    def phi(self):
        # Word "b" has zero mass under topic 1 (a zero-weight tail in
        # its column) and all weights are small enough that every
        # u * total rounds to total.
        return np.array([[0.05, 0.05],
                         [0.10, 0.00]])

    @pytest.mark.parametrize("engine", ["reference", "fast", "sparse"])
    def test_zero_tail_never_selected(self, corpus, phi, engine):
        state = make_state(corpus, 2)
        with np.errstate(divide="ignore"):  # log of the zero phi entry
            kernel = EdaKernel(state, phi, alpha=0.5)
        sampler = CollapsedGibbsSampler(state, kernel, FakeNearOneRng(),
                                        engine=engine)
        for _ in range(2):
            sampler.sweep()
        assert state.counts_consistent()
        b_id = corpus.vocabulary.encode(["b"])[0]
        b_tokens = state.words == b_id
        # topic 1 has zero weight for word "b": the boundary clamp must
        # land on the last *positive* topic, which is topic 0.
        assert np.all(state.z[b_tokens] == 0)

    @pytest.mark.parametrize("engine", ["reference", "fast", "sparse"])
    def test_positive_tail_boundary_is_last_topic(self, corpus, engine):
        # Without a zero tail the boundary draw clamps to the final
        # topic on every engine.
        phi = np.array([[0.05, 0.05],
                        [0.04, 0.06]])
        state = make_state(corpus, 2)
        kernel = EdaKernel(state, phi, alpha=0.5)
        sampler = CollapsedGibbsSampler(state, kernel, FakeNearOneRng(),
                                        engine=engine)
        sampler.sweep()
        assert state.counts_consistent()
        assert np.all(state.z == 1)


class TestGeneralLaneNegativeExponents:
    """Negative quadrature exponents disable the bijective lane's
    floor/correction split (powered values are no longer ordered like
    the raw ones); the tracker-based general lane must take over even
    with no free topics."""

    def _kernel(self, source, corpus, state):
        prior = SourcePrior(source, corpus.vocabulary)
        exponents = np.array([-0.3, 0.6])
        grid = LambdaGrid(nodes=np.array([0.3, 0.6]),
                          weights=np.array([0.5, 0.5]))
        tables = prior.grid_tables(exponents)
        return SourceTopicsKernel(state, num_free=0, alpha=0.5, beta=0.1,
                                  tables=tables, grid=grid)

    def test_routes_to_general_lane(self, small_source, tiny_corpus):
        state = make_state(tiny_corpus, len(small_source))
        path = self._kernel(small_source, tiny_corpus, state).sparse_path()
        assert not path._bijective
        assert path.sparse_table() is None

    def test_decomposition_and_chain(self, small_source, tiny_corpus):
        state = make_state(tiny_corpus, len(small_source))
        kernel = self._kernel(small_source, tiny_corpus, state)
        assert_decomposition_matches(state, kernel)
        sampler = CollapsedGibbsSampler(
            state, kernel, np.random.default_rng(DRAW_SEED),
            engine="sparse")
        sampler.run(4)
        assert state.counts_consistent()
