"""Tests for repro.sampling.state (GibbsState)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


@pytest.fixture
def state(tiny_corpus: Corpus) -> GibbsState:
    return GibbsState(tiny_corpus, num_topics=2)


class TestConstruction:
    def test_flattening(self, state: GibbsState):
        assert state.num_tokens == 6
        assert state.num_documents == 2
        np.testing.assert_array_equal(state.doc_ids, [0, 0, 0, 1, 1, 1])

    def test_doc_lengths(self, state: GibbsState):
        np.testing.assert_array_equal(state.doc_lengths, [3.0, 3.0])

    def test_invalid_topic_count(self, tiny_corpus: Corpus):
        with pytest.raises(ValueError, match="num_topics"):
            GibbsState(tiny_corpus, 0)

    def test_empty_corpus(self):
        from repro.text.vocabulary import Vocabulary
        state = GibbsState(Corpus([], Vocabulary(["x"])), 2)
        assert state.num_tokens == 0


class TestInitialization:
    def test_random_init_counts_consistent(self, state: GibbsState, rng):
        state.initialize_random(rng)
        assert state.counts_consistent()
        assert state.nw.sum() == state.num_tokens
        assert state.nd.sum() == state.num_tokens

    def test_informed_init_counts_consistent(self, state: GibbsState, rng):
        probs = np.array([[1.0, 0.0, 1.0, 0.0],
                          [0.0, 1.0, 0.0, 1.0]])
        state.initialize_informed(probs, rng)
        assert state.counts_consistent()

    def test_informed_init_respects_zero_mass(self, state: GibbsState,
                                              rng):
        # Topic 1 forbidden for word 0 ("pencil"); all pencil tokens must
        # land on topic 0.
        probs = np.ones((2, 4))
        probs[1, 0] = 0.0
        state.initialize_informed(probs, rng)
        pencil_tokens = state.words == 0
        assert np.all(state.z[pencil_tokens] == 0)

    def test_informed_init_rejects_zero_column(self, state: GibbsState,
                                               rng):
        probs = np.ones((2, 4))
        probs[:, 0] = 0.0
        with pytest.raises(ValueError, match="zero mass"):
            state.initialize_informed(probs, rng)

    def test_informed_init_shape_validation(self, state: GibbsState, rng):
        with pytest.raises(ValueError, match="shape"):
            state.initialize_informed(np.ones((3, 4)), rng)

    def test_initialize_assignments(self, state: GibbsState):
        state.initialize_assignments(np.array([0, 1, 0, 1, 0, 1]))
        assert state.counts_consistent()
        assert state.nd[0, 0] == 2

    def test_initialize_assignments_range_check(self, state: GibbsState):
        with pytest.raises(ValueError, match="out-of-range"):
            state.initialize_assignments(np.array([0, 1, 0, 1, 0, 9]))

    def test_initialize_assignments_shape_check(self, state: GibbsState):
        with pytest.raises(ValueError, match="shape"):
            state.initialize_assignments(np.array([0, 1]))


class TestIncrementDecrement:
    def test_roundtrip_preserves_counts(self, state: GibbsState, rng):
        state.initialize_random(rng)
        before_nw = state.nw.copy()
        word, doc, topic = state.decrement(2)
        assert state.nw[word, topic] == before_nw[word, topic] - 1
        state.increment(2, topic)
        np.testing.assert_array_equal(state.nw, before_nw)
        assert state.counts_consistent()

    def test_reassignment_moves_counts(self, state: GibbsState, rng):
        state.initialize_assignments(np.zeros(6, dtype=np.int64))
        word, doc, old = state.decrement(0)
        state.increment(0, 1)
        assert state.z[0] == 1
        assert state.nd[0, 1] == 1
        assert state.counts_consistent()

    def test_nt_tracks_nw(self, state: GibbsState, rng):
        state.initialize_random(rng)
        for i in range(state.num_tokens):
            _, _, topic = state.decrement(i)
            state.increment(i, (topic + 1) % 2)
        np.testing.assert_array_equal(state.nt, state.nw.sum(axis=0))


class TestAssignmentsByDocument:
    def test_shapes(self, state: GibbsState, rng):
        state.initialize_random(rng)
        per_doc = state.assignments_by_document()
        assert [len(a) for a in per_doc] == [3, 3]
        np.testing.assert_array_equal(np.concatenate(per_doc), state.z)

    def test_returns_copies(self, state: GibbsState, rng):
        state.initialize_random(rng)
        per_doc = state.assignments_by_document()
        per_doc[0][0] = -99
        assert state.z[0] != -99


class TestReadOnlyViews:
    """State accessors must not hand out mutable sufficient statistics."""

    @pytest.fixture
    def state(self) -> GibbsState:
        corpus = Corpus.from_texts(["a b c", "b c d"], tokenizer=None)
        state = GibbsState(corpus, 2)
        state.initialize_random(np.random.default_rng(0))
        return state

    def test_doc_lengths_not_writable(self, state):
        with pytest.raises(ValueError, match="read-only"):
            state.doc_lengths[0] = 99.0

    def test_doc_lengths_tracks_internal_values(self, state):
        np.testing.assert_array_equal(state.doc_lengths, [3.0, 3.0])

    @pytest.mark.parametrize("view_name,raw_name", [
        ("nw_view", "nw"), ("nt_view", "nt"), ("nd_view", "nd")])
    def test_count_views_read_only_but_live(self, state, view_name,
                                            raw_name):
        view = getattr(state, view_name)
        raw = getattr(state, raw_name)
        with pytest.raises(ValueError, match="read-only"):
            view[(0,) * view.ndim] = 5.0
        np.testing.assert_array_equal(view, raw)
        # The view is live: engine mutations through the raw array are
        # visible without copying.
        raw[(0,) * raw.ndim] += 1.0
        np.testing.assert_array_equal(view, raw)
        raw[(0,) * raw.ndim] -= 1.0
