"""Tests for repro.labeling (the four post-hoc mapping techniques)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.labeling.counting import CountingLabeler
from repro.labeling.ir_lda import TfidfCosineLabeler
from repro.labeling.js_mapping import JsDivergenceLabeler
from repro.labeling.pmi_mapping import PmiLabeler
from repro.models.base import FittedTopicModel

ALL_LABELERS = [JsDivergenceLabeler(), TfidfCosineLabeler(top_n_words=3),
                CountingLabeler(top_n_words=3), PmiLabeler(top_n_words=3)]


@pytest.fixture
def clean_model(small_source, tiny_corpus) -> FittedTopicModel:
    """A hand-built model whose topics cleanly match two articles."""
    vocab = tiny_corpus.vocabulary
    phi = np.full((2, 4), 0.01)
    phi[0, vocab["pencil"]] = 0.6
    phi[0, vocab["ruler"]] = 0.38
    phi[1, vocab["baseball"]] = 0.6
    phi[1, vocab["umpire"]] = 0.38
    phi /= phi.sum(axis=1, keepdims=True)
    return FittedTopicModel(
        phi=phi, theta=np.full((2, 2), 0.5),
        assignments=[np.array([0, 0, 1]), np.array([0, 0, 1])],
        vocabulary=vocab)


class TestAllLabelers:
    @pytest.mark.parametrize("labeler", ALL_LABELERS,
                             ids=lambda lab: type(lab).__name__)
    def test_clean_topics_labeled_correctly(self, labeler, clean_model,
                                            small_source):
        labeling = labeler.label_topics(clean_model, small_source)
        assert labeling.labels == ("School Supplies", "Baseball")

    @pytest.mark.parametrize("labeler", ALL_LABELERS,
                             ids=lambda lab: type(lab).__name__)
    def test_score_matrix_shape(self, labeler, clean_model, small_source):
        labeling = labeler.label_topics(clean_model, small_source)
        assert labeling.score_matrix.shape == (2, 3)
        assert labeling.candidate_labels == small_source.labels

    @pytest.mark.parametrize("labeler", ALL_LABELERS,
                             ids=lambda lab: type(lab).__name__)
    def test_argmax_consistency(self, labeler, clean_model, small_source):
        labeling = labeler.label_topics(clean_model, small_source)
        for topic in range(labeling.num_topics):
            winner = labeling.score_matrix[topic].argmax()
            assert labeling.labels[topic] == small_source.labels[winner]


class TestTopicLabeling:
    def test_distinct_labels(self, clean_model, small_source):
        labeling = JsDivergenceLabeler().label_topics(clean_model,
                                                      small_source)
        assert labeling.distinct_labels() == {"School Supplies",
                                              "Baseball"}

    def test_score_of(self, clean_model, small_source):
        labeling = CountingLabeler(top_n_words=2).label_topics(
            clean_model, small_source)
        assert labeling.score_of(0) == labeling.score_matrix[0].max()

    def test_label_of(self, clean_model, small_source):
        labeling = PmiLabeler(top_n_words=2).label_topics(clean_model,
                                                          small_source)
        assert labeling.label_of(1) == "Baseball"


class TestMixedTopicCollapse:
    """The intro case-study failure: mixed topics collapse to one label."""

    def test_js_labeler_collapses_mixed_topics(self, tiny_corpus,
                                               small_source):
        vocab = tiny_corpus.vocabulary
        # Topic 0 = {pencil, umpire}, topic 1 = {ruler, baseball} — the
        # paper's confused LDA outcome.
        phi = np.full((2, 4), 1e-3)
        phi[0, vocab["pencil"]] = 0.66
        phi[0, vocab["umpire"]] = 0.33
        phi[1, vocab["ruler"]] = 0.66
        phi[1, vocab["baseball"]] = 0.33
        phi /= phi.sum(axis=1, keepdims=True)
        model = FittedTopicModel(
            phi=phi, theta=np.full((2, 2), 0.5),
            assignments=[np.array([0, 0, 0]), np.array([1, 1, 1])],
            vocabulary=vocab)
        collapsed = 0
        for labeler in ALL_LABELERS:
            labels = labeler.label_topics(model, small_source).labels
            collapsed += len(set(labels)) == 1
        assert collapsed >= 1


class TestValidation:
    def test_top_n_validation(self):
        for cls in (TfidfCosineLabeler, CountingLabeler, PmiLabeler):
            with pytest.raises(ValueError, match="top_n_words"):
                cls(top_n_words=0)

    def test_pmi_smoothing_validation(self):
        with pytest.raises(ValueError, match="smoothing"):
            PmiLabeler(smoothing=0.0)

    def test_binary_query_variant(self, clean_model, small_source):
        labeler = TfidfCosineLabeler(top_n_words=2,
                                     weight_by_probability=False)
        labeling = labeler.label_topics(clean_model, small_source)
        assert labeling.labels[0] == "School Supplies"
