"""The top-level public API surface must stay importable and coherent."""

from __future__ import annotations

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_exports_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_models_share_fit_interface(self):
        from repro import (CTM, EDA, LDA, BijectiveSourceLDA,
                           MixtureSourceLDA, SourceLDA, TopicModel)
        for model_cls in (LDA, EDA, CTM, BijectiveSourceLDA,
                          MixtureSourceLDA, SourceLDA):
            assert issubclass(model_cls, TopicModel)

    def test_subpackage_all_lists_resolve(self):
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.knowledge
        import repro.labeling
        import repro.metrics
        import repro.models
        import repro.sampling
        import repro.serving
        import repro.text
        for module in (repro.core, repro.datasets, repro.experiments,
                       repro.knowledge, repro.labeling, repro.metrics,
                       repro.models, repro.sampling, repro.serving,
                       repro.text):
            for name in module.__all__:
                assert getattr(module, name) is not None, \
                    f"{module.__name__}.{name}"


class TestReadmeQuickstart:
    """The README's quickstart snippet must actually work."""

    def test_snippet(self):
        from repro import Corpus, KnowledgeSource, SourceLDA

        corpus = Corpus.from_texts([
            "pencil eraser notebook pencil ruler classroom",
            "umpire baseball inning pitcher glove strike",
        ])
        source = KnowledgeSource({
            "School Supplies":
                "pencil pencil ruler eraser notebook paper".split(),
            "Baseball":
                "baseball baseball umpire bat ball pitcher".split(),
            "Astronomy":
                "telescope star planet galaxy orbit comet".split(),
        })
        fitted = SourceLDA(source, num_unlabeled_topics=1).fit(
            corpus, iterations=50, seed=7)
        assert fitted.num_topics == 4
        assert "active_topics" in fitted.metadata
        labels = [fitted.label_of(t) for t in range(fitted.num_topics)]
        assert "School Supplies" in labels and "Baseball" in labels
