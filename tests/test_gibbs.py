"""Tests for repro.sampling.gibbs (driver + likelihood closed forms)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import gammaln

from repro.models.lda import LdaKernel
from repro.sampling.gibbs import (CollapsedGibbsSampler,
                                  asymmetric_dirichlet_log_likelihood,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.rng import categorical, ensure_rng
from repro.sampling.state import GibbsState


class TestRngHelpers:
    def test_ensure_rng_from_seed(self):
        a, b = ensure_rng(5), ensure_rng(5)
        assert a.random() == b.random()

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_categorical_respects_weights(self):
        rng = np.random.default_rng(1)
        draws = [categorical(np.array([0.0, 1.0, 0.0]), rng)
                 for _ in range(50)]
        assert set(draws) == {1}

    def test_categorical_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="positive finite"):
            categorical(np.zeros(3), np.random.default_rng(0))


class TestSampler:
    def test_sweep_preserves_token_count(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        sampler = CollapsedGibbsSampler(state, kernel, rng)
        sampler.sweep()
        assert state.counts_consistent()
        assert state.nw.sum() == state.num_tokens

    def test_run_tracks_log_likelihood(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        sampler = CollapsedGibbsSampler(state, kernel, rng)
        lls = sampler.run(5, track_log_likelihood=True)
        assert len(lls) == 5
        assert all(np.isfinite(v) for v in lls)

    def test_run_log_every(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        sampler = CollapsedGibbsSampler(state, kernel, rng)
        lls = sampler.run(6, track_log_likelihood=True, log_every=3)
        assert len(lls) == 3  # iterations 0, 3, and the final one

    def test_callback_invoked_each_iteration(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        seen = []
        CollapsedGibbsSampler(state, kernel, rng).run(
            3, callback=lambda it, st: seen.append(it))
        assert seen == [0, 1, 2]

    def test_timings_recorded(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        sampler = CollapsedGibbsSampler(state, kernel, rng)
        sampler.run(4)
        assert len(sampler.timings.seconds) == 4
        assert sampler.timings.average >= 0

    def test_mismatched_state_rejected(self, tiny_corpus, rng):
        state_a = GibbsState(tiny_corpus, 2)
        state_b = GibbsState(tiny_corpus, 2)
        state_a.initialize_random(rng)
        kernel = LdaKernel(state_a, alpha=0.5, beta=0.1)
        with pytest.raises(ValueError, match="different state"):
            CollapsedGibbsSampler(state_b, kernel, rng)

    def test_negative_iterations_rejected(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        with pytest.raises(ValueError, match="iterations"):
            CollapsedGibbsSampler(state, kernel, rng).run(-1)

    def test_deterministic_given_seed(self, tiny_corpus):
        def run(seed):
            rng = np.random.default_rng(seed)
            state = GibbsState(tiny_corpus, 2)
            state.initialize_random(rng)
            kernel = LdaKernel(state, alpha=0.5, beta=0.1)
            CollapsedGibbsSampler(state, kernel, rng).run(5)
            return state.z.copy()

        np.testing.assert_array_equal(run(9), run(9))


class TestLikelihoodClosedForms:
    def test_symmetric_matches_manual(self):
        nw = np.array([[2.0, 0.0], [1.0, 3.0]])
        nt = nw.sum(axis=0)
        beta = 0.5
        manual = 0.0
        for t in range(2):
            manual += gammaln(2 * beta) - 2 * gammaln(beta)
            manual += gammaln(nw[:, t] + beta).sum()
            manual -= gammaln(nt[t] + 2 * beta)
        assert symmetric_dirichlet_log_likelihood(nw, nt, beta) == \
            pytest.approx(manual)

    def test_symmetric_rejects_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            symmetric_dirichlet_log_likelihood(np.zeros((2, 2)),
                                               np.zeros(2), 0.0)

    def test_asymmetric_reduces_to_symmetric(self):
        nw = np.array([[2.0, 0.0], [1.0, 3.0]])
        nt = nw.sum(axis=0)
        beta = 0.7
        delta = np.full((2, 2), beta)
        assert asymmetric_dirichlet_log_likelihood(nw, nt, delta) == \
            pytest.approx(symmetric_dirichlet_log_likelihood(nw, nt, beta))

    def test_asymmetric_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError, match="positive"):
            asymmetric_dirichlet_log_likelihood(
                np.zeros((2, 2)), np.zeros(2), np.zeros((2, 2)))

    def test_likelihood_prefers_coherent_assignments(self, tiny_corpus):
        # Putting each word type in its own topic beats random mixing.
        state = GibbsState(tiny_corpus, 2)
        state.initialize_assignments(np.array([0, 0, 1, 0, 0, 1]))
        coherent = symmetric_dirichlet_log_likelihood(state.nw, state.nt,
                                                      0.1)
        state.initialize_assignments(np.array([0, 1, 0, 1, 0, 1]))
        mixed = symmetric_dirichlet_log_likelihood(state.nw, state.nt, 0.1)
        assert coherent > mixed
