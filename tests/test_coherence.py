"""Tests for repro.metrics.coherence (PMI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.coherence import (CooccurrenceCounter, model_pmi,
                                     topic_pmi)
from repro.models.lda import LDA
from repro.text.corpus import Corpus


@pytest.fixture
def corpus() -> Corpus:
    # "alpha beta" always co-occur; "gamma" appears alone.
    texts = ["alpha beta filler filler", "alpha beta filler filler",
             "gamma filler filler filler", "alpha beta gamma filler"]
    return Corpus.from_texts(texts, tokenizer=None)


class TestCooccurrenceCounter:
    def test_word_counts(self, corpus):
        vocab = corpus.vocabulary
        counter = CooccurrenceCounter(
            corpus, {vocab["alpha"], vocab["beta"], vocab["gamma"]},
            window=3)
        assert counter.word_counts[vocab["alpha"]] == 3
        assert counter.word_counts[vocab["gamma"]] == 2

    def test_pair_counts_within_window(self, corpus):
        vocab = corpus.vocabulary
        counter = CooccurrenceCounter(
            corpus, {vocab["alpha"], vocab["beta"]}, window=2)
        pair = (min(vocab["alpha"], vocab["beta"]),
                max(vocab["alpha"], vocab["beta"]))
        assert counter.pair_counts[pair] == 3

    def test_window_excludes_distant_pairs(self):
        corpus = Corpus.from_texts(["aa x x x x x bb"], tokenizer=None)
        vocab = corpus.vocabulary
        counter = CooccurrenceCounter(corpus,
                                      {vocab["aa"], vocab["bb"]}, window=3)
        assert not counter.pair_counts

    def test_positive_pmi_for_cooccurring_pair(self, corpus):
        vocab = corpus.vocabulary
        counter = CooccurrenceCounter(
            corpus, {vocab["alpha"], vocab["beta"], vocab["gamma"]},
            window=3)
        together = counter.pmi(vocab["alpha"], vocab["beta"])
        apart = counter.pmi(vocab["beta"], vocab["gamma"])
        assert together > apart

    def test_unseen_word_scores_zero(self, corpus):
        vocab = corpus.vocabulary
        counter = CooccurrenceCounter(corpus, {vocab["alpha"]}, window=3)
        assert counter.pmi(vocab["alpha"], vocab["gamma"]) == 0.0

    def test_window_validation(self, corpus):
        with pytest.raises(ValueError, match="window"):
            CooccurrenceCounter(corpus, set(), window=1)


class TestTopicPmi:
    def test_requires_two_words(self, corpus):
        vocab = corpus.vocabulary
        counter = CooccurrenceCounter(corpus, {vocab["alpha"]}, window=3)
        with pytest.raises(ValueError, match="two distinct"):
            topic_pmi(counter, np.array([vocab["alpha"]]))

    def test_coherent_topic_beats_incoherent(self, corpus):
        vocab = corpus.vocabulary
        interest = {vocab[w] for w in ("alpha", "beta", "gamma")}
        counter = CooccurrenceCounter(corpus, interest, window=3)
        coherent = topic_pmi(counter, np.array([vocab["alpha"],
                                                vocab["beta"]]))
        incoherent = topic_pmi(counter, np.array([vocab["beta"],
                                                  vocab["gamma"]]))
        assert coherent > incoherent


class TestModelPmi:
    def test_runs_on_fitted_model(self, wiki_corpus):
        fitted = LDA(3).fit(wiki_corpus, iterations=8, seed=0)
        value = model_pmi(fitted, wiki_corpus, top_n=5, window=8)
        assert np.isfinite(value)

    def test_topic_subset(self, wiki_corpus):
        fitted = LDA(3).fit(wiki_corpus, iterations=8, seed=0)
        value = model_pmi(fitted, wiki_corpus, top_n=5, topics=[0, 1])
        assert np.isfinite(value)

    def test_empty_topic_list_rejected(self, wiki_corpus):
        fitted = LDA(3).fit(wiki_corpus, iterations=2, seed=0)
        with pytest.raises(ValueError, match="no topics"):
            model_pmi(fitted, wiki_corpus, topics=[])

    def test_planted_structure_beats_shuffled_topics(self, wiki_source,
                                                     wiki_corpus):
        """Topics matching the planted articles cohere more than random
        word groupings — the signal behind Fig. 8(c)."""
        from repro.core.bijective import BijectiveSourceLDA
        good = BijectiveSourceLDA(wiki_source).fit(wiki_corpus,
                                                   iterations=15, seed=0)
        rng = np.random.default_rng(0)
        shuffled_phi = good.phi.copy()
        for row in shuffled_phi:
            rng.shuffle(row)
        bad = type(good)  # noqa: F841 - constructing manually below
        from repro.models.base import FittedTopicModel
        random_model = FittedTopicModel(
            phi=shuffled_phi / shuffled_phi.sum(axis=1, keepdims=True),
            theta=good.theta, assignments=good.assignments,
            vocabulary=good.vocabulary)
        assert model_pmi(good, wiki_corpus) > \
            model_pmi(random_model, wiki_corpus)
