"""Tests for repro.datasets.synthetic (generative corpus synthesis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (generate_source_lda_corpus,
                                      restrict_source_to_truth)


class TestGenerateSourceLdaCorpus:
    def test_all_topics_when_none(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_topics=None,
                                          num_documents=10,
                                          avg_document_length=20, seed=0)
        assert data.num_topics == len(wiki_source)
        np.testing.assert_array_equal(data.chosen_indices,
                                      np.arange(len(wiki_source)))

    def test_topic_subset_selection(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_topics=3,
                                          num_documents=10,
                                          avg_document_length=20, seed=0)
        assert data.num_topics == 3
        assert len(set(data.chosen_topics)) == 3
        assert set(data.chosen_topics) <= set(wiki_source.labels)

    def test_token_topics_within_range(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_topics=3,
                                          num_documents=10,
                                          avg_document_length=20, seed=0)
        assert data.token_topics.min() >= 0
        assert data.token_topics.max() < 3
        assert data.token_topics.shape[0] == data.corpus.num_tokens

    def test_lambdas_bounded(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_documents=5,
                                          avg_document_length=10,
                                          mu=0.5, sigma=5.0, seed=1)
        assert np.all((data.lambdas >= 0) & (data.lambdas <= 1))

    def test_sigma_zero_pins_lambda(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_documents=5,
                                          avg_document_length=10,
                                          mu=1.0, sigma=0.0, seed=1)
        np.testing.assert_allclose(data.lambdas, 1.0)

    def test_distributions_normalized(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_documents=5,
                                          avg_document_length=10, seed=2)
        np.testing.assert_allclose(data.topic_distributions.sum(axis=1),
                                   1.0, atol=1e-9)
        np.testing.assert_allclose(data.document_theta.sum(axis=1), 1.0)

    def test_high_lambda_tracks_source(self, wiki_source):
        """With lambda pinned to 1 the generated topics stay JS-close to
        their source distributions."""
        from repro.knowledge.distributions import (source_distribution,
                                                   source_hyperparameters)
        from repro.metrics.divergence import js_divergence
        data = generate_source_lda_corpus(wiki_source, num_documents=5,
                                          avg_document_length=10, mu=1.0,
                                          sigma=0.0, seed=3)
        counts = wiki_source.count_matrix(data.corpus.vocabulary)
        refs = source_distribution(source_hyperparameters(counts))
        for row, idx in enumerate(data.chosen_indices):
            assert js_divergence(data.topic_distributions[row],
                                 refs[idx]) < 0.15

    def test_token_topics_by_document(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_documents=7,
                                          avg_document_length=15, seed=4)
        chunks = data.token_topics_by_document()
        assert len(chunks) == 7
        np.testing.assert_array_equal(np.concatenate(chunks),
                                      data.token_topics)

    def test_deterministic(self, wiki_source):
        a = generate_source_lda_corpus(wiki_source, num_documents=4,
                                       avg_document_length=12, seed=5)
        b = generate_source_lda_corpus(wiki_source, num_documents=4,
                                       avg_document_length=12, seed=5)
        np.testing.assert_array_equal(a.token_topics, b.token_topics)
        np.testing.assert_array_equal(a.corpus[1].word_ids,
                                      b.corpus[1].word_ids)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(num_documents=0), "num_documents"),
        (dict(avg_document_length=0), "avg_document_length"),
        (dict(alpha=0), "alpha"),
        (dict(num_topics=99), "num_topics"),
    ])
    def test_validation(self, wiki_source, kwargs, match):
        defaults = dict(num_documents=3, avg_document_length=10, seed=0)
        defaults.update(kwargs)
        with pytest.raises(ValueError, match=match):
            generate_source_lda_corpus(wiki_source, **defaults)


class TestRestrictSourceToTruth:
    def test_exact_condition_source(self, wiki_source):
        data = generate_source_lda_corpus(wiki_source, num_topics=2,
                                          num_documents=3,
                                          avg_document_length=10, seed=6)
        exact = restrict_source_to_truth(wiki_source, data)
        assert exact.labels == data.chosen_topics
