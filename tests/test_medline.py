"""Tests for repro.knowledge.medline."""

from __future__ import annotations

import pytest

from repro.knowledge.medline import (MEDLINE_TOPIC_COUNT,
                                     medline_knowledge_source,
                                     medlineplus_topics)


class TestMedlineplusTopics:
    def test_default_count_matches_paper(self):
        assert MEDLINE_TOPIC_COUNT == 578
        assert len(medlineplus_topics()) == 578

    def test_all_labels_unique(self):
        labels = medlineplus_topics()
        assert len(set(labels)) == len(labels)

    def test_prefix_stability(self):
        # The first N labels never change when requesting more.
        assert medlineplus_topics(20) == medlineplus_topics(200)[:20]

    def test_base_topics_come_first(self):
        labels = medlineplus_topics(5)
        assert labels[0] == "Asthma"

    def test_qualified_topics_appear_after_base(self):
        labels = medlineplus_topics(400)
        assert any(label.startswith("Pediatric ") for label in labels)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="count"):
            medlineplus_topics(0)

    def test_rejects_more_than_inventory(self):
        with pytest.raises(ValueError, match="exhausted"):
            medlineplus_topics(100_000)


class TestMedlineKnowledgeSource:
    def test_source_has_requested_topics(self):
        source = medline_knowledge_source(num_topics=12, article_length=40,
                                          seed=1)
        assert len(source) == 12
        assert source.labels == medlineplus_topics(12)

    def test_articles_nonempty(self):
        source = medline_knowledge_source(num_topics=3, article_length=40)
        for label in source.labels:
            assert len(source.tokens(label)) == 40

    def test_deterministic(self):
        a = medline_knowledge_source(num_topics=4, article_length=30,
                                     seed=2)
        b = medline_knowledge_source(num_topics=4, article_length=30,
                                     seed=2)
        assert a.tokens(a.labels[0]) == b.tokens(b.labels[0])
