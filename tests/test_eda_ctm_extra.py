"""Additional behavioural tests for the EDA and CTM baselines —
the failure modes the paper's experiments rely on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.graphical import (augment_topics,
                                      generate_graphical_corpus,
                                      graphical_knowledge_source,
                                      original_topics)
from repro.metrics.divergence import js_divergence
from repro.models.ctm import CTM
from repro.models.eda import EDA


@pytest.fixture(scope="module")
def graphical():
    data = generate_graphical_corpus(num_documents=120, seed=9)
    source = graphical_knowledge_source(tokens_per_article=1000)
    return data, source


class TestEdaRigidity:
    """EDA 'does not allow for variance from the Wikipedia distribution'."""

    def test_phi_never_moves(self, graphical):
        data, source = graphical
        fitted = EDA(source, alpha=1.0).fit(data.corpus, iterations=15,
                                            seed=0)
        counts = source.count_matrix(data.corpus.vocabulary)
        expected = (counts + 0.01) / (counts + 0.01).sum(axis=1,
                                                         keepdims=True)
        np.testing.assert_allclose(fitted.phi, expected)

    def test_js_floor_on_augmented_topics(self, graphical):
        """EDA's divergence to the augmented truth equals the structural
        JS(original, one-pixel-swapped) = 0.2 ln 2 (the paper's 0.138)."""
        data, source = graphical
        fitted = EDA(source, alpha=1.0).fit(data.corpus, iterations=5,
                                            seed=0)
        values = [js_divergence(fitted.phi[t], data.augmented_topics[t])
                  for t in range(10)]
        assert np.mean(values) == pytest.approx(0.2 * np.log(2),
                                                abs=0.005)


class TestCtmBagConstraint:
    """CTM cannot put probability on a word outside a concept's bag."""

    def test_swapped_pixel_never_enters_concept(self, graphical):
        data, source = graphical
        fitted = CTM(source, num_free_topics=0, top_n_words=25,
                     alpha=1.0, beta=0.1).fit(data.corpus, iterations=15,
                                              seed=0)
        originals = original_topics()
        for topic in range(10):
            outside = np.flatnonzero(originals[topic] == 0)
            assert fitted.phi[topic, outside].max() < 1e-12

    def test_ctm_divergence_at_least_structural_floor(self, graphical):
        data, source = graphical
        fitted = CTM(source, num_free_topics=0, top_n_words=25,
                     alpha=1.0, beta=0.1).fit(data.corpus, iterations=15,
                                              seed=0)
        values = [js_divergence(fitted.phi[t], data.augmented_topics[t])
                  for t in range(10)]
        # Missing the swapped-in pixel costs at least ~0.1 ln 2 per topic.
        assert np.mean(values) > 0.07


class TestAugmentationEdgeCases:
    def test_augmenting_two_identical_support_topics_is_noop(self):
        # Topics sharing full support have no legal swap; augmentation
        # must leave them unchanged rather than crash.
        base = np.array([[0.5, 0.5, 0.0], [0.5, 0.5, 0.0]])
        augmented, pairs = augment_topics(base, 0)
        np.testing.assert_allclose(augmented, base)
        assert len(pairs) == 1

    def test_odd_topic_count_leaves_one_unpaired(self):
        base = np.eye(3)
        _, pairs = augment_topics(base, 0)
        assert len(pairs) == 1  # one pair, one topic left alone
