"""Tests for repro.knowledge.reuters (synthetic newswire)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.knowledge.reuters import (CURATED_CATEGORY_WORDS,
                                     FIGURE2_CATEGORIES, REUTERS_CATEGORIES,
                                     SyntheticReuters)


class TestCategoryInventory:
    def test_eighty_categories(self):
        assert len(REUTERS_CATEGORIES) == 80

    def test_unique_categories(self):
        assert len(set(REUTERS_CATEGORIES)) == 80

    def test_figure2_categories_are_the_paper_list(self):
        assert len(FIGURE2_CATEGORIES) == 20
        assert "Money Supply" in FIGURE2_CATEGORIES
        assert "Housing Starts" in FIGURE2_CATEGORIES

    def test_figure2_subset_of_inventory(self):
        assert set(FIGURE2_CATEGORIES) <= set(REUTERS_CATEGORIES)

    def test_table1_categories_curated(self):
        for label in ("Inventories", "Natural Gas", "Balance of Payments"):
            assert label in CURATED_CATEGORY_WORDS
            assert len(CURATED_CATEGORY_WORDS[label]) >= 10


@pytest.fixture(scope="module")
def generator() -> SyntheticReuters:
    return SyntheticReuters(num_documents=30, num_present_categories=8,
                            document_length_mean=25.0, article_length=120,
                            seed=4)


class TestSyntheticReuters:
    def test_corpus_size(self, generator):
        assert len(generator.corpus()) == 30

    def test_corpus_cached(self, generator):
        assert generator.corpus() is generator.corpus()

    def test_present_categories_count(self, generator):
        truth = generator.ground_truth()
        assert len(truth.present_categories) == 8
        assert set(truth.present_categories) <= set(generator.categories)

    def test_document_labels_are_present_categories(self, generator):
        truth = generator.ground_truth()
        for labels in truth.document_categories:
            assert set(labels) <= set(truth.present_categories)

    def test_token_categories_match_document_lengths(self, generator):
        truth = generator.ground_truth()
        for doc, token_cats in zip(generator.corpus(),
                                   truth.token_categories):
            assert len(doc) == token_cats.shape[0]

    def test_category_distributions_normalized(self, generator):
        truth = generator.ground_truth()
        np.testing.assert_allclose(
            truth.category_distributions.sum(axis=1), 1.0, atol=1e-9)

    def test_lambdas_bounded(self, generator):
        truth = generator.ground_truth()
        assert np.all(truth.lambdas >= 0.0)
        assert np.all(truth.lambdas <= 1.0)

    def test_knowledge_source_covers_all_categories(self, generator):
        assert generator.knowledge_source().labels == generator.categories

    def test_deterministic_given_seed(self):
        a = SyntheticReuters(num_documents=5, num_present_categories=4,
                             article_length=60, seed=9)
        b = SyntheticReuters(num_documents=5, num_present_categories=4,
                             article_length=60, seed=9)
        np.testing.assert_array_equal(a.corpus()[0].word_ids,
                                      b.corpus()[0].word_ids)

    def test_too_many_present_categories_rejected(self):
        with pytest.raises(ValueError, match="present"):
            SyntheticReuters(num_present_categories=99,
                             categories=("A", "B"))

    def test_titles_mention_main_category(self, generator):
        truth = generator.ground_truth()
        doc = generator.corpus()[0]
        assert any(doc.title.startswith(c)
                   for c in truth.present_categories)
