"""Tests for repro.experiments.performance (Fig. 8f machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.performance import (ScalingResult, ScalingRow,
                                           _modeled_time,
                                           random_topic_source,
                                           run_scaling)


class TestRandomTopicSource:
    def test_topic_count_and_lengths(self):
        source = random_topic_source(5, vocab_size=50, article_length=20,
                                     seed=0)
        assert len(source) == 5
        for label in source.labels:
            assert len(source.tokens(label)) == 20

    def test_deterministic(self):
        a = random_topic_source(3, vocab_size=30, article_length=10,
                                seed=4)
        b = random_topic_source(3, vocab_size=30, article_length=10,
                                seed=4)
        assert a.tokens(a.labels[0]) == b.tokens(b.labels[0])

    def test_topics_differ(self):
        source = random_topic_source(2, vocab_size=200,
                                     article_length=50, seed=1)
        assert source.tokens(source.labels[0]) != \
            source.tokens(source.labels[1])

    def test_validation(self):
        with pytest.raises(ValueError, match="num_topics"):
            random_topic_source(0)


class TestModeledTime:
    def test_serial_identity(self):
        assert _modeled_time(1.0, 1000, 1) == pytest.approx(1.0)

    def test_work_dominated_regime(self):
        # T/P >> P: time divides by P.
        assert _modeled_time(1.0, 1000, 4) == pytest.approx(0.25)

    def test_latency_dominated_regime(self):
        # P > T/P: adding units past sqrt(T) stops helping.
        assert _modeled_time(1.0, 16, 8) == pytest.approx(0.5)

    def test_monotone_in_threads_up_to_sqrt(self):
        times = [_modeled_time(1.0, 400, p) for p in (1, 2, 4, 8, 16, 20)]
        assert times[:5] == sorted(times[:5], reverse=True)


class TestScalingResult:
    def _rows(self, times):
        return [ScalingRow(num_topics=b, measured_seconds={1: t},
                           modeled_seconds={1: t})
                for b, t in times]

    def test_linear_detection_positive(self):
        result = ScalingResult(
            rows=self._rows([(100, 0.01), (200, 0.02), (400, 0.04)]),
            thread_counts=(1,))
        assert result.is_linear_in_topics()

    def test_linear_detection_negative(self):
        result = ScalingResult(
            rows=self._rows([(100, 0.04), (200, 0.01), (400, 0.04)]),
            thread_counts=(1,))
        assert not result.is_linear_in_topics()

    def test_short_series_trivially_linear(self):
        result = ScalingResult(rows=self._rows([(100, 0.01)]),
                               thread_counts=(1,))
        assert result.is_linear_in_topics()


class TestRunScaling:
    def test_rows_and_fields(self):
        result = run_scaling(topic_counts=[10, 20], thread_counts=(1,),
                             num_documents=2, document_length=8,
                             iterations=1, seed=0)
        assert [row.num_topics for row in result.rows] == [10, 20]
        for row in result.rows:
            assert row.measured_seconds[1] > 0
            assert np.isfinite(row.modeled_seconds[1])
