"""Tests for repro.text.tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenizer import Tokenizer, whitespace_tokenize


class TestTokenizer:
    def test_basic_tokenization(self):
        assert Tokenizer().tokenize("The pencil and the ruler!") == \
            ["pencil", "ruler"]

    def test_lowercases_by_default(self):
        assert Tokenizer().tokenize("Pencil RULER") == ["pencil", "ruler"]

    def test_lowercase_disabled(self):
        tokens = Tokenizer(lowercase=False,
                           remove_stopwords=False).tokenize("Pencil")
        assert tokens == ["Pencil"]

    def test_keeps_stopwords_when_disabled(self):
        tokens = Tokenizer(remove_stopwords=False).tokenize("the pencil")
        assert tokens == ["the", "pencil"]

    def test_removes_numbers_by_default(self):
        assert Tokenizer().tokenize("sold 100 barrels") == \
            ["sold", "barrels"]

    def test_keeps_numbers_when_asked(self):
        tokens = Tokenizer(keep_numbers=True).tokenize("sold 100 barrels")
        assert tokens == ["sold", "100", "barrels"]

    def test_min_token_length(self):
        tokens = Tokenizer(min_token_length=4,
                           remove_stopwords=False).tokenize("a big whale")
        assert tokens == ["whale"]

    def test_min_token_length_validation(self):
        with pytest.raises(ValueError, match="min_token_length"):
            Tokenizer(min_token_length=0)

    def test_extra_stopwords(self):
        tokenizer = Tokenizer(extra_stopwords=frozenset({"reuter"}))
        assert tokenizer.tokenize("Reuter reports wheat") == \
            ["reports", "wheat"]

    def test_hyphenated_words_preserved(self):
        tokens = Tokenizer().tokenize("state-of-the-art system")
        assert "state-of-the-art" in tokens

    def test_leading_trailing_apostrophes_stripped(self):
        tokens = Tokenizer(remove_stopwords=False).tokenize("'tis 'quoted'")
        assert tokens == ["tis", "quoted"]

    def test_empty_string(self):
        assert Tokenizer().tokenize("") == []

    def test_punctuation_only(self):
        assert Tokenizer().tokenize("... !!! ???") == []

    def test_type_error_on_non_string(self):
        with pytest.raises(TypeError):
            Tokenizer().tokenize(42)  # type: ignore[arg-type]

    def test_tokenize_all_is_lazy_per_text(self):
        results = list(Tokenizer().tokenize_all(["pencil", "ruler"]))
        assert results == [["pencil"], ["ruler"]]

    @given(st.text(max_size=200))
    def test_never_returns_stopwords_or_short_tokens(self, text: str):
        tokens = Tokenizer().tokenize(text)
        for token in tokens:
            assert token.lower() not in ENGLISH_STOPWORDS
            assert len(token) >= 2

    @given(st.text(max_size=200))
    def test_deterministic(self, text: str):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize(text) == tokenizer.tokenize(text)


class TestWhitespaceTokenize:
    def test_splits_on_whitespace(self):
        assert whitespace_tokenize("23 00 14") == ["23", "00", "14"]

    def test_empty(self):
        assert whitespace_tokenize("") == []

    def test_preserves_tokens_verbatim(self):
        assert whitespace_tokenize("The THE the") == ["The", "THE", "the"]

    def test_type_error(self):
        with pytest.raises(TypeError):
            whitespace_tokenize(None)  # type: ignore[arg-type]
