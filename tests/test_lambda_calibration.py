"""Tests for repro.core.lambda_calibration (the g function)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lambda_calibration import (SmoothingFunction,
                                           calibrate_smoothing,
                                           mean_js_curve)


@pytest.fixture
def hyper() -> np.ndarray:
    """A peaked count vector like a knowledge-source article produces."""
    rng = np.random.default_rng(0)
    counts = np.floor(rng.pareto(1.2, size=120) * 8)
    return counts + 0.01


class TestSmoothingFunction:
    def test_identity(self):
        g = SmoothingFunction.identity()
        assert g(0.0) == 0.0
        assert g(1.0) == 1.0
        assert g(0.37) == pytest.approx(0.37)

    def test_interpolation(self):
        g = SmoothingFunction(xs=np.array([0.0, 0.5, 1.0]),
                              ys=np.array([0.0, 0.1, 1.0]))
        assert g(0.25) == pytest.approx(0.05)
        assert g(0.75) == pytest.approx(0.55)

    def test_array_input(self):
        g = SmoothingFunction.identity()
        np.testing.assert_allclose(g(np.array([0.2, 0.8])), [0.2, 0.8])

    def test_scalar_returns_float(self):
        assert isinstance(SmoothingFunction.identity()(0.5), float)

    def test_rejects_decreasing_ys(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            SmoothingFunction(xs=np.array([0.0, 1.0]),
                              ys=np.array([1.0, 0.0]))

    def test_rejects_non_increasing_xs(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SmoothingFunction(xs=np.array([0.0, 0.0]),
                              ys=np.array([0.0, 1.0]))

    def test_rejects_too_few_knots(self):
        with pytest.raises(ValueError, match=">= 2"):
            SmoothingFunction(xs=np.array([0.5]), ys=np.array([0.5]))


class TestMeanJsCurve:
    def test_decreasing_in_lambda(self, hyper):
        lambdas = np.array([0.0, 0.5, 1.0])
        curve = mean_js_curve(hyper, lambdas, draws=25, rng=1)
        assert curve[0] > curve[1] > curve[2]

    def test_lambda_one_small_divergence(self, hyper):
        curve = mean_js_curve(hyper, np.array([1.0]), draws=25, rng=1)
        assert curve[0] < 0.15

    def test_aggregates_multiple_topics(self, hyper):
        stacked = np.vstack([hyper, hyper * 2])
        curve = mean_js_curve(stacked, np.array([0.5]), draws=5, rng=0)
        assert curve.shape == (1,)
        assert np.isfinite(curve[0])

    def test_rejects_nonpositive_hyperparameters(self):
        with pytest.raises(ValueError, match="strictly positive"):
            mean_js_curve(np.array([0.0, 1.0]), np.array([0.5]))

    def test_rejects_zero_draws(self, hyper):
        with pytest.raises(ValueError, match="draws"):
            mean_js_curve(hyper, np.array([0.5]), draws=0)


class TestCalibrateSmoothing:
    def test_endpoints_pinned(self, hyper):
        g = calibrate_smoothing(hyper, draws=8, rng=2)
        assert g(0.0) == 0.0
        assert g(1.0) == 1.0

    def test_monotone(self, hyper):
        g = calibrate_smoothing(hyper, draws=8, rng=2)
        values = g(np.linspace(0, 1, 50))
        assert np.all(np.diff(values) >= -1e-12)

    def test_output_in_unit_interval(self, hyper):
        g = calibrate_smoothing(hyper, draws=8, rng=2)
        values = np.asarray(g(np.linspace(0, 1, 50)))
        assert np.all((values >= 0) & (values <= 1))

    def test_makes_js_curve_more_linear(self, hyper):
        """The whole point of g (Fig. 3 vs Fig. 4)."""
        lambdas = np.linspace(0, 1, 9)
        raw = mean_js_curve(hyper, lambdas, draws=30, rng=3)
        g = calibrate_smoothing(hyper, grid_points=11, draws=30, rng=3)
        smoothed = mean_js_curve(hyper, np.asarray(g(lambdas)), draws=30,
                                 rng=4)

        def r2(yvals):
            slope, intercept = np.polyfit(lambdas, yvals, 1)
            pred = slope * lambdas + intercept
            ss_res = ((yvals - pred) ** 2).sum()
            ss_tot = ((yvals - yvals.mean()) ** 2).sum()
            return 1 - ss_res / ss_tot

        assert r2(smoothed) >= r2(raw) - 0.02

    def test_max_topics_caps_work(self, hyper):
        stacked = np.vstack([hyper] * 30)
        g = calibrate_smoothing(stacked, draws=3, max_topics=2, rng=0)
        assert g(0.5) >= 0.0  # completed quickly and sanely

    def test_grid_points_validated(self, hyper):
        with pytest.raises(ValueError, match="grid_points"):
            calibrate_smoothing(hyper, grid_points=2)

    def test_deterministic_given_rng(self, hyper):
        a = calibrate_smoothing(hyper, draws=5, rng=7)
        b = calibrate_smoothing(hyper, draws=5, rng=7)
        np.testing.assert_allclose(a.ys, b.ys)
