"""The example scripts must run end-to-end (they are living docs)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize("script", ["quickstart.py",
                                    "discover_new_topics.py",
                                    "save_load_serve.py"])
def test_example_runs(script, capsys):
    """Fast examples execute without error and produce output."""
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_quickstart_labels_output(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "School Supplies" in out
    assert "Baseball" in out


def test_discover_new_topics_finds_hidden_subject(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "discover_new_topics.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "100%" in out or "83%" in out  # hidden-subject coverage line


def test_all_examples_exist():
    expected = {"quickstart.py", "reuters_labeling.py",
                "medical_topics.py", "discover_new_topics.py",
                "save_load_serve.py"}
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present


@pytest.fixture(autouse=True)
def _clean_sys_path():
    before = list(sys.path)
    yield
    sys.path[:] = before
