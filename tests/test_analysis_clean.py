"""The shipped tree must satisfy its own invariant linter.

The in-process check is tier-1: any new global-RNG call, missing
``stacklevel``, frozen-engine mutation, unsafe nopython construct,
impure telemetry plumbing, or unpicklable worker-spec resource fails
the suite with the rule code and location.  The CLI round-trip over
the whole tree (examples and benchmarks included) is heavier and runs
under the ``bench`` marker.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_paths
from repro.analysis.cli import ANALYSIS_SCHEMA, ANALYSIS_SCHEMA_VERSION

REPO = Path(__file__).resolve().parents[1]


def test_src_repro_is_clean():
    result = lint_paths([REPO / "src" / "repro"])
    assert result.files > 50  # the scan actually covered the tree
    locations = [f"{v.code} {v.location}: {v.message}"
                 for v in result.violations]
    assert result.violations == (), "\n".join(locations)


def test_src_repro_waivers_are_justified():
    # Every noqa pragma in the shipped tree must carry a justification;
    # a bare waiver hides debt.
    result = lint_paths([REPO / "src" / "repro"])
    for entry in result.suppressed:
        assert entry.reason != "waived by pragma", \
            f"{entry.violation.location} has an unjustified noqa"


@pytest.mark.bench
def test_cli_whole_tree_golden_report(tmp_path):
    report_path = tmp_path / "analysis.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis",
         "src/repro", "examples",
         "--json", str(report_path)],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(report_path.read_text())
    assert report["schema"] == ANALYSIS_SCHEMA
    assert report["schema_version"] == ANALYSIS_SCHEMA_VERSION
    assert report["exit_code"] == 0
    assert report["verdicts"] == []
    assert report["rules"] == [rule.code for rule in all_rules()]
    assert report["files"] > 50
    # The two known finalizer waivers surface as skipped rows with
    # their justifications, mirroring compare.py's skipped benches.
    reasons = {row["reason"] for row in report["skipped"]}
    assert all(r.startswith("noqa[RPR") for r in reasons)
    assert len(report["skipped"]) >= 2
