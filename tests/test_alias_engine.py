"""Correctness of the alias/MH sweep engine.

The alias engine (`repro.sampling.alias_engine`) samples each token
with two Metropolis-Hastings sub-steps against *stale* proposal
tables, so it is neither draw-for-draw identical to the reference nor
(unlike the sparse engine) an exact reassociation of the per-token
conditional.  Its contract is pinned in four layers:

* **invariance pin**: one alias/MH transition applied to a state drawn
  from the exact per-token conditional must leave that conditional
  invariant (detailed balance of the MH correction) — verified by a
  chi-squared test on frozen counts, at several staleness settings;
* **staleness/rebuild invariants**: per-word rebuilds snapshot the live
  counts, the acceptance rate is recorded and bounded away from zero,
  and the rebuild cadence never shifts the shared RNG stream (exactly
  four uniforms per token, rebuilds draw none);
* **chain validity**: sweeps preserve the count-matrix invariants,
  chunk boundaries included;
* **distributional parity**: alias chains land on the same posterior
  summaries (log likelihood, held-out perplexity, theta) as sparse and
  reference chains.

Kernels without an alias path (CTM, mixed-layout source kernels) fall
back through the sparse engine, reproducing its chain byte-for-byte.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.kernels import SourceTopicsKernel
from repro.core.priors import SourcePrior
from repro.metrics.divergence import js_divergence
from repro.metrics.perplexity import perplexity_heldout_gibbs
from repro.models.eda import EdaKernel
from repro.models.lda import LdaKernel
from repro.sampling.alias_engine import (DEFAULT_REBUILD_EVERY,
                                         AliasSweepEngine)
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.integration import LambdaGrid
from repro.sampling.runtime import (available_backends,
                                    rebuild_alias_word,
                                    run_alias_mh_chunk)
from repro.sampling.sparse_engine import SparseSweepEngine
from repro.sampling.state import GibbsState

INIT_SEED = 3
DRAW_SEED = 11


def make_state(corpus, num_topics, seed=INIT_SEED):
    state = GibbsState(corpus, num_topics)
    state.initialize_random(np.random.default_rng(seed))
    return state


def eda_phi(source, corpus):
    from repro.knowledge.distributions import source_hyperparameters
    counts = source.count_matrix(corpus.vocabulary)
    smoothed = source_hyperparameters(counts, 0.01)
    return smoothed / smoothed.sum(axis=1, keepdims=True)


def source_kernel_factory(source, corpus, num_free, grid):
    prior = SourcePrior(source, corpus.vocabulary)
    tables = prior.grid_tables(grid.nodes)
    return (lambda s: SourceTopicsKernel(
        s, num_free=num_free, alpha=0.5, beta=0.1, tables=tables,
        grid=grid), num_free + prior.num_topics)


class TestInvariancePin:
    """One MH transition leaves the exact conditional invariant.

    The MH correction guarantees the per-token conditional ``pi`` is
    the stationary distribution of the word/doc proposal cycle *no
    matter how stale the proposal tables are*.  Pin exactly that: with
    every other token frozen, draw the current token's topic from the
    exact ``pi``, push it through one alias/MH transition, and
    chi-squared the resulting topic frequencies against ``pi``.  The
    proposal tables are left to drift with whatever staleness the
    ``rebuild_every`` cadence produces, so the pin covers fresh and
    heavily stale tables alike.
    """

    def _pin(self, state, kernel, num_draws, rebuild_every,
             token=10, seed=29):
        rng = np.random.default_rng(seed)
        word = int(state.words[token])
        doc = int(state.doc_ids[token])
        s0 = int(state.z[token])
        nw, nt, nd = state.nw, state.nt, state.nd
        # Freeze the "all other tokens" state: remove the pinned token.
        nw[word, s0] -= 1.0
        nt[s0] -= 1.0
        nd[doc, s0] -= 1.0
        pi = kernel.weights(word, doc)
        probs = pi / pi.sum()
        path = kernel.alias_path()
        assert path is not None
        path.rebuild_every = rebuild_every
        table = path.alias_table()
        path.begin_sweep()
        num_topics = state.num_topics
        counts = np.zeros(num_topics)
        doc_start = int(table.doc_starts[doc])
        doc_len = int(table.doc_lengths[doc])
        pin_position = token - doc_start
        initial = rng.choice(num_topics, size=num_draws, p=probs)
        for s in initial:
            s = int(s)
            nw[word, s] += 1.0
            nt[s] += 1.0
            nd[doc, s] += 1.0
            state.z[token] = s
            # Park the doc cursor on the pinned token's own slot: the
            # chunk's doc proposal skips ``doc_z[position]``, exactly
            # where a real sweep's cursor would sit for this token.
            table.current_doc = doc
            table.doc_len = doc_len
            table.position = pin_position
            table.nd_row = nd[doc]
            table.doc_z[:doc_len] = state.z[doc_start:doc_start
                                            + doc_len]
            out: list[int] = []
            run_alias_mh_chunk(state, table, [word], [doc], [s],
                               rng.random(4).tolist(), out)
            t = out[0]
            counts[t] += 1.0
            # Back to the frozen base for the next trial.
            nw[word, t] -= 1.0
            nt[t] -= 1.0
            nd[doc, t] -= 1.0
        assert not state.counts_consistent()  # token still removed
        expected = probs * num_draws
        keep = expected >= 5.0
        assert keep.sum() >= 2
        observed = counts[keep]
        rescaled = expected[keep] * observed.sum() / expected[keep].sum()
        _, pvalue = stats.chisquare(observed, rescaled)
        assert pvalue > 1e-3

    @pytest.mark.parametrize("rebuild_every", [1, 64])
    def test_lda(self, wiki_corpus, rebuild_every):
        state = make_state(wiki_corpus, 6)
        kernel = LdaKernel(state, 0.5, 0.1)
        self._pin(state, kernel, num_draws=12000,
                  rebuild_every=rebuild_every)

    def test_eda(self, wiki_source, wiki_corpus):
        phi = eda_phi(wiki_source, wiki_corpus)
        state = make_state(wiki_corpus, len(wiki_source))
        kernel = EdaKernel(state, phi, 0.5)
        self._pin(state, kernel, num_draws=10000, rebuild_every=64)


class TestRebuildInvariants:
    def test_rebuild_snapshots_live_counts(self, wiki_corpus):
        state = make_state(wiki_corpus, 6)
        kernel = LdaKernel(state, 0.5, 0.1)
        path = kernel.alias_path()
        table = path.alias_table()
        word = int(state.words[0])
        rebuild_alias_word(table, state, word)
        support = np.flatnonzero(state.nw[word])
        np.testing.assert_array_equal(table.word_topics[word], support)
        expected = state.nw[word].take(support) \
            / (state.nt.take(support) + table.beta_sum)
        np.testing.assert_allclose(table.word_vals[word], expected)
        assert table.word_mass[word] == pytest.approx(expected.sum())
        assert table.draws_since[word] == 0

    def test_rebuild_after_count_change_reflects_update(self, wiki_corpus):
        # A rebuild after K draws must reflect counts as updated in the
        # meantime, not the stale snapshot.
        state = make_state(wiki_corpus, 6)
        kernel = LdaKernel(state, 0.5, 0.1)
        path = kernel.alias_path()
        table = path.alias_table()
        word = int(state.words[0])
        rebuild_alias_word(table, state, word)
        stale_vals = list(table.word_vals[word])
        # Move one token of this word to a fresh topic.
        token = int(np.flatnonzero(state.words == word)[0])
        old = int(state.z[token])
        new = (old + 1) % state.num_topics
        doc = int(state.doc_ids[token])
        for row, delta in ((old, -1.0), (new, 1.0)):
            state.nw[word, row] += delta
            state.nt[row] += delta
            state.nd[doc, row] += delta
        state.z[token] = new
        rebuild_alias_word(table, state, word)
        support = np.flatnonzero(state.nw[word])
        np.testing.assert_array_equal(table.word_topics[word], support)
        expected = state.nw[word].take(support) \
            / (state.nt.take(support) + table.beta_sum)
        np.testing.assert_allclose(table.word_vals[word], expected)
        assert list(table.word_vals[word]) != stale_vals

    def test_acceptance_rate_recorded_and_positive(self, wiki_corpus):
        state = make_state(wiki_corpus, 6)
        kernel = LdaKernel(state, 0.5, 0.1)
        engine = AliasSweepEngine(state, kernel,
                                  np.random.default_rng(DRAW_SEED))
        assert engine.acceptance_rate is None  # no proposals yet
        for _ in range(3):
            engine.sweep()
        rate = engine.acceptance_rate
        proposals = int(engine._path.alias_table().mh_counts[0])
        assert proposals == 2 * 3 * state.num_tokens  # 2 sub-steps/token
        # The MH correction must not degenerate into rejecting nearly
        # everything (which would silently stop mixing).
        assert 0.05 < rate <= 1.0

    @pytest.mark.parametrize("make_rng", [
        lambda: np.random.default_rng(DRAW_SEED)])
    def test_rebuild_cadence_never_shifts_rng_stream(self, wiki_corpus,
                                                     make_rng):
        # Four uniforms per token, rebuilds draw none: the stream
        # position after N sweeps is a function of the token count
        # alone, so every rebuild cadence leaves the generator in the
        # same state (the chains differ, the stream does not).
        states = []
        for rebuild_every in (1, 7, DEFAULT_REBUILD_EVERY):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            rng = make_rng()
            engine = AliasSweepEngine(state, kernel, rng,
                                      rebuild_every=rebuild_every)
            for _ in range(3):
                engine.sweep()
            states.append(rng.bit_generator.state)
        assert states[0] == states[1] == states[2]

    def test_invalid_rebuild_every_rejected(self, wiki_corpus):
        state = make_state(wiki_corpus, 6)
        kernel = LdaKernel(state, 0.5, 0.1)
        with pytest.raises(ValueError, match="rebuild_every"):
            AliasSweepEngine(state, kernel,
                             np.random.default_rng(DRAW_SEED),
                             rebuild_every=0)


class TestChainValidity:
    def run_alias(self, corpus, make_kernel, num_topics, sweeps=4):
        state = make_state(corpus, num_topics)
        kernel = make_kernel(state)
        sampler = CollapsedGibbsSampler(
            state, kernel, np.random.default_rng(DRAW_SEED),
            engine="alias")
        sampler.run(sweeps)
        assert state.counts_consistent()
        assert state.z.min() >= 0
        assert state.z.max() < num_topics
        return state

    def test_lda(self, wiki_corpus):
        self.run_alias(wiki_corpus,
                       lambda s: LdaKernel(s, 0.5, 0.1), 6)

    def test_eda(self, wiki_source, wiki_corpus):
        phi = eda_phi(wiki_source, wiki_corpus)
        self.run_alias(wiki_corpus,
                       lambda s: EdaKernel(s, phi, 0.5),
                       len(wiki_source))

    def test_source_bijective(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 5))
        self.run_alias(wiki_corpus, make, num_topics)

    def test_chunk_boundaries_preserve_chain(self, wiki_corpus):
        # The alias lane carries the doc cursor and per-word staleness
        # counters across chunk boundaries; a tiny chunk size must
        # reproduce the default chain exactly.
        states = {}
        for chunk_size in (7, 65536):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            engine = AliasSweepEngine(
                state, kernel, np.random.default_rng(DRAW_SEED),
                chunk_size=chunk_size)
            for _ in range(3):
                engine.sweep()
            states[chunk_size] = state
        np.testing.assert_array_equal(states[7].z, states[65536].z)


class TestDistributionalParity:
    """Alias chains must land where sparse/reference chains land."""

    def test_lda_log_likelihood_agrees(self, wiki_corpus):
        # rebuild_every=1 removes the chain-level staleness adaptation
        # (every proposal snapshots the token-excluded live counts), so
        # the alias chain must land exactly where the sparse chain
        # lands.  On this toy corpus a word has only ~20 tokens, so
        # stale snapshots are a macroscopic fraction of nw and longer
        # cadences genuinely shift the chain — see the envelope test
        # below for the default cadence.
        finals = {}
        for engine in ("sparse", "alias"):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            lls = CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine, rebuild_every=1).run(
                    60, track_log_likelihood=True)
            finals[engine] = np.mean(lls[-20:])
        assert finals["alias"] == pytest.approx(finals["sparse"],
                                                rel=0.02)

    def test_lda_default_cadence_stays_in_envelope(self, wiki_corpus):
        # At the default cadence the stale snapshots lag the counts by
        # rebuild_every draws per word; the resulting chain-level bias
        # scales with staleness over per-word token count, which this
        # toy corpus makes about as large as it ever gets.  Pin a
        # loose envelope so a real regression (systematic drift away
        # from the sparse chain) still fails.
        finals = {}
        for engine in ("sparse", "alias"):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            lls = CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine).run(15, track_log_likelihood=True)
            finals[engine] = np.mean(lls[-5:])
        assert finals["alias"] == pytest.approx(finals["sparse"],
                                                rel=0.08)

    def test_source_log_likelihood_agrees(self, wiki_source, wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 5))
        finals = {}
        for engine in ("sparse", "alias"):
            state = make_state(wiki_corpus, num_topics)
            kernel = make(state)
            lls = CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine, rebuild_every=1).run(
                    25, track_log_likelihood=True)
            finals[engine] = np.mean(lls[-8:])
        assert finals["alias"] == pytest.approx(finals["sparse"],
                                                rel=0.02)

    def test_eda_theta_js_parity(self, wiki_source, wiki_corpus):
        # EDA topics are anchored by the fixed phi, so per-document
        # theta rows are comparable across independent chains.
        phi = eda_phi(wiki_source, wiki_corpus)
        thetas = {}
        for engine in ("sparse", "alias"):
            from repro.models.eda import EDA
            model = EDA(wiki_source, engine=engine)
            fitted = model.fit(wiki_corpus, iterations=15, seed=5)
            thetas[engine] = fitted.theta
        mean_js = float(np.mean(js_divergence(thetas["alias"],
                                              thetas["sparse"])))
        assert mean_js < 0.05

    def test_lda_heldout_perplexity_parity(self, wiki_corpus):
        from repro.models.lda import LDA
        perplexities = {}
        for engine in ("sparse", "alias"):
            fitted = LDA(6, engine=engine).fit(wiki_corpus,
                                               iterations=15, seed=5)
            perplexities[engine] = perplexity_heldout_gibbs(
                fitted.phi, wiki_corpus, alpha=0.1, iterations=10,
                rng=DRAW_SEED)
        assert perplexities["alias"] == pytest.approx(
            perplexities["sparse"], rel=0.05)


class TestEngineSelection:
    def test_all_six_models_accept_alias(self, wiki_source, wiki_corpus):
        from repro.core.bijective import BijectiveSourceLDA
        from repro.core.mixture import MixtureSourceLDA
        from repro.core.source_lda import SourceLDA
        from repro.models.ctm import CTM
        from repro.models.eda import EDA
        from repro.models.lda import LDA

        models = [
            LDA(4, engine="alias"),
            EDA(wiki_source, engine="alias"),
            CTM(wiki_source, num_free_topics=1, top_n_words=20,
                engine="alias"),
            BijectiveSourceLDA(wiki_source, engine="alias"),
            MixtureSourceLDA(wiki_source, num_free_topics=2,
                             engine="alias"),
            SourceLDA(wiki_source, num_unlabeled_topics=1,
                      approximation_steps=3, engine="alias"),
        ]
        for model in models:
            fitted = model.fit(wiki_corpus, iterations=2, seed=5)
            np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)
            assignments = fitted.flat_assignments()
            assert assignments.min() >= 0
            assert assignments.max() < fitted.num_topics


class TestFallback:
    def test_ctm_falls_back_and_matches_sparse(self, wiki_source,
                                               wiki_corpus):
        # CTM has no alias path (nor a sparse one): engine="alias"
        # must reproduce the engine="sparse" chain byte-for-byte
        # through the fallback chain (alias -> sparse -> fast).
        from repro.models.ctm import CtmKernel, concept_word_mask
        mask = concept_word_mask(wiki_source, wiki_corpus.vocabulary,
                                 top_n_words=20)
        states = {}
        for engine in ("sparse", "alias"):
            state = make_state(wiki_corpus, len(wiki_source) + 1)
            kernel = CtmKernel(state, mask, num_free=1, alpha=0.5,
                               beta=0.1)
            CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine).run(3)
            states[engine] = state.z.copy()
        np.testing.assert_array_equal(states["alias"], states["sparse"])

    def test_mixed_source_falls_back_to_sparse(self, wiki_source,
                                               wiki_corpus):
        # Mixed free+source layouts have no alias path; the alias
        # engine must run the sparse engine's chain unchanged.
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 2, LambdaGrid.fixed(1.0))
        states = {}
        for engine in ("sparse", "alias"):
            state = make_state(wiki_corpus, num_topics)
            kernel = make(state)
            CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine=engine).run(3)
            states[engine] = state.z.copy()
        np.testing.assert_array_equal(states["alias"], states["sparse"])

    def test_fallback_reports_no_acceptance_rate(self, wiki_source,
                                                 wiki_corpus):
        make, num_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 2, LambdaGrid.fixed(1.0))
        state = make_state(wiki_corpus, num_topics)
        engine = AliasSweepEngine(state, make(state),
                                  np.random.default_rng(DRAW_SEED))
        engine.sweep()
        assert engine.acceptance_rate is None


@pytest.mark.skipif("numba" not in available_backends(),
                    reason="numba not installed")
class TestCompiledLanes:
    """Compiled sparse/alias training lanes (numba machines only)."""

    def test_compiled_sparse_lanes_chain_validity(self, wiki_source,
                                                  wiki_corpus):
        phi = eda_phi(wiki_source, wiki_corpus)
        make_source, source_topics = source_kernel_factory(
            wiki_source, wiki_corpus, 0, LambdaGrid.from_prior(0.7, 0.3, 5))
        cases = [
            (lambda s: LdaKernel(s, 0.5, 0.1), 6),
            (lambda s: EdaKernel(s, phi, 0.5), len(wiki_source)),
            (make_source, source_topics),
        ]
        for make_kernel, num_topics in cases:
            state = make_state(wiki_corpus, num_topics)
            sampler = CollapsedGibbsSampler(
                state, make_kernel(state),
                np.random.default_rng(DRAW_SEED), engine="sparse",
                backend="numba")
            sampler.run(4)
            assert state.counts_consistent()

    def test_compiled_sparse_lda_distributional(self, wiki_corpus):
        finals = {}
        for backend in ("python", "numba"):
            state = make_state(wiki_corpus, 6)
            kernel = LdaKernel(state, 0.5, 0.1)
            lls = CollapsedGibbsSampler(
                state, kernel, np.random.default_rng(DRAW_SEED),
                engine="sparse", backend=backend
            ).run(15, track_log_likelihood=True)
            finals[backend] = np.mean(lls[-5:])
        assert finals["numba"] == pytest.approx(finals["python"],
                                                rel=0.02)

    def test_compiled_alias_lda(self, wiki_corpus):
        state = make_state(wiki_corpus, 6)
        kernel = LdaKernel(state, 0.5, 0.1)
        engine = AliasSweepEngine(state, kernel,
                                  np.random.default_rng(DRAW_SEED),
                                  backend="numba")
        for _ in range(3):
            engine.sweep()
        assert state.counts_consistent()
        assert engine.acceptance_rate > 0.05
