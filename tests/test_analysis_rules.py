"""Fixture-based tests for every invariant-linter rule.

Each rule gets minimal positive (violating) and negative (clean)
snippets, plus the cross-cutting machinery: ``noqa`` suppression with
justifications, multi-line call handling (a ``stacklevel`` on a
continuation line must not false-positive), rule selection, parse
errors, and the CLI's exit codes and ``--json`` report.
"""

from __future__ import annotations

import json
from textwrap import dedent

import pytest

from repro.analysis import (all_rules, lint_paths, lint_source,
                            resolve_rules)
from repro.analysis.cli import (ANALYSIS_SCHEMA,
                                ANALYSIS_SCHEMA_VERSION, main)
from repro.analysis.core import PARSE_ERROR_CODE


def codes(source: str, path: str = "src/repro/example.py") -> list[str]:
    """Rule codes of the standing violations in ``source``."""
    result = lint_source(dedent(source), path)
    return [violation.code for violation in result.violations]


# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_six_rules_registered(self):
        assert [rule.code for rule in all_rules()] == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"]

    def test_resolve_subset_and_unknown(self):
        subset = resolve_rules(["RPR002", "RPR001"])
        assert [rule.code for rule in subset] == ["RPR001", "RPR002"]
        with pytest.raises(KeyError):
            resolve_rules(["RPR999"])


# ----------------------------------------------------------------------
class TestGlobalRngRule:
    def test_stdlib_random_import_flagged(self):
        assert "RPR001" in codes("import random\n")
        assert "RPR001" in codes("from random import choice\n")

    def test_stdlib_random_call_flagged(self):
        found = codes("""
            import random
            x = random.random()
        """)
        assert found.count("RPR001") == 2  # the import and the call

    def test_numpy_global_state_flagged(self):
        assert codes("np.random.seed(0)\n") == ["RPR001"]
        assert codes("np.random.shuffle(items)\n") == ["RPR001"]
        assert codes("numpy.random.randint(0, 5)\n") == ["RPR001"]

    def test_seedless_default_rng_flagged(self):
        (violation,) = lint_source("rng = np.random.default_rng()\n",
                                   "src/repro/example.py").violations
        assert violation.code == "RPR001"
        assert "non-deterministic" in violation.message

    def test_seeded_default_rng_outside_helper_flagged(self):
        assert codes("rng = np.random.default_rng(3)\n") == ["RPR001"]
        assert codes("rng = default_rng(seed)\n") == ["RPR001"]

    def test_rng_helper_module_is_exempt(self):
        source = "rng = np.random.default_rng(seed)\n"
        assert codes(source, path="src/repro/sampling/rng.py") == []

    def test_clean_constructs_pass(self):
        assert codes("""
            def f(seed):
                rng = ensure_rng(seed)
                root = np.random.SeedSequence(0)
                return rng.permutation(4), root
        """) == []


# ----------------------------------------------------------------------
class TestWarningStacklevelRule:
    def test_missing_stacklevel_flagged(self):
        assert codes("""
            import warnings
            warnings.warn("drifted", RuntimeWarning)
        """) == ["RPR002"]

    def test_bare_warn_import_flagged(self):
        assert codes("""
            from warnings import warn
            warn("drifted", RuntimeWarning)
        """) == ["RPR002"]

    def test_explicit_stacklevel_passes(self):
        assert codes("""
            import warnings
            warnings.warn("drifted", RuntimeWarning, stacklevel=2)
        """) == []

    def test_stacklevel_on_continuation_line_passes(self):
        # The regex-linter trap: the keyword lives on a later physical
        # line than the call.  The AST check must not false-positive.
        assert codes("""
            import warnings
            warnings.warn(
                "phi row sums drift from 1 by more than tolerance, "
                "renormalizing rows",
                RuntimeWarning,
                stacklevel=3,
            )
        """) == []

    def test_kwargs_splat_passes(self):
        assert codes("""
            import warnings
            warnings.warn("drifted", **kwargs)
        """) == []

    def test_unrelated_warn_function_ignored(self):
        assert codes("""
            def warn(msg):
                return msg
            warn("not the warnings module")
        """) == []


# ----------------------------------------------------------------------
class TestFrozenEngineMutationRule:
    def test_post_init_assignment_flagged(self):
        assert codes("""
            class FoldInEngine:
                def __init__(self):
                    self._work = None
                def theta(self, docs):
                    self._work = allocate(docs)
        """) == ["RPR003"]

    def test_augmented_and_unpacked_assignments_flagged(self):
        found = codes("""
            class EngineSpec:
                def rebuild(self):
                    self.calls += 1
                    self.a, self.b = 1, 2
        """)
        assert found == ["RPR003", "RPR003", "RPR003"]

    def test_init_and_post_init_are_exempt(self):
        assert codes("""
            class FoldInEngine:
                def __init__(self):
                    self._table = build()
                def __post_init__(self):
                    self._mass = 1.0
        """) == []

    def test_allowed_mutable_attribute_passes(self):
        # FoldInEngine.recorder is the one documented mutable slot
        # (worker processes neutralize an inherited recorder).
        assert codes("""
            class FoldInEngine:
                def neutralize(self):
                    self.recorder = NULL_RECORDER
        """) == []

    def test_unregistered_class_ignored(self):
        assert codes("""
            class MutableScratch:
                def grow(self):
                    self.size += 1
        """) == []


# ----------------------------------------------------------------------
class TestNopythonLaneRule:
    def test_missing_cache_flagged(self):
        assert codes("""
            @njit
            def lane(a):
                return a + 1
        """) == ["RPR004"]
        assert codes("""
            @numba.njit(parallel=False)
            def lane(a):
                return a + 1
        """) == ["RPR004"]

    def test_banned_constructs_flagged(self):
        found = codes("""
            @njit(cache=True)
            def lane(a, **extras):
                try:
                    label = f"topic {a}"
                except ValueError:
                    label = ""
                helper = lambda x: x + 1
                return helper(a), label
        """)
        assert sorted(found) == ["RPR004"] * 4  # kwargs, try, fstr, lambda

    def test_clean_compiled_lane_passes(self):
        assert codes("""
            @njit(cache=True)
            def lane(weights, out, total):
                acc = 0.0
                for t in range(weights.shape[0]):
                    acc += weights[t]
                    out[t] = acc
                return acc / total
        """) == []

    def test_undecorated_function_ignored(self):
        assert codes("""
            def interpreter_side(a):
                return f"value {a}"
        """) == []


# ----------------------------------------------------------------------
class TestTelemetryPurityRule:
    def test_bad_default_flagged(self):
        (violation,) = lint_source(dedent("""
            def serve(recorder=InMemoryRecorder()):
                recorder = ensure_recorder(recorder)
        """), "src/repro/example.py").violations
        assert violation.code == "RPR005"
        assert "default" in violation.message

    def test_unrouted_recorder_flagged(self):
        (violation,) = lint_source(dedent("""
            def serve(recorder=None):
                return recorder
        """), "src/repro/example.py").violations
        assert violation.code == "RPR005"
        assert "ensure_recorder" in violation.message

    def test_ensure_recorder_coercion_passes(self):
        assert codes("""
            def serve(recorder=None):
                recorder = ensure_recorder(recorder)
                return recorder
        """) == []

    def test_forwarding_wrapper_passes(self):
        assert codes("""
            def serve(docs, recorder=NULL_RECORDER):
                return engine(docs, recorder=recorder)
        """) == []

    def test_keyword_only_recorder_checked(self):
        assert codes("""
            def serve(*, recorder=None):
                return recorder
        """) == ["RPR005"]

    def test_protocol_stub_skipped(self):
        assert codes("""
            def record(recorder=None):
                \"\"\"Interface stub.\"\"\"
                raise NotImplementedError
        """) == []

    def test_recorder_call_in_rng_loop_flagged(self):
        (violation,) = lint_source(dedent("""
            def sample(rng, recorder):
                for token in range(100):
                    topic = rng.integers(10)
                    recorder.count("draws")
        """), "src/repro/example.py").violations
        assert violation.code == "RPR005"
        assert "loop" in violation.message

    def test_self_recorder_and_derived_rng_names_detected(self):
        assert codes("""
            def sample(self, doc_rng):
                while self.pending:
                    u = doc_rng.random()
                    self.recorder.observe("u", u)
        """) == ["RPR005"]

    def test_recording_outside_the_loop_passes(self):
        assert codes("""
            def sample(rng, recorder):
                total = 0
                for token in range(100):
                    total += rng.integers(10)
                recorder.count("draws", total)
        """) == []

    def test_recorder_loop_without_rng_passes(self):
        assert codes("""
            def merge(recorder, stats):
                for row in stats:
                    recorder.count("serving.worker.docs", row)
        """) == []

    def test_nested_function_scope_not_conflated(self):
        # The rng advance lives in a nested function (its own timing
        # domain); the loop itself only records.
        assert codes("""
            def schedule(recorder, tasks):
                for task in tasks:
                    def runner(rng):
                        return rng.random()
                    recorder.count("scheduled")
        """) == []


# ----------------------------------------------------------------------
class TestForkShippingRule:
    def test_open_handle_flagged(self):
        (violation,) = lint_source(dedent("""
            class EngineSpec:
                def __init__(self, path):
                    self.handle = open(path, "rb")
        """), "src/repro/example.py").violations
        assert violation.code == "RPR006"
        assert "open(...)" in violation.message

    def test_mmap_load_flagged(self):
        assert codes("""
            class ShardedPhi:
                def __init__(self, path):
                    self.block = np.load(path, mmap_mode="r")
        """) == ["RPR006"]
        assert codes("""
            class EngineSpec:
                def __init__(self, fileno):
                    self.map = mmap.mmap(fileno, 0)
        """) == ["RPR006"]

    def test_getstate_exempts(self):
        assert codes("""
            class ShardedPhi:
                def __init__(self, path):
                    self.block = np.load(path, mmap_mode="r")
                def __getstate__(self):
                    return {"path": self.path}
        """) == []

    def test_reduce_exempts(self):
        assert codes("""
            class ShardedPhi:
                def __init__(self, path):
                    self.block = np.load(path, mmap_mode="r")
                def __reduce__(self):
                    return (ShardedPhi, (self.path,))
        """) == []

    def test_plain_load_passes(self):
        assert codes("""
            class EngineSpec:
                def __init__(self, path):
                    self.phi = np.load(path)
                    self.other = np.load(path, mmap_mode=None)
        """) == []

    def test_unregistered_class_ignored(self):
        assert codes("""
            class LocalCache:
                def __init__(self, path):
                    self.handle = open(path, "rb")
        """) == []


# ----------------------------------------------------------------------
class TestSuppression:
    def test_noqa_waives_matching_code(self):
        result = lint_source(
            "np.random.seed(0)  # repro: noqa[RPR001] exactness oracle\n",
            "src/repro/example.py")
        assert result.violations == ()
        (entry,) = result.suppressed
        assert entry.violation.code == "RPR001"
        assert entry.reason == "exactness oracle"

    def test_noqa_requires_the_right_code(self):
        result = lint_source(
            "np.random.seed(0)  # repro: noqa[RPR002] wrong code\n",
            "src/repro/example.py")
        assert [v.code for v in result.violations] == ["RPR001"]

    def test_noqa_with_multiple_codes(self):
        source = ("import warnings\n"
                  "warnings.warn(np.random.rand())"
                  "  # repro: noqa[RPR001, RPR002] fixture\n")
        result = lint_source(source, "src/repro/example.py")
        assert result.violations == ()
        assert sorted(e.violation.code for e in result.suppressed) \
            == ["RPR001", "RPR002"]

    def test_justification_defaults_when_missing(self):
        result = lint_source(
            "np.random.seed(0)  # repro: noqa[RPR001]\n",
            "src/repro/example.py")
        (entry,) = result.suppressed
        assert entry.reason == "waived by pragma"

    def test_multiline_call_suppressed_on_reported_line(self):
        # The violation is reported at the call's first line; the
        # pragma belongs there, not on the continuation lines.
        result = lint_source(dedent("""
            import warnings
            warnings.warn(  # repro: noqa[RPR002] finalizer, no caller
                "unclosed resource",
                ResourceWarning,
            )
        """), "src/repro/example.py")
        assert result.violations == ()
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
class TestParseErrors:
    def test_syntax_error_reported_not_raised(self):
        result = lint_source("def broken(:\n", "src/repro/bad.py")
        (violation,) = result.violations
        assert violation.code == PARSE_ERROR_CODE
        assert "does not parse" in violation.message


# ----------------------------------------------------------------------
class TestCli:
    def _tree(self, tmp_path, dirty: bool = True):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "clean.py").write_text(
            "def f(seed):\n    return ensure_rng(seed)\n")
        if dirty:
            (package / "dirty.py").write_text(
                "import warnings\n"
                "np.random.seed(0)\n"
                "warnings.warn('x', RuntimeWarning)"
                "  # repro: noqa[RPR002] fixture waiver\n")
        return package

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        package = self._tree(tmp_path, dirty=False)
        assert main([str(package)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_with_findings(self, tmp_path, capsys):
        package = self._tree(tmp_path)
        assert main([str(package)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "dirty.py:2" in out

    def test_select_narrows_rules(self, tmp_path, capsys):
        package = self._tree(tmp_path)
        assert main([str(package), "--select", "RPR003"]) == 0
        assert main([str(package), "--select", "RPR999"]) == 2
        capsys.readouterr()

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()

    def test_no_python_files_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_json_report_shape(self, tmp_path, capsys):
        package = self._tree(tmp_path)
        report_path = tmp_path / "report.json"
        code = main([str(package), "--json", str(report_path)])
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert code == 1
        assert report["schema"] == ANALYSIS_SCHEMA
        assert report["schema_version"] == ANALYSIS_SCHEMA_VERSION
        assert report["exit_code"] == 1
        assert report["files"] == 2
        assert report["rules"] == [r.code for r in all_rules()]
        (row,) = report["verdicts"]
        # The shared gate shape: name / metric / verdict, like
        # compare.py --json rows.
        assert row["verdict"] == "violation"
        assert row["metric"] == "RPR001"
        assert row["name"].endswith("dirty.py:2:1")
        (skip,) = report["skipped"]
        assert skip["reason"] == "noqa[RPR002]: fixture waiver"

    def test_json_written_on_clean_run_too(self, tmp_path, capsys):
        package = self._tree(tmp_path, dirty=False)
        report_path = tmp_path / "report.json"
        assert main([str(package), "--json", str(report_path)]) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert report["exit_code"] == 0
        assert report["verdicts"] == []


# ----------------------------------------------------------------------
class TestLintPaths:
    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / ".hidden").mkdir()
        (package / "__pycache__" / "junk.py").write_text(
            "np.random.seed(0)\n")
        (package / ".hidden" / "junk.py").write_text(
            "np.random.seed(0)\n")
        (package / "real.py").write_text("np.random.seed(0)\n")
        result = lint_paths([package])
        assert result.files == 1
        assert [v.code for v in result.violations] == ["RPR001"]

    def test_explicit_file_paths_accepted(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("import random\n")
        result = lint_paths([target])
        assert result.files == 1
        assert [v.code for v in result.violations] == ["RPR001"]


# ----------------------------------------------------------------------
class TestSchedulerSpecRegistration:
    """The elastic-serving scheduler specs are covered by the linted
    contract: frozen after construction (RPR003) and safe to ship into
    worker processes (RPR006)."""

    def test_hedge_and_fault_specs_registered(self):
        from repro.analysis.rules import (FROZEN_CLASSES,
                                          WORKER_SPEC_CLASSES)
        for name in ("HedgePolicy", "WorkerFault"):
            assert name in FROZEN_CLASSES
            assert FROZEN_CLASSES[name] == frozenset()
            assert name in WORKER_SPEC_CLASSES

    def test_spec_mutation_is_flagged(self):
        assert "RPR003" in codes("""
            class HedgePolicy:
                def relax(self):
                    self.min_wait = 0.0
        """)
        assert "RPR003" in codes("""
            class WorkerFault:
                def calm(self):
                    self.sleep_seconds = 0.0
        """)

    def test_spec_resource_binding_is_flagged(self):
        assert "RPR006" in codes("""
            class HedgePolicy:
                def __init__(self, path):
                    self.trace = open(path)
        """)
        assert "RPR006" not in codes("""
            class HedgePolicy:
                def __init__(self, path):
                    self.trace = open(path)
                def __getstate__(self):
                    return {}
        """)
