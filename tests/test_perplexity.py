"""Tests for repro.metrics.perplexity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.perplexity import (heldout_gibbs_theta,
                                      log_likelihood_importance_sampling,
                                      perplexity_heldout_gibbs,
                                      perplexity_importance_sampling)
from repro.text.corpus import Corpus


@pytest.fixture
def phi() -> np.ndarray:
    return np.array([[0.7, 0.1, 0.1, 0.1],
                     [0.1, 0.1, 0.1, 0.7]])


@pytest.fixture
def corpus() -> Corpus:
    return Corpus.from_token_lists([["a", "a", "b"], ["d", "d", "c"]])


class TestImportanceSampling:
    def test_log_likelihood_negative(self, phi, corpus):
        value = log_likelihood_importance_sampling(phi, corpus, alpha=0.5,
                                                   num_samples=16, rng=0)
        assert value < 0

    def test_perplexity_bounded_by_vocab(self, phi, corpus):
        value = perplexity_importance_sampling(phi, corpus, alpha=0.5,
                                               num_samples=32, rng=0)
        # Perplexity of any model on a 4-word vocabulary is < some large
        # multiple of V; a sane fit is well under V.
        assert 1.0 < value < 40.0

    def test_better_phi_gives_lower_perplexity(self, corpus):
        matched = np.array([[0.45, 0.45, 0.05, 0.05],
                            [0.05, 0.05, 0.45, 0.45]])
        mismatched = np.array([[0.05, 0.05, 0.45, 0.45],
                               [0.45, 0.45, 0.05, 0.05]])
        uniform = np.full((2, 4), 0.25)
        good = perplexity_importance_sampling(matched, corpus, 0.5,
                                              num_samples=64, rng=1)
        flat = perplexity_importance_sampling(uniform, corpus, 0.5,
                                              num_samples=64, rng=1)
        assert good < flat
        # mismatched is equivalent to matched up to topic relabeling
        swapped = perplexity_importance_sampling(mismatched, corpus, 0.5,
                                                 num_samples=64, rng=1)
        assert swapped == pytest.approx(good, rel=0.15)

    def test_validates_phi(self, corpus):
        with pytest.raises(ValueError, match="sum to 1"):
            perplexity_importance_sampling(np.ones((2, 4)), corpus, 0.5)

    def test_validates_alpha(self, phi, corpus):
        with pytest.raises(ValueError, match="alpha"):
            perplexity_importance_sampling(phi, corpus, alpha=0.0)

    def test_empty_corpus_rejected(self, phi):
        from repro.text.vocabulary import Vocabulary
        empty = Corpus([], Vocabulary(["a", "b", "c", "d"]))
        with pytest.raises(ValueError, match="empty"):
            perplexity_importance_sampling(phi, empty, 0.5)

    def test_deterministic_given_seed(self, phi, corpus):
        a = perplexity_importance_sampling(phi, corpus, 0.5, 8, rng=3)
        b = perplexity_importance_sampling(phi, corpus, 0.5, 8, rng=3)
        assert a == b


class TestHeldoutGibbs:
    def test_theta_shape_and_normalization(self, phi, corpus):
        theta = heldout_gibbs_theta(phi, corpus, alpha=0.5,
                                    iterations=10, rng=0)
        assert theta.shape == (2, 2)
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)

    def test_theta_identifies_dominant_topic(self, phi, corpus):
        theta = heldout_gibbs_theta(phi, corpus, alpha=0.1,
                                    iterations=25, rng=0)
        # doc 0 is "a a b" -> topic 0; doc 1 is "d d c" -> topic 1
        assert theta[0, 0] > 0.6
        assert theta[1, 1] > 0.6

    def test_empty_document_gets_uniform_theta(self, phi):
        corpus = Corpus.from_token_lists([[]])
        # need the 4-word vocabulary
        from repro.text.vocabulary import Vocabulary
        vocab = Vocabulary(["a", "b", "c", "d"])
        corpus = Corpus.from_word_id_lists([[]], vocab)
        theta = heldout_gibbs_theta(phi, corpus, 0.5, iterations=3, rng=0)
        np.testing.assert_allclose(theta[0], 0.5)

    def test_perplexity_finite_and_reasonable(self, phi, corpus):
        value = perplexity_heldout_gibbs(phi, corpus, alpha=0.5,
                                         iterations=15, rng=0)
        assert 1.0 < value < 40.0

    def test_two_estimators_roughly_agree(self, phi, corpus):
        is_value = perplexity_importance_sampling(phi, corpus, 0.5,
                                                  num_samples=200, rng=2)
        hg_value = perplexity_heldout_gibbs(phi, corpus, 0.5,
                                            iterations=30, rng=2)
        assert hg_value == pytest.approx(is_value, rel=0.5)


class TestHeldoutBurnInRegression:
    """iterations=1 must accumulate the final sweep, not silently return
    the prior mean alpha / (length + T * alpha)."""

    def test_single_iteration_accumulates_a_sample(self, phi, corpus):
        theta = heldout_gibbs_theta(phi, corpus, alpha=0.5,
                                    iterations=1, rng=0)
        prior_mean = 0.5  # alpha / (length + T*alpha) normalized = 1/T
        # doc 0 is "a a b" and phi strongly favors topic 0 for it; a
        # real sample moves theta off the prior mean.
        assert theta[0, 0] != pytest.approx(prior_mean, abs=1e-12)
        assert theta[0, 0] > 0.55
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)

    def test_two_iterations_unchanged_behavior(self, phi, corpus):
        # burn_in = min(max(1, 1), 1) = 1 for iterations=2 — identical
        # to the pre-fix schedule (only the final sweep accumulates).
        theta = heldout_gibbs_theta(phi, corpus, alpha=0.5,
                                    iterations=2, rng=0)
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)

    def test_zero_iterations_rejected(self, phi, corpus):
        with pytest.raises(ValueError, match="iterations"):
            heldout_gibbs_theta(phi, corpus, 0.5, iterations=0, rng=0)


class TestValidatePhiFloat32Drift:
    """Rows whose sums drift past 1e-6 after a float32 round-trip are
    renormalized (with a warning) instead of rejected."""

    def _drifted_phi(self):
        # Row sums of 1 + 4e-6: inside the renormalization band, outside
        # the strict tolerance.
        return np.full((2, 4), 0.25 + 1e-6)

    def test_renormalizes_with_warning(self, corpus):
        with pytest.warns(RuntimeWarning, match="renormaliz"):
            value = perplexity_importance_sampling(
                self._drifted_phi(), corpus, alpha=0.5,
                num_samples=8, rng=0)
        assert np.isfinite(value) and value > 1.0

    def test_float32_roundtrip_accepted(self, phi, corpus):
        lean = phi.astype(np.float32).astype(np.float64)
        value = perplexity_heldout_gibbs(lean, corpus, alpha=0.5,
                                         iterations=5, rng=0)
        assert np.isfinite(value) and value > 1.0

    def test_large_drift_still_rejected(self, corpus):
        bad = np.full((2, 4), 0.3)  # rows sum to 1.2
        with pytest.raises(ValueError, match="sum to 1"):
            perplexity_importance_sampling(bad, corpus, 0.5)
