"""The unified sampling runtime: registry, kernel tables, backend parity.

Covers the PR-5 contract:

* the backend registry (``python`` always present, ``numba`` only when
  importable, ``auto`` degrading cleanly without it);
* kernel tables aliasing the live path caches (data, not code);
* the backend-parity matrix — all six model classes and both fold-in
  lanes produce equivalent results on every available backend
  (draw-identical where the lane contract says so, distributionally
  valid elsewhere); the numba half of the matrix skips gracefully on
  machines without numba;
* the vectorized alias-row builder staying bit-identical to the
  sequential Vose reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bijective import BijectiveSourceLDA
from repro.core.mixture import MixtureSourceLDA
from repro.core.source_lda import SourceLDA
from repro.models.ctm import CTM
from repro.models.eda import EDA
from repro.models.lda import LDA, LdaKernel
from repro.sampling.alias import build_alias_rows, build_alias_table
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.runtime import (PythonBackend, available_backends,
                                    resolve_backend)
from repro.sampling.state import GibbsState
from repro.serving.foldin import FoldInEngine

HAVE_NUMBA = "numba" in available_backends()
needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba backend not installed")


def make_state(corpus, num_topics, seed=3):
    state = GibbsState(corpus, num_topics)
    state.initialize_random(np.random.default_rng(seed))
    return state


#: (name, factory) for all six model classes; factories take the
#: knowledge source plus engine/backend kwargs.
def _model_factories(wiki_source):
    return [
        ("lda", lambda **kw: LDA(4, **kw)),
        ("eda", lambda **kw: EDA(wiki_source, **kw)),
        ("ctm", lambda **kw: CTM(wiki_source, num_free_topics=1,
                                 top_n_words=20, **kw)),
        ("bijective", lambda **kw: BijectiveSourceLDA(wiki_source, **kw)),
        ("mixture", lambda **kw: MixtureSourceLDA(wiki_source,
                                                  num_free_topics=2,
                                                  **kw)),
        ("source", lambda **kw: SourceLDA(wiki_source,
                                          num_unlabeled_topics=1,
                                          approximation_steps=3, **kw)),
    ]


class TestRegistry:
    def test_python_backend_always_available(self):
        assert "python" in available_backends()
        assert isinstance(resolve_backend("python"), PythonBackend)

    def test_auto_resolves_to_a_registered_backend(self):
        resolved = resolve_backend("auto")
        assert resolved.name in available_backends()
        if not HAVE_NUMBA:
            # The clean-degradation contract: no numba, auto == python.
            assert resolved.name == "python"

    def test_backend_instance_passes_through(self):
        backend = resolve_backend("python")
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_missing_numba_is_loud_when_explicit(self):
        # auto degrades silently; an explicit request must not.
        with pytest.raises(ValueError, match="numba"):
            resolve_backend("numba")

    def test_sampler_validates_and_reports_backend(self, tiny_corpus):
        state = make_state(tiny_corpus, 2)
        kernel = LdaKernel(state, 0.5, 0.1)
        rng = np.random.default_rng(0)
        sampler = CollapsedGibbsSampler(state, kernel, rng,
                                        backend="python")
        assert sampler.backend == "python"
        with pytest.raises(ValueError, match="backend"):
            CollapsedGibbsSampler(state, kernel, rng, backend="warp")

    def test_auto_fallback_fits_every_model(self, wiki_source,
                                            wiki_corpus):
        # backend="auto" must fit cleanly whatever is installed.
        for name, factory in _model_factories(wiki_source):
            fitted = factory(engine="fast", backend="auto").fit(
                wiki_corpus, iterations=1, seed=5)
            np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0,
                                       err_msg=name)


class TestKernelTables:
    """Tables are views of the live caches — data, not copies."""

    def test_lda_table_aliases_caches(self, tiny_corpus):
        state = make_state(tiny_corpus, 3)
        path = LdaKernel(state, 0.5, 0.1).fast_path()
        table = path.table()
        assert table.kind == "lda"
        assert table.nt_beta is path._nt_beta
        path.begin_sweep()
        np.testing.assert_array_equal(table.nt_beta,
                                      state.nt + 0.1 * state.vocab_size)

    def test_source_table_aliases_caches(self, small_source, tiny_corpus):
        from repro.core.kernels import SourceTopicsKernel
        from repro.core.priors import SourcePrior
        from repro.sampling.integration import LambdaGrid
        prior = SourcePrior(small_source, tiny_corpus.vocabulary)
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=3)
        tables = prior.grid_tables(grid.nodes)
        state = make_state(tiny_corpus, prior.num_topics)
        kernel = SourceTopicsKernel(state, num_free=0, alpha=0.5,
                                    beta=0.1, tables=tables, grid=grid)
        dense = kernel.fast_path().table()
        assert dense.kind == "source"
        assert dense.E_flat.base is dense.E
        sparse_path = kernel.sparse_path()
        bij = sparse_path.sparse_table()
        assert bij is not None and bij.kind == "source_bijective"
        # Live-cache sharing: the sparse table reads the fast path's E.
        assert bij.E is sparse_path._fast._E
        # The SparseKernelPath driver protocol (begin_document) must
        # stay callable on a bijective path even though the runtime
        # chunk loop does its own document bookkeeping.
        sparse_path.begin_sweep()
        sparse_path.begin_document(0)

    def test_paths_without_tables_stay_on_object_lane(self, wiki_source,
                                                      wiki_corpus):
        from repro.models.ctm import CtmKernel, concept_word_mask
        mask = concept_word_mask(wiki_source, wiki_corpus.vocabulary,
                                 top_n_words=20)
        state = make_state(wiki_corpus, 2 + len(wiki_source))
        kernel = CtmKernel(state, mask, 2, alpha=0.5, beta=0.1)
        assert kernel.fast_path().table() is None


class TestPythonBackendIsPrePrBehavior:
    """backend="python" must be the engines' historical behavior —
    the existing exactness suites pin python-vs-reference; this pins
    explicit-python vs the default resolution."""

    @pytest.mark.parametrize("engine", ["fast", "sparse"])
    def test_explicit_python_matches_default(self, wiki_source,
                                             wiki_corpus, engine):
        for name, factory in _model_factories(wiki_source):
            default = factory(engine=engine).fit(
                wiki_corpus, iterations=2, seed=5)
            explicit = factory(engine=engine, backend="python").fit(
                wiki_corpus, iterations=2, seed=5)
            if not HAVE_NUMBA:
                # auto == python: the chains must be byte-identical.
                np.testing.assert_array_equal(
                    default.flat_assignments(),
                    explicit.flat_assignments(), err_msg=name)
            np.testing.assert_allclose(explicit.theta.sum(axis=1), 1.0,
                                       err_msg=name)


@needs_numba
class TestBackendParityMatrix:
    """python vs numba across all six model classes and both engines.

    Draw-identical lanes (compiled LDA/EDA dense loops preserve the
    python backend's summation order; lanes numba does not compile
    fall through to the interpreted loop) must produce byte-identical
    chains.  The compiled Source-LDA dense lane reassociates the
    quadrature contraction and is checked distributionally.
    """

    DRAW_IDENTICAL_FAST = {"lda", "eda", "ctm"}

    def _fit_pair(self, factory, corpus, engine):
        fitted = {}
        for backend in ("python", "numba"):
            fitted[backend] = factory(engine=engine,
                                      backend=backend).fit(
                corpus, iterations=3, seed=5)
        return fitted["python"], fitted["numba"]

    @pytest.mark.parametrize("engine", ["fast", "sparse"])
    def test_all_models_agree(self, wiki_source, wiki_corpus, engine):
        for name, factory in _model_factories(wiki_source):
            py, nb = self._fit_pair(factory, wiki_corpus, engine)
            draw_identical = (engine == "fast"
                              and name in self.DRAW_IDENTICAL_FAST) \
                or (engine == "sparse" and name == "ctm")
            if draw_identical:
                np.testing.assert_array_equal(
                    py.flat_assignments(), nb.flat_assignments(),
                    err_msg=f"{name}/{engine}")
            # Distributional flooring for every lane: valid simplex
            # rows and per-topic occupancy in the same ballpark.
            np.testing.assert_allclose(nb.theta.sum(axis=1), 1.0,
                                       err_msg=f"{name}/{engine}")
            np.testing.assert_allclose(
                nb.theta.mean(axis=0), py.theta.mean(axis=0),
                atol=0.10, err_msg=f"{name}/{engine}")


class TestFoldInBackends:
    @pytest.fixture
    def phi(self):
        rng = np.random.default_rng(11)
        phi = rng.random((6, 30))
        return phi / phi.sum(axis=1, keepdims=True)

    @pytest.fixture
    def docs(self):
        rng = np.random.default_rng(12)
        return [rng.integers(0, 30, size=n) for n in (14, 3, 25)]

    def test_backend_name_exposed(self, phi):
        engine = FoldInEngine(phi, alpha=0.4, backend="python")
        assert engine.backend_name == "python"
        auto = FoldInEngine(phi, alpha=0.4)
        assert auto.backend_name in available_backends()

    def test_engine_spec_ships_resolved_backend(self, phi):
        from repro.serving.parallel import ParallelFoldIn
        engine = FoldInEngine(phi, alpha=0.4, mode="sparse",
                              backend="python")
        foldin = ParallelFoldIn(engine, num_workers=1)
        assert foldin._spec.backend == "python"

    def test_session_exposes_backend(self, phi):
        from repro.models.base import FittedTopicModel
        from repro.serving.session import InferenceSession
        from repro.text.vocabulary import Vocabulary
        vocabulary = Vocabulary()
        for i in range(30):
            vocabulary.add(f"w{i}")
        model = FittedTopicModel(
            phi=phi, theta=np.full((2, 6), 1 / 6),
            assignments=[np.zeros(3, dtype=np.int64)],
            vocabulary=vocabulary.freeze(),
            metadata={"alpha": 0.4})
        session = InferenceSession(model, backend="python")
        assert session.backend == "python"
        theta = session.theta([["w1", "w2", "w3"]])
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)

    @needs_numba
    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    def test_lane_parity_python_vs_numba(self, phi, docs, mode):
        thetas = {}
        for backend in ("python", "numba"):
            engine = FoldInEngine(phi, alpha=0.4, iterations=40,
                                  mode=mode, backend=backend)
            thetas[backend] = engine.theta(docs, rng=123)
        if mode == "exact":
            # The compiled exact lane preserves summation order:
            # byte-identical theta.
            np.testing.assert_array_equal(thetas["python"],
                                          thetas["numba"])
        else:
            # The sparse lane's bucket masses reassociate: same
            # distribution, agreement within Monte Carlo tolerance.
            np.testing.assert_allclose(thetas["numba"],
                                       thetas["python"], atol=0.15)
        for theta in thetas.values():
            np.testing.assert_allclose(theta.sum(axis=1), 1.0)


class TestVectorizedAliasRows:
    """The lockstep builder must replay Vose bit-for-bit per row."""

    def test_bit_identical_to_sequential(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            rows = int(rng.integers(1, 30))
            n = int(rng.integers(1, 40))
            weights = rng.random((rows, n))
            weights *= rng.random((rows, n)) < 0.7  # sprinkle zeros
            if trial % 4 == 0:
                weights[0] = 0.0  # all-zero poison row
            accept, alias = build_alias_rows(weights)
            for row in range(rows):
                ref_accept, ref_alias = build_alias_table(weights[row])
                np.testing.assert_array_equal(accept[row], ref_accept)
                np.testing.assert_array_equal(alias[row], ref_alias)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="2-d"):
            build_alias_rows(np.ones(3))
        with pytest.raises(ValueError, match="non-empty"):
            build_alias_rows(np.ones((2, 0)))
        with pytest.raises(ValueError, match="finite"):
            build_alias_rows(np.array([[1.0, -0.5]]))

    def test_empty_row_matrix(self):
        accept, alias = build_alias_rows(np.empty((0, 4)))
        assert accept.shape == (0, 4)
        assert alias.shape == (0, 4)
