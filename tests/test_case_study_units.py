"""Unit tests for the case-study driver's helpers (fast paths only;
the full seed-scan demonstration lives in benchmarks/)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.case_study import (CASE_STUDY_ARTICLES,
                                          CaseStudyResult, _is_mixed,
                                          case_study_corpus,
                                          case_study_source,
                                          format_case_study)
from repro.models.base import FittedTopicModel


class TestCorpusAndSource:
    def test_corpus_matches_paper(self):
        corpus = case_study_corpus()
        assert len(corpus) == 2
        assert corpus.num_tokens == 6
        words = corpus.vocabulary.words
        assert set(words) == {"pencil", "umpire", "ruler", "baseball"}

    def test_source_articles_contain_corpus_words(self):
        source = case_study_source()
        school = source.tokens("School Supplies")
        ball = source.tokens("Baseball")
        assert "pencil" in school and "ruler" in school
        assert "umpire" in ball and "baseball" in ball

    def test_article_multiplicities_dominate_correctly(self):
        school = CASE_STUDY_ARTICLES["School Supplies"]
        ball = CASE_STUDY_ARTICLES["Baseball"]
        assert school.count("pencil") > ball.count("pencil") == 0
        assert ball.count("baseball") > school.count("baseball") == 0


def _model_with_assignments(z_doc1, z_doc2) -> FittedTopicModel:
    corpus = case_study_corpus()
    phi = np.full((2, 4), 0.25)
    return FittedTopicModel(
        phi=phi, theta=np.full((2, 2), 0.5),
        assignments=[np.asarray(z_doc1), np.asarray(z_doc2)],
        vocabulary=corpus.vocabulary)


class TestIsMixed:
    def test_ideal_assignment_not_mixed(self):
        # pencil,pencil->0 umpire->1 / ruler,ruler->0 baseball->1
        model = _model_with_assignments([0, 0, 1], [0, 0, 1])
        assert not _is_mixed(model)

    def test_papers_confused_assignment_is_mixed(self):
        # pencil,pencil->0 umpire->1 / ruler,ruler->1 baseball->0
        model = _model_with_assignments([0, 0, 1], [1, 1, 0])
        assert _is_mixed(model)

    def test_single_topic_everything_is_mixed(self):
        model = _model_with_assignments([0, 0, 0], [0, 0, 0])
        assert _is_mixed(model)


class TestFormatting:
    def test_format_includes_all_techniques(self):
        result = CaseStudyResult(
            lda_seed=3,
            lda_assignments=[[("pencil", 1)], [("ruler", 2)]],
            technique_labels={"JS Divergence": ("Baseball", "Baseball"),
                              "Counting": ("Baseball", "School Supplies")},
            collapsed_techniques=("JS Divergence",),
            source_lda_assignments=[[("pencil", 1)], [("ruler", 1)]],
            source_lda_labels=("School Supplies", "Baseball"),
            source_lda_separates=True)
        text = format_case_study(result)
        assert "JS Divergence" in text
        assert "Counting" in text
        assert "seed 3" in text
        assert "True" in text
