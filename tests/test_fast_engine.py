"""Draw-for-draw exactness of the fast sweep engine.

The fast engine (`repro.sampling.fast_engine`) must reproduce the
reference Algorithm 1 sweep *exactly*: same seed in, byte-identical
``z``/``nw``/``nd``/``nt`` out, for every kernel in the model family.
These tests are the oracle the ISSUE's incremental-cache algebra is held
against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import SourceTopicsKernel
from repro.core.priors import SourcePrior
from repro.models.ctm import CtmKernel, concept_word_mask
from repro.models.eda import EdaKernel
from repro.models.lda import LdaKernel
from repro.sampling.fast_engine import FastSweepEngine
from repro.sampling.gibbs import CollapsedGibbsSampler, TopicWeightKernel
from repro.sampling.integration import LambdaGrid
from repro.sampling.state import GibbsState

SWEEPS = 4
INIT_SEED = 3
DRAW_SEED = 11


def run_engines(corpus, make_kernel, num_topics, sweeps=SWEEPS):
    """Run reference and fast sweeps from identical seeds; return states."""
    states = {}
    for engine in ("reference", "fast"):
        state = GibbsState(corpus, num_topics)
        state.initialize_random(np.random.default_rng(INIT_SEED))
        kernel = make_kernel(state)
        sampler = CollapsedGibbsSampler(
            state, kernel, np.random.default_rng(DRAW_SEED), engine=engine)
        for _ in range(sweeps):
            sampler.sweep()
        states[engine] = state
    return states["reference"], states["fast"]


def assert_identical(reference: GibbsState, fast: GibbsState) -> None:
    assert np.array_equal(reference.z, fast.z)
    assert np.array_equal(reference.nw, fast.nw)
    assert np.array_equal(reference.nd, fast.nd)
    assert np.array_equal(reference.nt, fast.nt)
    assert fast.counts_consistent()


class TestLdaExactness:
    def test_byte_identical(self, wiki_corpus):
        ref, fast = run_engines(
            wiki_corpus, lambda s: LdaKernel(s, alpha=0.5, beta=0.1),
            num_topics=6)
        assert_identical(ref, fast)

    def test_single_topic(self, tiny_corpus):
        ref, fast = run_engines(
            tiny_corpus, lambda s: LdaKernel(s, alpha=0.5, beta=0.1),
            num_topics=1)
        assert_identical(ref, fast)


class TestEdaExactness:
    def test_byte_identical(self, wiki_source, wiki_corpus):
        from repro.knowledge.distributions import source_hyperparameters
        counts = wiki_source.count_matrix(wiki_corpus.vocabulary)
        smoothed = source_hyperparameters(counts, 0.01)
        phi = smoothed / smoothed.sum(axis=1, keepdims=True)
        ref, fast = run_engines(
            wiki_corpus, lambda s: EdaKernel(s, phi, alpha=0.5),
            num_topics=len(wiki_source))
        assert_identical(ref, fast)


class TestCtmExactness:
    def test_mixed_layout(self, wiki_source, wiki_corpus):
        num_free = 2
        mask = concept_word_mask(wiki_source, wiki_corpus.vocabulary,
                                 top_n_words=20)
        ref, fast = run_engines(
            wiki_corpus,
            lambda s: CtmKernel(s, mask, num_free, alpha=0.5, beta=0.1),
            num_topics=num_free + len(wiki_source))
        assert_identical(ref, fast)

    def test_out_of_bag_fallback(self, wiki_source, wiki_corpus):
        # Bags of one word leave most tokens outside every bag; with no
        # free topics this exercises the uniform-over-concepts fallback
        # branch on both engines.
        mask = concept_word_mask(wiki_source, wiki_corpus.vocabulary,
                                 top_n_words=1)
        ref, fast = run_engines(
            wiki_corpus,
            lambda s: CtmKernel(s, mask, 0, alpha=0.5, beta=0.1),
            num_topics=len(wiki_source))
        assert_identical(ref, fast)


class TestSourceTopicsExactness:
    def _make(self, source, corpus, num_free, grid):
        prior = SourcePrior(source, corpus.vocabulary)
        tables = prior.grid_tables(grid.nodes)
        return (lambda s: SourceTopicsKernel(
            s, num_free=num_free, alpha=0.5, beta=0.1, tables=tables,
            grid=grid), num_free + prior.num_topics)

    def test_bijective_fixed_lambda(self, wiki_source, wiki_corpus):
        make, num_topics = self._make(wiki_source, wiki_corpus, 0,
                                      LambdaGrid.fixed(1.0))
        ref, fast = run_engines(wiki_corpus, make, num_topics)
        assert_identical(ref, fast)

    def test_mixture_fixed_lambda(self, wiki_source, wiki_corpus):
        make, num_topics = self._make(wiki_source, wiki_corpus, 3,
                                      LambdaGrid.fixed(0.7))
        ref, fast = run_engines(wiki_corpus, make, num_topics)
        assert_identical(ref, fast)

    def test_full_grid(self, wiki_source, wiki_corpus):
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=5)
        make, num_topics = self._make(wiki_source, wiki_corpus, 2, grid)
        ref, fast = run_engines(wiki_corpus, make, num_topics)
        assert_identical(ref, fast)

    def test_small_corpus(self, small_source, tiny_corpus):
        prior = SourcePrior(small_source, tiny_corpus.vocabulary)
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=4)
        tables = prior.grid_tables(grid.nodes)
        ref, fast = run_engines(
            tiny_corpus,
            lambda s: SourceTopicsKernel(s, num_free=1, alpha=0.5,
                                         beta=0.1, tables=tables,
                                         grid=grid),
            prior.num_topics + 1)
        assert_identical(ref, fast)


class PlainKernel(TopicWeightKernel):
    """A kernel without a fast path — exercises the generic fallback."""

    def __init__(self, state, alpha=0.5, beta=0.1):
        super().__init__(state)
        self.alpha = alpha
        self.beta = beta

    def weights(self, word, doc):
        state = self.state
        return ((state.nw[word] + self.beta)
                / (state.nt + self.beta * state.vocab_size)
                * (state.nd[doc] + self.alpha))

    def phi(self):
        raise NotImplementedError

    def log_likelihood(self):
        raise NotImplementedError


class TestGenericFallback:
    def test_kernel_without_fast_path(self, wiki_corpus):
        ref, fast = run_engines(wiki_corpus, PlainKernel, num_topics=4)
        assert_identical(ref, fast)

    def test_engine_uses_generic_loop(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        engine = FastSweepEngine(state, PlainKernel(state),
                                 np.random.default_rng(0))
        assert engine._path is None
        engine.sweep()
        assert state.counts_consistent()


class TestEngineSelection:
    def test_invalid_engine_rejected(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        with pytest.raises(ValueError, match="engine"):
            CollapsedGibbsSampler(state, kernel, rng, engine="warp")

    def test_lda_model_engines_agree(self, wiki_corpus):
        from repro.models.lda import LDA
        fast = LDA(3, engine="fast").fit(wiki_corpus, iterations=2, seed=5)
        ref = LDA(3, engine="reference").fit(wiki_corpus, iterations=2,
                                             seed=5)
        for a, b in zip(fast.assignments, ref.assignments):
            assert np.array_equal(a, b)
        np.testing.assert_array_equal(fast.phi, ref.phi)

    def test_bijective_model_engines_agree(self, wiki_source, wiki_corpus):
        from repro.core.bijective import BijectiveSourceLDA
        fast = BijectiveSourceLDA(wiki_source, engine="fast").fit(
            wiki_corpus, iterations=2, seed=5)
        ref = BijectiveSourceLDA(wiki_source, engine="reference").fit(
            wiki_corpus, iterations=2, seed=5)
        for a, b in zip(fast.assignments, ref.assignments):
            assert np.array_equal(a, b)
        np.testing.assert_array_equal(fast.phi, ref.phi)

    def test_zero_mass_raises_like_reference(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        phi = np.zeros((2, tiny_corpus.vocab_size))
        kernel = EdaKernel(state, phi + 1e-300, alpha=1e-9)
        kernel._phi_by_word[:] = 0.0  # force zero mass
        sampler = CollapsedGibbsSampler(state, kernel,
                                        np.random.default_rng(0),
                                        engine="fast")
        with pytest.raises(ValueError, match="positive finite mass"):
            sampler.sweep()


class TestChunkedLoop:
    def test_tiny_chunks_match_reference(self, wiki_corpus):
        # Chunk boundaries must not perturb the draw stream: consecutive
        # rng.random(c) batches concatenate to one rng.random(N).
        reference = GibbsState(wiki_corpus, 4)
        reference.initialize_random(np.random.default_rng(INIT_SEED))
        sampler = CollapsedGibbsSampler(
            reference, LdaKernel(reference, 0.5, 0.1),
            np.random.default_rng(DRAW_SEED), engine="reference")
        chunked = GibbsState(wiki_corpus, 4)
        chunked.initialize_random(np.random.default_rng(INIT_SEED))
        engine = FastSweepEngine(chunked, LdaKernel(chunked, 0.5, 0.1),
                                 np.random.default_rng(DRAW_SEED),
                                 chunk_size=7)
        for _ in range(SWEEPS):
            sampler.sweep()
            engine.sweep()
        assert_identical(reference, chunked)

    def test_invalid_chunk_size(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 2)
        state.initialize_random(rng)
        with pytest.raises(ValueError, match="chunk_size"):
            FastSweepEngine(state, LdaKernel(state, 0.5, 0.1), rng,
                            chunk_size=0)

    def test_mid_sweep_error_keeps_z_synced(self, wiki_corpus):
        # If a kernel raises mid-sweep, z must reflect every completed
        # reassignment — the only inconsistency is the one token that
        # was decremented but never re-incremented (the reference
        # engine's failure state).
        state = GibbsState(wiki_corpus, 4)
        state.initialize_random(np.random.default_rng(INIT_SEED))
        kernel = LdaKernel(state, 0.5, 0.1)
        real_weights = kernel.fast_path().__class__.weights
        calls = {"n": 0}

        class Exploding(type(kernel.fast_path())):
            def table(self):
                # Stay on the object lane so the overridden weights()
                # below is actually what the backend calls per token.
                return None

            def weights(self, word, doc_row):
                calls["n"] += 1
                if calls["n"] > 10:
                    raise RuntimeError("boom")
                return real_weights(self, word, doc_row)

        engine = FastSweepEngine(state, kernel,
                                 np.random.default_rng(DRAW_SEED))
        engine._path = Exploding(kernel)
        with pytest.raises(RuntimeError, match="boom"):
            engine.sweep()
        # Re-incrementing the failing (11th) token restores consistency.
        state.increment(10, int(state.z[10]))
        assert state.counts_consistent()


class TestStateInvariants:
    def test_rebuild_counts_keeps_nt_identity(self, tiny_corpus, rng):
        state = GibbsState(tiny_corpus, 3)
        state.initialize_random(rng)
        nt_ref = state.nt
        state.initialize_random(rng)
        assert state.nt is nt_ref
        assert np.array_equal(state.nt, state.nw.sum(axis=0))

    def test_counts_consistent_after_fast_sweeps(self, wiki_corpus):
        state = GibbsState(wiki_corpus, 4)
        state.initialize_random(np.random.default_rng(0))
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        sampler = CollapsedGibbsSampler(state, kernel,
                                        np.random.default_rng(1),
                                        engine="fast")
        sampler.run(3)
        assert state.counts_consistent()

    def test_fast_engine_survives_external_rebuild(self, wiki_corpus):
        # Caches rebuild per sweep, and state.nt is never rebound — an
        # external rebuild_counts between sweeps must not desync them.
        state = GibbsState(wiki_corpus, 4)
        state.initialize_random(np.random.default_rng(0))
        kernel = LdaKernel(state, alpha=0.5, beta=0.1)
        sampler = CollapsedGibbsSampler(state, kernel,
                                        np.random.default_rng(1),
                                        engine="fast")
        sampler.sweep()
        state.rebuild_counts()
        sampler.sweep()
        assert state.counts_consistent()
