"""Tests for repro.sampling.integration (LambdaGrid)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.integration import DEFAULT_STEPS, LambdaGrid


class TestConstruction:
    def test_weights_normalized(self):
        grid = LambdaGrid(nodes=np.array([0.2, 0.8]),
                          weights=np.array([2.0, 6.0]))
        np.testing.assert_allclose(grid.weights, [0.25, 0.75])

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            LambdaGrid(nodes=np.array([1.5]), weights=np.array([1.0]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            LambdaGrid(nodes=np.array([0.5]), weights=np.array([-1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            LambdaGrid(nodes=np.array([]), weights=np.array([]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="equal length"):
            LambdaGrid(nodes=np.array([0.5]), weights=np.array([1.0, 2.0]))

    def test_len(self):
        assert len(LambdaGrid.from_prior(0.5, 0.3, steps=7)) == 7


class TestFromPrior:
    def test_default_steps(self):
        grid = LambdaGrid.from_prior(0.7, 0.3)
        assert len(grid) == DEFAULT_STEPS

    def test_nodes_are_midpoints(self):
        grid = LambdaGrid.from_prior(0.5, 0.3, steps=4)
        np.testing.assert_allclose(grid.nodes,
                                   [0.125, 0.375, 0.625, 0.875])

    def test_weights_peak_near_mu(self):
        grid = LambdaGrid.from_prior(0.7, 0.1, steps=9)
        assert grid.nodes[grid.weights.argmax()] == pytest.approx(0.7,
                                                                  abs=0.08)

    def test_sigma_zero_degenerates(self):
        grid = LambdaGrid.from_prior(0.4, 0.0)
        assert len(grid) == 1
        assert grid.nodes[0] == 0.4
        assert grid.weights[0] == 1.0

    def test_sigma_zero_clips_mu(self):
        assert LambdaGrid.from_prior(7.0, 0.0).nodes[0] == 1.0
        assert LambdaGrid.from_prior(-3.0, 0.0).nodes[0] == 0.0

    def test_far_mu_underflow_fallback(self):
        grid = LambdaGrid.from_prior(500.0, 1e-3, steps=5)
        assert grid.weights.sum() == pytest.approx(1.0)
        # All mass on the node closest to the clipped mu.
        assert grid.nodes[grid.weights.argmax()] == grid.nodes[-1]

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            LambdaGrid.from_prior(0.5, -0.1)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError, match="steps"):
            LambdaGrid.from_prior(0.5, 0.3, steps=0)

    def test_large_sigma_near_uniform(self):
        grid = LambdaGrid.from_prior(0.5, 100.0, steps=5)
        np.testing.assert_allclose(grid.weights, 0.2, atol=0.01)


class TestFixed:
    def test_single_node(self):
        grid = LambdaGrid.fixed(0.3)
        assert len(grid) == 1
        assert grid.nodes[0] == 0.3

    def test_range_validation(self):
        with pytest.raises(ValueError, match="lambda"):
            LambdaGrid.fixed(1.2)


class TestExpectation:
    def test_weighted_average(self):
        grid = LambdaGrid(nodes=np.array([0.0, 1.0]),
                          weights=np.array([0.25, 0.75]))
        assert grid.expectation(np.array([0.0, 4.0])) == pytest.approx(3.0)

    def test_matrix_expectation(self):
        grid = LambdaGrid(nodes=np.array([0.0, 1.0]),
                          weights=np.array([0.5, 0.5]))
        values = np.array([[1.0, 3.0], [2.0, 4.0]])
        np.testing.assert_allclose(grid.expectation(values), [2.0, 3.0])

    def test_shape_validation(self):
        grid = LambdaGrid.fixed(0.5)
        with pytest.raises(ValueError, match="last axis"):
            grid.expectation(np.zeros((3, 2)))

    @given(st.floats(min_value=0, max_value=1),
           st.floats(min_value=0.01, max_value=5),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_property_weights_form_distribution(self, mu, sigma, steps):
        grid = LambdaGrid.from_prior(mu, sigma, steps)
        assert grid.weights.sum() == pytest.approx(1.0)
        assert np.all(grid.weights >= 0)
        assert np.all((grid.nodes >= 0) & (grid.nodes <= 1))
