"""Tests for repro.text.tfidf."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.corpus import Corpus
from repro.text.tfidf import TfidfVectorizer, cosine_similarity


@pytest.fixture
def corpus() -> Corpus:
    return Corpus.from_texts(
        ["apple apple banana", "banana cherry", "cherry cherry cherry"],
        tokenizer=None)


class TestTfidfVectorizer:
    def test_requires_fit_before_transform(self):
        with pytest.raises(RuntimeError, match="not been fitted"):
            TfidfVectorizer().transform(np.zeros((1, 3)))

    def test_idf_is_higher_for_rarer_terms(self, corpus: Corpus):
        vectorizer = TfidfVectorizer().fit(corpus)
        vocab = corpus.vocabulary
        # apple appears in 1 doc, banana in 2: apple has higher IDF.
        assert vectorizer.idf[vocab["apple"]] > \
            vectorizer.idf[vocab["banana"]]

    def test_idf_strictly_positive(self, corpus: Corpus):
        vectorizer = TfidfVectorizer().fit(corpus)
        assert np.all(vectorizer.idf > 0)

    def test_transform_scales_counts(self, corpus: Corpus):
        vectorizer = TfidfVectorizer().fit(corpus)
        counts = np.array([[2.0, 0.0, 0.0]])
        weighted = vectorizer.transform(counts)
        assert weighted[0, 0] == pytest.approx(2.0 * vectorizer.idf[0])

    def test_transform_validates_width(self, corpus: Corpus):
        vectorizer = TfidfVectorizer().fit(corpus)
        with pytest.raises(ValueError, match="columns"):
            vectorizer.transform(np.zeros((1, 99)))

    def test_fit_transform_shape(self, corpus: Corpus):
        matrix = TfidfVectorizer().fit_transform(corpus)
        assert matrix.shape == (3, corpus.vocab_size)

    def test_unseen_word_gets_finite_weight(self):
        corpus = Corpus.from_texts(["a a", "a"], tokenizer=None)
        # Extend vocabulary with a word no document contains.
        corpus.vocabulary.add("ghost")
        extended = Corpus.from_texts(["a a", "a"], tokenizer=None,
                                     vocabulary=corpus.vocabulary)
        vectorizer = TfidfVectorizer().fit(extended)
        assert np.isfinite(vectorizer.idf).all()


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([[1.0, 2.0, 3.0]])
        assert cosine_similarity(v, v)[0, 0] == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert cosine_similarity(a, b)[0, 0] == pytest.approx(0.0)

    def test_zero_vector_yields_zero_not_nan(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        assert cosine_similarity(a, b)[0, 0] == 0.0

    def test_pairwise_shape(self):
        a = np.random.default_rng(0).random((3, 4))
        b = np.random.default_rng(1).random((5, 4))
        assert cosine_similarity(a, b).shape == (3, 5)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            cosine_similarity(np.zeros((1, 2)), np.zeros((1, 3)))

    def test_scale_invariance(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[2.0, 1.0]])
        small = cosine_similarity(a, b)
        large = cosine_similarity(10 * a, 100 * b)
        np.testing.assert_allclose(small, large)

    def test_bounded_by_one(self):
        rng = np.random.default_rng(2)
        a, b = rng.random((4, 6)), rng.random((3, 6))
        sims = cosine_similarity(a, b)
        assert np.all(sims <= 1.0 + 1e-12)
        assert np.all(sims >= -1.0 - 1e-12)
