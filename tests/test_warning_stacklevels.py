"""Every warning in the serving stack must name the *caller's* file.

``warnings.warn(..., stacklevel=...)`` is how a library points a
warning at the line that can fix it.  A wrong stacklevel reports the
warning against library internals (useless to operators, invisible to
``filterwarnings`` rules keyed on the caller's module).  The convention
(documented on each warning function): stacklevel counts from the
warning function itself, the default 2 names the direct caller, and
wrappers warning on a caller's behalf pass 3.

Each test triggers one warning site and asserts the reported filename
is THIS test module — the direct caller's file."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.metrics.perplexity import (heldout_gibbs_theta,
                                      perplexity_heldout_gibbs,
                                      perplexity_importance_sampling)
from repro.models.base import FittedTopicModel
from repro.serving import (FoldInEngine, InferenceSession, ModelRegistry,
                           load_model, save_model)
from repro.serving.foldin import validate_phi
from repro.text.corpus import Corpus
from repro.text.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def drifted_phi():
    """Rows summing to 1 + 5e-4: inside the renormalization band
    (PHI_RENORM_ATOL=1e-3), outside exactness (PHI_SUM_ATOL=1e-6) —
    the float32 round-trip signature that triggers the warning."""
    rng = np.random.default_rng(5)
    phi = rng.dirichlet(np.full(20, 0.5), size=4)
    return phi * (1 + 5e-4)


@pytest.fixture(scope="module")
def drifted_model(drifted_phi):
    num_topics, vocab_size = drifted_phi.shape
    vocab = Vocabulary(f"w{i}" for i in range(vocab_size))
    vocab.freeze()
    rng = np.random.default_rng(2)
    return FittedTopicModel(
        phi=drifted_phi,
        theta=rng.dirichlet(np.full(num_topics, 0.5), size=2),
        assignments=[rng.integers(0, num_topics, size=4)
                     for _ in range(2)],
        vocabulary=vocab,
        metadata={"alpha": 0.4})


@pytest.fixture(scope="module")
def clean_model(drifted_model):
    """The same model with exactly-stochastic phi, so artifact tests
    see only the schema-v1 mmap-fallback warning."""
    phi = drifted_model.phi / drifted_model.phi.sum(axis=1,
                                                    keepdims=True)
    return FittedTopicModel(
        phi=phi, theta=drifted_model.theta,
        assignments=drifted_model.assignments,
        vocabulary=drifted_model.vocabulary,
        metadata=drifted_model.metadata)


@pytest.fixture(scope="module")
def tiny_docs():
    return Corpus.from_token_lists([["w0", "w1", "w2"], ["w3", "w4"]],
                                   vocabulary=None)


def _sole_warning(caught, category):
    assert len(caught) == 1, [str(w.message) for w in caught]
    assert issubclass(caught[0].category, category)
    return caught[0]


def test_validate_phi_names_its_direct_caller(drifted_phi):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        validate_phi(drifted_phi)
    assert _sole_warning(caught, RuntimeWarning).filename == __file__


def test_foldin_engine_names_the_construction_site(drifted_phi):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        FoldInEngine(drifted_phi, 0.4, iterations=2)
    assert _sole_warning(caught, RuntimeWarning).filename == __file__


def test_session_names_the_construction_site(drifted_model):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        session = InferenceSession(drifted_model, iterations=2, seed=0)
    session.close()
    assert _sole_warning(caught, RuntimeWarning).filename == __file__


def test_session_alpha_fallback_names_the_construction_site(
        drifted_model):
    model = FittedTopicModel(
        phi=drifted_model.phi / drifted_model.phi.sum(axis=1,
                                                      keepdims=True),
        theta=drifted_model.theta,
        assignments=drifted_model.assignments,
        vocabulary=drifted_model.vocabulary,
        metadata={"alpha": "not-a-number"})
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        session = InferenceSession(model, iterations=2, seed=0)
    session.close()
    warning = _sole_warning(caught, RuntimeWarning)
    assert "unusable alpha" in str(warning.message)
    assert warning.filename == __file__


@pytest.mark.parametrize("estimator", [
    perplexity_importance_sampling,
    perplexity_heldout_gibbs,
    lambda phi, corpus, alpha: heldout_gibbs_theta(phi, corpus, alpha,
                                                   iterations=2),
])
def test_perplexity_estimators_name_their_caller(estimator, drifted_phi,
                                                 tiny_docs):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        estimator(drifted_phi, tiny_docs, 0.4)
    for warning in caught:  # one warn per validate_phi pass
        assert issubclass(warning.category, RuntimeWarning)
        assert warning.filename == __file__
    assert caught


def test_v1_mmap_fallback_names_the_load_site(clean_model, tmp_path):
    path = save_model(clean_model, tmp_path / "m")  # schema v1
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        load_model(path, mmap_phi=True)
    warning = _sole_warning(caught, RuntimeWarning)
    assert "cannot be memory-mapped" in str(warning.message)
    assert warning.filename == __file__


def test_registry_load_names_the_registry_caller(clean_model, tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("news", clean_model)  # schema v1
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        registry.load("news", mmap_phi=True)
    warning = _sole_warning(caught, RuntimeWarning)
    assert "cannot be memory-mapped" in str(warning.message)
    assert warning.filename == __file__
