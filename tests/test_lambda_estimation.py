"""Tests for repro.core.lambda_estimation (learning lambda from data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bijective import BijectiveSourceLDA
from repro.core.lambda_estimation import (estimate_lambda_posterior,
                                          lambda_log_likelihoods)
from repro.core.priors import SourcePrior
from repro.datasets.synthetic import generate_source_lda_corpus
from repro.sampling.integration import LambdaGrid


class TestLambdaLogLikelihoods:
    def test_shape(self, small_source, tiny_corpus):
        prior = SourcePrior(small_source, tiny_corpus.vocabulary)
        counts = np.ones((3, 4))
        out = lambda_log_likelihoods(counts, prior,
                                     np.array([0.0, 0.5, 1.0]))
        assert out.shape == (3, 3)
        assert np.all(np.isfinite(out))

    def test_shape_validation(self, small_source, tiny_corpus):
        prior = SourcePrior(small_source, tiny_corpus.vocabulary)
        with pytest.raises(ValueError, match="counts"):
            lambda_log_likelihoods(np.ones((2, 4)), prior,
                                   np.array([1.0]))

    def test_source_matching_counts_prefer_high_lambda(self, wiki_source):
        """Counts proportional to the article prefer lambda = 1."""
        vocab = wiki_source.vocabulary()
        prior = SourcePrior(wiki_source, vocab)
        counts = prior.hyperparameters * 3.0  # exactly source-shaped
        out = lambda_log_likelihoods(counts, prior,
                                     np.array([0.1, 0.5, 1.0]))
        assert np.all(out[:, 2] > out[:, 0])


class TestEstimateLambdaPosterior:
    def test_posterior_is_distribution(self, wiki_source, wiki_corpus):
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=5)
        fitted = BijectiveSourceLDA(wiki_source, lambda_grid=grid).fit(
            wiki_corpus, iterations=10, seed=0)
        prior = SourcePrior(wiki_source, wiki_corpus.vocabulary)
        posterior, mean = estimate_lambda_posterior(fitted, prior, grid)
        assert posterior.shape == (5, 5)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0)
        assert np.all((mean >= 0) & (mean <= 1))

    def test_detects_high_lambda_topics(self, wiki_source):
        """A corpus generated at lambda = 1 yields high posterior means."""
        data = generate_source_lda_corpus(
            wiki_source, num_documents=40, avg_document_length=60,
            mu=1.0, sigma=0.0, seed=4)
        grid = LambdaGrid.from_prior(0.5, 0.5, steps=7)
        fitted = BijectiveSourceLDA(wiki_source, lambda_grid=grid).fit(
            data.corpus, iterations=15, seed=4)
        prior = SourcePrior(wiki_source, data.corpus.vocabulary)
        _, mean = estimate_lambda_posterior(fitted, prior, grid)
        assert mean.mean() > 0.6

    def test_requires_recorded_counts(self, wiki_source, wiki_corpus):
        from repro.models.lda import LDA
        fitted = LDA(5).fit(wiki_corpus, iterations=2, seed=0)
        prior = SourcePrior(wiki_source, wiki_corpus.vocabulary)
        grid = LambdaGrid.fixed(1.0)
        with pytest.raises(ValueError, match="source_word_counts"):
            estimate_lambda_posterior(fitted, prior, grid)

    def test_exponent_shape_validation(self, wiki_source, wiki_corpus):
        grid = LambdaGrid.from_prior(0.7, 0.3, steps=3)
        fitted = BijectiveSourceLDA(wiki_source, lambda_grid=grid).fit(
            wiki_corpus, iterations=2, seed=0)
        prior = SourcePrior(wiki_source, wiki_corpus.vocabulary)
        with pytest.raises(ValueError, match="exponents"):
            estimate_lambda_posterior(fitted, prior, grid,
                                      exponents=np.array([1.0]))
