"""Tests for repro.sampling.parallel (WorkerPool, chunking)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.sampling.parallel import WorkerPool, chunk_bounds


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_front_loads_remainder(self):
        assert chunk_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_items(self):
        assert chunk_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_zero_total(self):
        assert chunk_bounds(0, 3) == []

    def test_covers_range_exactly(self):
        for total in (1, 7, 100):
            for chunks in (1, 2, 3, 8):
                bounds = chunk_bounds(total, chunks)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == total
                for (a, b), (c, d) in zip(bounds, bounds[1:]):
                    assert b == c
                    assert a < b

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            chunk_bounds(-1, 2)

    def test_zero_chunks_rejected(self):
        with pytest.raises(ValueError, match="chunks"):
            chunk_bounds(5, 0)


class TestWorkerPool:
    def test_single_thread_runs_inline(self):
        pool = WorkerPool(1)
        thread_ids = set()

        def record(_seg, lo, hi):
            thread_ids.add(threading.get_ident())

        pool.run_chunked(record, 10)
        assert thread_ids == {threading.get_ident()}

    def test_multi_thread_covers_all_indices(self):
        covered = np.zeros(100, dtype=np.int64)

        def mark(_seg, lo, hi):
            covered[lo:hi] += 1

        with WorkerPool(4) as pool:
            pool.run_chunked(mark, 100)
        np.testing.assert_array_equal(covered, np.ones(100))

    def test_exceptions_propagate(self):
        def boom(_seg, lo, hi):
            raise RuntimeError("chunk failure")

        with WorkerPool(3) as pool:
            with pytest.raises(RuntimeError, match="chunk failure"):
                pool.run_chunked(boom, 10)

    def test_close_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError, match="threads"):
            WorkerPool(0)

    def test_zero_work(self):
        with WorkerPool(2) as pool:
            pool.run_chunked(lambda *_: None, 0)  # no error
