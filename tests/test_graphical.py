"""Tests for repro.datasets.graphical (the 5x5 pixel experiment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.graphical import (NUM_TOPICS, augment_topics,
                                      generate_graphical_corpus,
                                      graphical_knowledge_source,
                                      original_topics, pixel_vocabulary,
                                      render_topic_ascii, topic_image)


class TestOriginalTopics:
    def test_ten_topics_over_25_pixels(self):
        topics = original_topics()
        assert topics.shape == (10, 25)
        np.testing.assert_allclose(topics.sum(axis=1), 1.0)

    def test_rows_and_columns_uniform_over_five(self):
        topics = original_topics()
        for t in range(10):
            support = np.flatnonzero(topics[t])
            assert support.size == 5
            np.testing.assert_allclose(topics[t, support], 0.2)

    def test_row_column_intersection_is_one_pixel(self):
        topics = original_topics()
        row0 = set(np.flatnonzero(topics[0]))
        col0 = set(np.flatnonzero(topics[5]))
        assert len(row0 & col0) == 1

    def test_vocabulary_words(self):
        vocab = pixel_vocabulary()
        assert len(vocab) == 25
        assert "00" in vocab and "44" in vocab


class TestAugmentation:
    def test_every_topic_stays_normalized(self, rng):
        augmented, _ = augment_topics(original_topics(), rng)
        np.testing.assert_allclose(augmented.sum(axis=1), 1.0)

    def test_pairs_cover_all_topics(self, rng):
        _, pairs = augment_topics(original_topics(), rng)
        touched = {t for pair in pairs for t in pair}
        assert touched == set(range(NUM_TOPICS))

    def test_twenty_percent_augmentation(self, rng):
        """Each swapped topic differs from its original in exactly one of
        five pixels (the paper's 20% rate)."""
        original = original_topics()
        augmented, pairs = augment_topics(original, rng)
        for first, second in pairs:
            for topic in (first, second):
                before = set(np.flatnonzero(original[topic]))
                after = set(np.flatnonzero(augmented[topic]))
                assert len(before - after) == 1
                assert len(after - before) == 1

    def test_swapped_pixels_not_in_partner_support(self, rng):
        original = original_topics()
        augmented, pairs = augment_topics(original, rng)
        for first, second in pairs:
            gained_by_first = set(np.flatnonzero(augmented[first])) - \
                set(np.flatnonzero(original[first]))
            for pixel in gained_by_first:
                assert original[first, pixel] == 0

    def test_deterministic(self):
        a, pairs_a = augment_topics(original_topics(), 3)
        b, pairs_b = augment_topics(original_topics(), 3)
        np.testing.assert_array_equal(a, b)
        assert pairs_a == pairs_b


class TestRendering:
    def test_topic_image_shape(self):
        image = topic_image(original_topics()[0])
        assert image.shape == (5, 5)

    def test_intensity_floor(self):
        image = topic_image(original_topics()[0])
        assert image.min() >= 0.2

    def test_ascii_render_five_lines(self):
        art = render_topic_ascii(original_topics()[3])
        assert len(art.splitlines()) == 5

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="expected shape"):
            topic_image(np.ones(10))


class TestCorpusGeneration:
    def test_sizes(self):
        data = generate_graphical_corpus(num_documents=30, seed=0)
        assert len(data.corpus) == 30
        assert data.corpus.num_tokens == 30 * 25
        assert data.token_topics.shape == (750,)

    def test_token_topics_valid(self):
        data = generate_graphical_corpus(num_documents=10, seed=0)
        assert data.token_topics.min() >= 0
        assert data.token_topics.max() < NUM_TOPICS

    def test_tokens_drawn_from_assigned_topic_support(self):
        data = generate_graphical_corpus(num_documents=20, seed=1)
        flat_words = np.concatenate([d.word_ids for d in data.corpus])
        for word, topic in zip(flat_words[:100], data.token_topics[:100]):
            assert data.augmented_topics[topic, word] > 0

    def test_deterministic(self):
        a = generate_graphical_corpus(num_documents=5, seed=2)
        b = generate_graphical_corpus(num_documents=5, seed=2)
        np.testing.assert_array_equal(a.corpus[0].word_ids,
                                      b.corpus[0].word_ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_graphical_corpus(num_documents=0)


class TestKnowledgeSource:
    def test_labels(self):
        source = graphical_knowledge_source()
        assert len(source) == 10
        assert source.labels[0] == "row-0"
        assert source.labels[5] == "column-0"

    def test_article_counts_proportional(self):
        source = graphical_knowledge_source(tokens_per_article=100)
        vocab = pixel_vocabulary()
        counts = source.count_matrix(vocab)
        topics = original_topics()
        for t in range(10):
            support = np.flatnonzero(topics[t])
            np.testing.assert_allclose(counts[t, support], 20.0)
            assert counts[t].sum() == 100

    def test_minimum_length_validation(self):
        with pytest.raises(ValueError, match="tokens_per_article"):
            graphical_knowledge_source(tokens_per_article=5)
