"""Tests for repro.knowledge.distributions (Definitions 2 and 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.knowledge.distributions import (DEFAULT_EPSILON,
                                           powered_hyperparameters,
                                           sample_topic_distribution,
                                           source_distribution,
                                           source_hyperparameters)

count_vectors = npst.arrays(
    np.float64, st.integers(min_value=2, max_value=30),
    elements=st.floats(min_value=0, max_value=500))


class TestSourceDistribution:
    def test_normalizes_counts(self):
        np.testing.assert_allclose(source_distribution(np.array([2., 6.])),
                                   [0.25, 0.75])

    def test_matrix_rows_normalized_independently(self):
        result = source_distribution(np.array([[1., 1.], [3., 1.]]))
        np.testing.assert_allclose(result, [[0.5, 0.5], [0.75, 0.25]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            source_distribution(np.array([-1.0, 2.0]))

    def test_rejects_zero_row(self):
        with pytest.raises(ValueError, match="all-zero"):
            source_distribution(np.array([0.0, 0.0]))

    @given(count_vectors)
    def test_sums_to_one_whenever_defined(self, counts):
        if counts.sum() <= 0:
            return
        assert source_distribution(counts).sum() == pytest.approx(1.0)


class TestSourceHyperparameters:
    def test_adds_epsilon(self):
        result = source_hyperparameters(np.array([0.0, 3.0]), epsilon=0.5)
        np.testing.assert_allclose(result, [0.5, 3.5])

    def test_default_epsilon_is_small_positive(self):
        assert 0 < DEFAULT_EPSILON < 0.1

    def test_strictly_positive_output(self):
        result = source_hyperparameters(np.zeros(5))
        assert np.all(result > 0)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            source_hyperparameters(np.zeros(2), epsilon=0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            source_hyperparameters(np.array([-1.0]))


class TestPoweredHyperparameters:
    def test_lambda_one_is_identity(self):
        hyper = np.array([0.01, 2.01, 7.01])
        np.testing.assert_allclose(powered_hyperparameters(hyper, 1.0),
                                   hyper)

    def test_lambda_zero_flattens_to_ones(self):
        hyper = np.array([0.01, 2.01, 7.01])
        np.testing.assert_allclose(powered_hyperparameters(hyper, 0.0),
                                   [1.0, 1.0, 1.0])

    def test_per_row_exponents(self):
        hyper = np.array([[4.0, 4.0], [4.0, 4.0]])
        result = powered_hyperparameters(hyper,
                                         np.array([[0.5], [1.0]]))
        np.testing.assert_allclose(result, [[2.0, 2.0], [4.0, 4.0]])

    def test_rejects_zero_values(self):
        with pytest.raises(ValueError, match="strictly positive"):
            powered_hyperparameters(np.array([0.0, 1.0]), 0.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_lambda_for_large_counts(self, lam: float):
        hyper = np.array([100.0, 50.0])
        powered = powered_hyperparameters(hyper, lam)
        # counts > 1 shrink toward 1 as lambda decreases
        assert np.all(powered <= hyper + 1e-9)
        assert np.all(powered >= 1.0 - 1e-9)


class TestSampleTopicDistribution:
    def test_returns_probability_vector(self, rng):
        draw = sample_topic_distribution(np.array([5.0, 1.0, 1.0]), rng)
        assert draw.sum() == pytest.approx(1.0)
        assert np.all(draw > 0)

    def test_no_exact_zeros_even_with_tiny_alpha(self, rng):
        draw = sample_topic_distribution(np.full(50, 1e-4), rng)
        assert np.all(draw > 0)

    def test_concentrates_with_large_parameters(self, rng):
        hyper = np.array([1e5, 1e5])
        draws = np.array([sample_topic_distribution(hyper, rng)
                          for _ in range(20)])
        np.testing.assert_allclose(draws.mean(axis=0), [0.5, 0.5],
                                   atol=0.01)

    def test_deterministic_given_rng_state(self):
        a = sample_topic_distribution(np.array([2.0, 3.0]),
                                      np.random.default_rng(0))
        b = sample_topic_distribution(np.array([2.0, 3.0]),
                                      np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)
