"""Tests for repro.telemetry: the recorder core (counters, gauges,
exact-quantile histograms, spans, JSONL traces, Prometheus export) and
the end-to-end instrumentation contract — recording is off by default,
costs one branch when off, and never changes a single sampled bit."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.models.lda import LdaKernel
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.state import GibbsState
from repro.serving import (FoldInEngine, InferenceSession, ModelRegistry,
                           ParallelFoldIn)
from repro.telemetry import (InMemoryRecorder, JsonlTraceWriter,
                             NullRecorder, Recorder, default_buckets,
                             ensure_recorder, sanitize_metric_name)
from repro.telemetry.recorder import NULL_RECORDER, Histogram


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# ----------------------------------------------------------------------
# Buckets and histograms
# ----------------------------------------------------------------------
class TestBuckets:
    def test_default_ladder_is_log_spaced_thirds(self):
        bounds = default_buckets()
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(1e3)
        assert len(bounds) == 28  # 9 decades * 3 + 1
        ratios = np.diff(np.log10(bounds))
        np.testing.assert_allclose(ratios, 1 / 3, atol=1e-12)

    def test_custom_range(self):
        bounds = default_buckets(low=1e-3, high=10.0, per_decade=1)
        np.testing.assert_allclose(bounds, [1e-3, 1e-2, 1e-1, 1.0, 10.0])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="low < high"):
            default_buckets(low=1.0, high=0.5)
        with pytest.raises(ValueError, match="per_decade"):
            default_buckets(per_decade=0)


class TestHistogram:
    def test_quantiles_are_exact_order_statistics(self):
        """Quantiles come from the raw samples (nearest rank), not from
        bucket-edge interpolation — p99 of 1..100 is exactly 99."""
        h = Histogram(default_buckets())
        for value in np.random.default_rng(0).permutation(
                np.arange(1.0, 101.0)):
            h.observe(value)
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(0.0) == 1.0   # rank floor: the minimum
        assert h.quantile(1.0) == 100.0

    def test_summary_row(self):
        h = Histogram((1.0, 10.0))
        for value in (0.5, 2.0, 3.0, 20.0):
            h.observe(value)
        row = h.summary()
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(25.5)
        assert row["min"] == 0.5 and row["max"] == 20.0
        assert row["mean"] == pytest.approx(25.5 / 4)
        assert row["p50"] == 2.0
        assert row["p99"] == 20.0

    def test_empty_histogram(self):
        h = Histogram((1.0,))
        assert h.summary() == {"count": 0, "sum": 0.0}
        with pytest.raises(ValueError, match="empty"):
            h.quantile(0.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_cumulative_buckets_end_at_inf_total(self):
        h = Histogram((1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            h.observe(value)
        rows = h.cumulative_buckets()
        assert rows == [(1.0, 2), (10.0, 3), (float("inf"), 4)]

    def test_boundary_lands_in_its_own_bucket(self):
        # le-semantics: an observation equal to a bound counts under it.
        h = Histogram((1.0, 10.0))
        h.observe(1.0)
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram((1.0, 1.0, 2.0))


# ----------------------------------------------------------------------
# Recorders
# ----------------------------------------------------------------------
class TestInMemoryRecorder:
    def test_counters_accumulate_per_label_series(self):
        rec = InMemoryRecorder()
        rec.count("served")
        rec.count("served", 4)
        rec.count("served", 2, worker=1)
        rec.count("served", 3, worker=2)
        assert rec.counter_value("served") == 5
        assert rec.counter_value("served", worker=1) == 2
        assert rec.counter_total("served") == 10
        assert rec.counter_series("served") == {
            (): 5.0, (("worker", "1"),): 2.0, (("worker", "2"),): 3.0}

    def test_gauges_are_last_write_wins(self):
        rec = InMemoryRecorder()
        rec.gauge("bytes", 100)
        rec.gauge("bytes", 42)
        assert rec.snapshot()["gauges"] == {"bytes": 42.0}

    def test_labels_named_name_and_value_do_not_collide(self):
        """Metric name/value are positional-only, so ``name=``/``value=``
        stay available as label dimensions (the registry labels its
        publish counter by model ``name``)."""
        rec = InMemoryRecorder()
        rec.count("publishes", name="news", value="x")
        assert rec.counter_value("publishes", name="news",
                                 value="x") == 1
        NULL_RECORDER.count("publishes", name="news")  # must not raise

    def test_snapshot_is_json_serializable_and_sorted(self):
        rec = InMemoryRecorder(clock=FakeClock())
        rec.count("b")
        rec.count("a", 2, mode="sparse")
        rec.gauge("g", 1.5)
        with rec.span("latency", mode="exact"):
            pass
        snap = rec.snapshot()
        json.dumps(snap)  # round-trips as plain data
        assert list(snap["counters"]) == ["a{mode=sparse}", "b"]
        hist = snap["histograms"]["latency{mode=exact}"]
        assert hist["count"] == 1
        assert hist["p50"] == hist["p99"] == 1.0  # one FakeClock step

    def test_reset_drops_everything(self):
        rec = InMemoryRecorder()
        rec.count("a")
        rec.gauge("b", 1)
        rec.observe("c", 2)
        rec.reset()
        assert rec.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert rec.histogram("c") is None

    def test_ensure_recorder_coercion(self):
        assert ensure_recorder(None) is NULL_RECORDER
        rec = InMemoryRecorder()
        assert ensure_recorder(rec) is rec
        with pytest.raises(TypeError, match="Recorder or None"):
            ensure_recorder("prometheus")

    def test_null_recorder_is_inert_and_reuses_one_span(self):
        null = NullRecorder()
        null.count("x", 5, worker=1)
        null.gauge("y", 2)
        null.observe("z", 3)
        a, b = null.span("s"), NULL_RECORDER.span("t", mode="exact")
        assert a is b  # one shared no-op context manager
        with a:
            pass
        assert null.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}
        assert isinstance(NULL_RECORDER, Recorder)


class TestSpans:
    def test_span_times_with_injected_clock(self):
        clock = FakeClock(step=0.25)
        rec = InMemoryRecorder(clock=clock)
        with rec.span("op") as span:
            pass
        assert span.start == 0.0
        assert span.duration == pytest.approx(0.25)
        assert rec.histogram("op").values == (0.25,)

    def test_nested_and_labeled_spans_are_distinct_series(self):
        rec = InMemoryRecorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner", mode="sparse"):
                pass
        assert rec.histogram("outer").count == 1
        assert rec.histogram("inner", mode="sparse").count == 1
        assert rec.histogram("inner") is None  # unlabeled: never seen
        # The inner span opened and closed inside the outer one, so it
        # consumed 2 of the outer span's clock ticks.
        assert rec.histogram("outer").values[0] == pytest.approx(3.0)

    def test_exceptions_propagate_and_still_record(self):
        rec = InMemoryRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError, match="boom"):
            with rec.span("op"):
                raise RuntimeError("boom")
        assert rec.histogram("op").count == 1


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
class TestJsonlTrace:
    def test_spans_append_one_json_line_each(self):
        buffer = io.StringIO()
        trace = JsonlTraceWriter(buffer)
        rec = InMemoryRecorder(clock=FakeClock(), trace=trace)
        with rec.span("a", mode="exact"):
            pass
        with rec.span("b"):
            pass
        trace.close()  # borrowed stream stays open
        lines = [json.loads(line)
                 for line in buffer.getvalue().splitlines()]
        assert lines == [
            {"name": "a", "start": 0.0, "duration": 1.0,
             "labels": {"mode": "exact"}},
            {"name": "b", "start": 2.0, "duration": 1.0, "labels": {}},
        ]
        assert trace.records_written == 2

    def test_path_target_is_owned_and_appended(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as trace:
            trace.write({"name": "x"})
        with JsonlTraceWriter(path) as trace:  # append, not truncate
            trace.write({"name": "y"})
        names = [json.loads(line)["name"]
                 for line in path.read_text().splitlines()]
        assert names == ["x", "y"]

    def test_rejects_unwritable_target(self):
        with pytest.raises(TypeError, match="path or a writable"):
            JsonlTraceWriter(42)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("serving.foldin.batch_seconds") \
            == "serving_foldin_batch_seconds"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a:b") == "a:b"

    def test_format_round_trip_sanity(self):
        """The exposition text must follow the Prometheus grammar: a
        ``# TYPE`` line per metric, ``_total`` counters, cumulative
        non-decreasing ``_bucket`` series ending at ``le="+Inf"`` equal
        to ``_count``, and a parseable ``name{labels} value`` shape on
        every sample line."""
        rec = InMemoryRecorder(buckets=(0.1, 1.0))
        rec.count("serving.requests", 3)
        rec.count("serving.worker.docs", 5, worker=101)
        rec.gauge("serving.foldin.mapped_bytes", 2048)
        for value in (0.05, 0.5, 2.0):
            rec.observe("serving.foldin.batch_seconds", value,
                        mode="sparse")
        text = rec.to_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        types = {line.split()[2]: line.split()[3]
                 for line in lines if line.startswith("# TYPE")}
        assert types["serving_requests_total"] == "counter"
        assert types["serving_foldin_mapped_bytes"] == "gauge"
        assert types["serving_foldin_batch_seconds"] == "histogram"
        samples = {}
        for line in lines:
            if line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            samples[series] = value
        assert samples["serving_requests_total"] == "3"
        assert samples['serving_worker_docs_total{worker="101"}'] == "5"
        assert samples["serving_foldin_mapped_bytes"] == "2048"
        buckets = [int(samples[f'serving_foldin_batch_seconds_bucket'
                               f'{{mode="sparse",le="{le}"}}'])
                   for le in ("0.1", "1", "+Inf")]
        assert buckets == [1, 2, 3]  # cumulative, ending at count
        assert samples[
            'serving_foldin_batch_seconds_count{mode="sparse"}'] == "3"
        assert float(samples[
            'serving_foldin_batch_seconds_sum{mode="sparse"}']) \
            == pytest.approx(2.55)

    def test_label_values_are_escaped(self):
        rec = InMemoryRecorder()
        rec.count("hits", 1, path='say "hi"\nback\\slash')
        text = rec.to_prometheus()
        assert r'path="say \"hi\"\nback\\slash"' in text

    def test_empty_recorder_renders_empty(self):
        assert InMemoryRecorder().to_prometheus() == ""


# ----------------------------------------------------------------------
# Training instrumentation
# ----------------------------------------------------------------------
def _train(corpus, engine, recorder, sweeps=4, num_topics=5):
    state = GibbsState(corpus, num_topics)
    state.initialize_random(np.random.default_rng(0))
    kernel = LdaKernel(state, alpha=0.5, beta=0.1)
    sampler = CollapsedGibbsSampler(state, kernel,
                                    np.random.default_rng(1),
                                    engine=engine, recorder=recorder)
    sampler.run(sweeps)
    return state


class TestSamplerInstrumentation:
    @pytest.mark.parametrize("engine",
                             ["fast", "sparse", "alias", "reference"])
    def test_recording_never_changes_the_chain(self, engine,
                                               wiki_corpus):
        """Draw-for-draw identity recorder-on vs off, per engine."""
        off = _train(wiki_corpus, engine, None)
        on = _train(wiki_corpus, engine, InMemoryRecorder())
        assert np.array_equal(off.z, on.z)
        assert np.array_equal(off.nw, on.nw)

    def test_sweep_counters_and_latency(self, wiki_corpus):
        rec = InMemoryRecorder()
        state = _train(wiki_corpus, "fast", rec, sweeps=3)
        assert rec.counter_value("train.sweeps", engine="fast") == 3
        assert rec.counter_value("train.tokens_sampled",
                                 engine="fast") == 3 * state.num_tokens
        hist = rec.histogram("train.sweep_seconds", engine="fast")
        assert hist.count == 3
        assert all(v >= 0 for v in hist.values)

    def test_alias_engine_reports_mh_and_rebuild_counters(self,
                                                          wiki_corpus):
        rec = InMemoryRecorder()
        _train(wiki_corpus, "alias", rec, sweeps=4)
        proposals = rec.counter_value("train.mh_proposals")
        accepted = rec.counter_value("train.mh_accepted")
        rebuilds = rec.counter_value("train.alias_rebuilds")
        assert proposals > 0
        assert 0 < accepted <= proposals
        assert rebuilds >= 0
        # The fast engine has no MH machinery: no MH series appear.
        rec2 = InMemoryRecorder()
        _train(wiki_corpus, "fast", rec2, sweeps=2)
        assert rec2.counter_series("train.mh_proposals") == {}


# ----------------------------------------------------------------------
# Serving instrumentation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def frozen_phi():
    rng = np.random.default_rng(11)
    return rng.dirichlet(np.full(30, 0.4), size=6)


@pytest.fixture(scope="module")
def query_docs():
    rng = np.random.default_rng(3)
    return [rng.integers(0, 30, size=n)
            for n in (14, 0, 25, 1, 9, 17, 0, 6)]


@pytest.fixture(scope="module")
def served_model(frozen_phi):
    from repro.models.base import FittedTopicModel
    from repro.text.vocabulary import Vocabulary
    num_topics, vocab_size = frozen_phi.shape
    vocab = Vocabulary(f"w{i}" for i in range(vocab_size))
    vocab.freeze()
    rng = np.random.default_rng(1)
    return FittedTopicModel(
        phi=frozen_phi,
        theta=rng.dirichlet(np.full(num_topics, 0.5), size=3),
        assignments=[rng.integers(0, num_topics, size=6)
                     for _ in range(3)],
        vocabulary=vocab,
        metadata={"alpha": 0.4})


class TestFoldInInstrumentation:
    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    def test_theta_is_bit_identical_recorder_on_vs_off(self, mode,
                                                       frozen_phi,
                                                       query_docs):
        off = FoldInEngine(frozen_phi, 0.4, iterations=5, mode=mode)
        on = FoldInEngine(frozen_phi, 0.4, iterations=5, mode=mode,
                          recorder=InMemoryRecorder())
        assert np.array_equal(
            off.theta(query_docs, rng=np.random.default_rng(7)),
            on.theta(query_docs, rng=np.random.default_rng(7)))

    def test_batch_counters_and_latency_histogram(self, frozen_phi,
                                                  query_docs):
        rec = InMemoryRecorder()
        engine = FoldInEngine(frozen_phi, 0.4, iterations=4,
                              mode="sparse", batch_size=3,
                              recorder=rec)
        engine.theta(query_docs, rng=np.random.default_rng(0))
        assert rec.counter_value("serving.foldin.documents") \
            == len(query_docs)
        assert rec.counter_value("serving.foldin.tokens") \
            == sum(len(doc) for doc in query_docs)
        hist = rec.histogram("serving.foldin.batch_seconds",
                             mode="sparse")
        assert hist.count == 3  # ceil(8 / batch_size=3) batches
        summary = hist.summary()
        assert {"p50", "p95", "p99"} <= set(summary)

    def test_four_worker_snapshot_exposes_latency_and_utilization(
            self, frozen_phi, query_docs):
        """The acceptance readout: after a 4-worker run, one snapshot
        carries p50/p99 fold-in batch latency and per-worker
        utilization (docs/tokens/busy_seconds keyed by worker)."""
        rec = InMemoryRecorder()
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        with ParallelFoldIn(engine, num_workers=4,
                            recorder=rec) as foldin:
            theta = foldin.theta(query_docs, seed=17)
        plain = FoldInEngine(frozen_phi, 0.4, iterations=5,
                             mode="sparse")
        with ParallelFoldIn(plain, num_workers=4) as silent:
            assert np.array_equal(theta,
                                  silent.theta(query_docs, seed=17))
        snap = rec.snapshot()
        latency = snap["histograms"][
            "serving.foldin.batch_seconds{mode=sparse}"]
        assert latency["count"] >= 1
        assert 0 <= latency["p50"] <= latency["p99"]
        workers = rec.counter_series("serving.worker.docs")
        assert workers  # at least one worker reported
        nonempty = sum(1 for doc in query_docs if len(doc))
        assert sum(workers.values()) == nonempty
        busy = rec.counter_series("serving.worker.busy_seconds")
        assert set(busy) == set(workers)
        assert all(seconds >= 0 for seconds in busy.values())
        for key in workers:
            assert key[0][0] == "worker"

    def test_inline_worker_path_uses_recorder_clock(self, frozen_phi,
                                                    query_docs):
        rec = InMemoryRecorder(clock=FakeClock(step=0.5))
        engine = FoldInEngine(frozen_phi, 0.4, iterations=3,
                              mode="sparse")
        foldin = ParallelFoldIn(engine, num_workers=1, recorder=rec)
        foldin.theta(query_docs, seed=1)
        busy = rec.counter_total("serving.worker.busy_seconds")
        assert busy == pytest.approx(0.5)  # exactly one tick pair


class TestSessionInstrumentation:
    def test_infer_is_bit_identical_recorder_on_vs_off(self,
                                                       served_model):
        queries = [" ".join(f"w{i}" for i in range(j, j + 8))
                   for j in range(5)]
        with InferenceSession(served_model, iterations=5,
                              seed=13) as off:
            expected = off.theta(queries)
        with InferenceSession(served_model, iterations=5, seed=13,
                              recorder=InMemoryRecorder()) as on:
            assert np.array_equal(expected, on.theta(queries))

    def test_request_latency_and_oov_counters(self, served_model):
        rec = InMemoryRecorder()
        with InferenceSession(served_model, iterations=4, seed=0,
                              recorder=rec) as session:
            session.infer(["w0 w1 w2 unknown-token", "w3 w4"])
            session.infer(["w5"])
        assert rec.counter_value("serving.requests") == 2
        assert rec.counter_value("serving.documents") == 3
        assert rec.counter_value("serving.tokens") == 6
        assert rec.counter_value("serving.oov_tokens") == 1
        hist = rec.histogram("serving.request_seconds")
        assert hist.count == 2
        # The engine shares the sink: fold-in series landed too.
        assert rec.counter_value("serving.foldin.documents") == 3

    def test_invalid_recorder_is_rejected(self, served_model):
        with pytest.raises(TypeError, match="Recorder or None"):
            InferenceSession(served_model, recorder=object())


class TestRegistryInstrumentation:
    def test_cache_and_mmap_lifecycle_counters(self, served_model,
                                               tmp_path):
        rec = InMemoryRecorder()
        registry = ModelRegistry(tmp_path, cache_size=1, recorder=rec)
        registry.publish("news", served_model)
        registry.publish("news", served_model, mmap_phi=True)
        assert rec.counter_value("registry.publishes",
                                 name="news") == 2
        registry.load("news", version=1)
        registry.load("news", version=1)          # hit
        assert rec.counter_value("registry.cache_hits") == 1
        assert rec.counter_value("registry.cache_misses") == 1
        registry.load("news", version=2, mmap_phi=True)  # evicts v1
        assert rec.counter_value("registry.cache_misses") == 2
        assert rec.counter_value("registry.cache_evictions") == 1
        assert rec.counter_value("registry.mmap_opens") == 1
        assert rec.counter_value("registry.mmap_closes") == 0
        registry.clear_cache()                    # closes the mmap
        assert rec.counter_value("registry.cache_evictions") == 2
        assert rec.counter_value("registry.mmap_closes") == 1
