"""Tests for repro.core.priors (SourcePrior, GridDeltaTables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priors import (GridDeltaTables, SourcePrior,
                               informed_word_topic_probs)
from repro.text.vocabulary import Vocabulary


@pytest.fixture
def prior(small_source) -> SourcePrior:
    vocab = small_source.vocabulary()
    return SourcePrior(small_source, vocab)


class TestSourcePrior:
    def test_hyperparameters_are_counts_plus_epsilon(self, small_source):
        vocab = small_source.vocabulary()
        prior = SourcePrior(small_source, vocab, epsilon=0.5)
        counts = small_source.count_matrix(vocab)
        np.testing.assert_allclose(prior.hyperparameters, counts + 0.5)

    def test_labels_preserved(self, prior, small_source):
        assert prior.labels == small_source.labels

    def test_source_distributions_normalized(self, prior):
        dists = prior.source_distributions()
        np.testing.assert_allclose(dists.sum(axis=1), 1.0)

    def test_delta_scalar_exponent(self, prior):
        np.testing.assert_allclose(prior.delta(1.0),
                                   prior.hyperparameters)
        np.testing.assert_allclose(prior.delta(0.0),
                                   np.ones_like(prior.hyperparameters))

    def test_delta_per_topic_exponent(self, prior):
        exponents = np.array([0.0, 0.5, 1.0])
        delta = prior.delta(exponents)
        np.testing.assert_allclose(delta[0], 1.0)
        np.testing.assert_allclose(delta[2], prior.hyperparameters[2])

    def test_delta_per_topic_shape_check(self, prior):
        with pytest.raises(ValueError, match="per-topic"):
            prior.delta(np.array([1.0, 2.0]))

    def test_unique_values_compact(self, prior):
        # Counts are small integers, so few distinct values exist.
        assert prior.num_unique_values <= 6


class TestGridDeltaTables:
    def test_delta_for_word_matches_direct_power(self, prior):
        exponents = np.array([0.3, 0.8])
        tables = prior.grid_tables(exponents)
        for word in range(prior.vocab_size):
            expected = np.power(prior.hyperparameters[:, word][:, None],
                                exponents[None, :])
            np.testing.assert_allclose(tables.delta_for_word(word),
                                       expected, rtol=1e-12)

    def test_sum_delta_matches_direct_power(self, prior):
        exponents = np.array([0.0, 0.5, 1.0])
        tables = prior.grid_tables(exponents)
        for node, exponent in enumerate(exponents):
            expected = np.power(prior.hyperparameters, exponent).sum(axis=1)
            np.testing.assert_allclose(tables.sum_delta[:, node], expected,
                                       rtol=1e-12)

    def test_delta_for_words_batch(self, prior):
        exponents = np.array([0.4, 0.9])
        tables = prior.grid_tables(exponents)
        words = np.array([0, 3, 5])
        batch = tables.delta_for_words(words)
        assert batch.shape == (3, prior.num_topics, 2)
        for i, word in enumerate(words):
            np.testing.assert_allclose(batch[i],
                                       tables.delta_for_word(int(word)))

    def test_per_topic_exponents(self, prior):
        exponents = np.array([[0.0, 1.0]] * prior.num_topics)
        exponents[1] = [0.5, 0.5]
        tables = prior.grid_tables(exponents)
        word = 2
        direct = np.power(prior.hyperparameters[1, word], 0.5)
        np.testing.assert_allclose(tables.delta_for_word(word)[1],
                                   [direct, direct])

    def test_exponent_shape_validation(self, prior):
        with pytest.raises(ValueError, match="exponents"):
            prior.grid_tables(np.zeros((99, 2)))

    def test_single_node_grid(self, prior):
        tables = prior.grid_tables(np.array([1.0]))
        assert tables.num_nodes == 1
        np.testing.assert_allclose(tables.sum_delta[:, 0],
                                   prior.hyperparameters.sum(axis=1))


class TestInformedWordTopicProbs:
    def test_source_only(self, prior):
        probs = informed_word_topic_probs(prior, num_free=0)
        assert probs.shape == (prior.num_topics, prior.vocab_size)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_with_free_topics(self, prior):
        probs = informed_word_topic_probs(prior, num_free=2)
        assert probs.shape == (prior.num_topics + 2, prior.vocab_size)
        np.testing.assert_allclose(probs[0], 1.0 / prior.vocab_size)

    def test_all_positive(self, prior):
        assert np.all(informed_word_topic_probs(prior, 1) > 0)

    def test_negative_free_rejected(self, prior):
        with pytest.raises(ValueError, match="num_free"):
            informed_word_topic_probs(prior, -1)

    def test_source_words_weighted_by_counts(self, small_source):
        vocab = small_source.vocabulary()
        prior = SourcePrior(small_source, vocab)
        probs = informed_word_topic_probs(prior, 0)
        pencil = vocab["pencil"]
        baseball = vocab["baseball"]
        # "pencil" belongs to School Supplies (topic 0), not Baseball.
        assert probs[0, pencil] > probs[1, pencil]
        assert probs[1, baseball] > probs[0, baseball]


class TestVocabularyInteraction:
    def test_corpus_vocabulary_restriction(self, small_source):
        vocab = Vocabulary.from_tokens(["pencil", "baseball", "unseen"])
        prior = SourcePrior(small_source, vocab)
        assert prior.vocab_size == 3
        # "unseen" appears in no article: hyperparameter = epsilon only.
        assert np.all(prior.hyperparameters[:, vocab["unseen"]]
                      == prior.epsilon)
