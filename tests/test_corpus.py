"""Tests for repro.text.corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.corpus import Corpus, CorpusStats, Document
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary


class TestDocument:
    def test_length_and_iteration(self):
        doc = Document(word_ids=np.array([0, 1, 0]))
        assert len(doc) == 3
        assert list(doc) == [0, 1, 0]

    def test_rejects_2d_ids(self):
        with pytest.raises(ValueError, match="1-d"):
            Document(word_ids=np.zeros((2, 2)))

    def test_count_vector(self):
        doc = Document(word_ids=np.array([0, 1, 0]))
        np.testing.assert_array_equal(doc.count_vector(3), [2, 1, 0])

    def test_empty_document(self):
        doc = Document(word_ids=np.array([], dtype=np.int64))
        assert len(doc) == 0
        np.testing.assert_array_equal(doc.count_vector(2), [0, 0])


class TestCorpusConstruction:
    def test_from_texts_whitespace(self, tiny_corpus: Corpus):
        assert len(tiny_corpus) == 2
        assert tiny_corpus.num_tokens == 6
        assert tiny_corpus.vocabulary.words == \
            ("pencil", "umpire", "ruler", "baseball")

    def test_from_texts_with_tokenizer(self):
        corpus = Corpus.from_texts(["The pencil!"], tokenizer=Tokenizer())
        assert corpus.vocabulary.words == ("pencil",)

    def test_from_texts_with_existing_vocabulary_drops_oov(self):
        vocab = Vocabulary.from_tokens(["pencil"])
        corpus = Corpus.from_texts(["pencil umpire"], tokenizer=None,
                                   vocabulary=vocab)
        assert corpus.num_tokens == 1

    def test_from_token_lists(self):
        corpus = Corpus.from_token_lists([["a", "b"], ["b"]])
        assert corpus.num_tokens == 3
        assert corpus.vocab_size == 2

    def test_from_word_id_lists(self):
        vocab = Vocabulary.from_tokens(["a", "b"])
        corpus = Corpus.from_word_id_lists([[0, 1], [1, 1]], vocab)
        assert corpus.num_tokens == 4

    def test_out_of_range_word_id_rejected(self):
        vocab = Vocabulary.from_tokens(["a"])
        with pytest.raises(ValueError, match="outside the vocabulary"):
            Corpus.from_word_id_lists([[5]], vocab)

    def test_titles_and_labels(self):
        corpus = Corpus.from_texts(["a b"], tokenizer=None,
                                   titles=["first"],
                                   labels=[("lab",)])
        assert corpus[0].title == "first"
        assert corpus[0].labels == ("lab",)

    def test_doc_ids_sequential(self, tiny_corpus: Corpus):
        assert [doc.doc_id for doc in tiny_corpus] == [0, 1]


class TestCorpusAccessors:
    def test_document_term_matrix(self, tiny_corpus: Corpus):
        matrix = tiny_corpus.document_term_matrix()
        assert matrix.shape == (2, 4)
        assert matrix.sum() == 6
        assert matrix[0, tiny_corpus.vocabulary["pencil"]] == 2

    def test_word_counts(self, tiny_corpus: Corpus):
        counts = tiny_corpus.word_counts()
        assert counts[tiny_corpus.vocabulary["ruler"]] == 2
        assert counts.sum() == tiny_corpus.num_tokens

    def test_average_document_length(self, tiny_corpus: Corpus):
        assert tiny_corpus.average_document_length == 3.0

    def test_subset_copies_documents(self, tiny_corpus: Corpus):
        subset = tiny_corpus.subset([1])
        assert len(subset) == 1
        assert subset[0].doc_id == 0
        subset[0].word_ids[0] = 0
        assert tiny_corpus[1].word_ids[0] != 0 or True  # original untouched
        assert tiny_corpus[1].word_ids[0] == \
            tiny_corpus.vocabulary["ruler"]

    def test_split_partitions_documents(self):
        corpus = Corpus.from_token_lists([["a"]] * 10)
        train, test = corpus.split(0.7, seed=0)
        assert len(train) == 7
        assert len(test) == 3

    def test_split_always_nonempty(self):
        corpus = Corpus.from_token_lists([["a"], ["a"]])
        train, test = corpus.split(0.99, seed=0)
        assert len(train) == 1 and len(test) == 1

    def test_split_validates_fraction(self):
        corpus = Corpus.from_token_lists([["a"], ["b"]])
        with pytest.raises(ValueError, match="train_fraction"):
            corpus.split(1.5)

    def test_empty_corpus_statistics(self):
        corpus = Corpus([], Vocabulary())
        assert corpus.average_document_length == 0.0
        assert corpus.num_tokens == 0


class TestCorpusStats:
    def test_of(self, tiny_corpus: Corpus):
        stats = CorpusStats.of(tiny_corpus)
        assert stats.num_documents == 2
        assert stats.num_tokens == 6
        assert stats.min_document_length == 3
        assert stats.max_document_length == 3
