"""Tests for repro.knowledge.source."""

from __future__ import annotations

import numpy as np
import pytest

from repro.knowledge.source import KnowledgeSource
from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary


class TestKnowledgeSource:
    def test_labels_preserve_insertion_order(self, small_source):
        assert small_source.labels == \
            ("School Supplies", "Baseball", "Cooking")

    def test_tokens_returns_copy(self, small_source):
        tokens = small_source.tokens("Baseball")
        tokens.append("mutated")
        assert "mutated" not in small_source.tokens("Baseball")

    def test_len_and_contains(self, small_source):
        assert len(small_source) == 3
        assert "Baseball" in small_source
        assert "Chess" not in small_source

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="at least one article"):
            KnowledgeSource({})

    def test_empty_article_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            KnowledgeSource({"X": []})

    def test_from_texts_tokenizes(self):
        source = KnowledgeSource.from_texts(
            {"Baseball": "The umpire called a strike!"},
            tokenizer=Tokenizer())
        assert source.tokens("Baseball") == ["umpire", "called", "strike"]

    def test_vocabulary_covers_all_articles(self, small_source):
        vocab = small_source.vocabulary()
        for label in small_source.labels:
            for token in small_source.tokens(label):
                assert token in vocab

    def test_count_matrix_shape_and_totals(self, small_source):
        vocab = small_source.vocabulary()
        matrix = small_source.count_matrix(vocab)
        assert matrix.shape == (3, len(vocab))
        for row, label in enumerate(small_source.labels):
            assert matrix[row].sum() == len(small_source.tokens(label))

    def test_count_matrix_ignores_oov_words(self, small_source):
        vocab = Vocabulary.from_tokens(["pencil"])
        matrix = small_source.count_matrix(vocab)
        assert matrix.shape == (3, 1)
        assert matrix[0, 0] == 3  # three "pencil" in School Supplies
        assert matrix[1, 0] == 0

    def test_subset_preserves_order(self, small_source):
        subset = small_source.subset(["Cooking", "Baseball"])
        assert subset.labels == ("Cooking", "Baseball")

    def test_subset_unknown_label(self, small_source):
        with pytest.raises(KeyError, match="Chess"):
            small_source.subset(["Chess"])

    def test_merged_with(self, small_source):
        other = KnowledgeSource({"Chess": ["board", "pawn"]})
        merged = small_source.merged_with(other)
        assert len(merged) == 4
        assert merged.tokens("Chess") == ["board", "pawn"]

    def test_merged_with_duplicate_label(self, small_source):
        other = KnowledgeSource({"Baseball": ["bat"]})
        with pytest.raises(ValueError, match="duplicate"):
            small_source.merged_with(other)

    def test_count_matrix_is_float(self, small_source):
        matrix = small_source.count_matrix(small_source.vocabulary())
        assert matrix.dtype == np.float64
