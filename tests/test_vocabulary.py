"""Tests for repro.text.vocabulary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.vocabulary import Vocabulary

words = st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=8)


class TestVocabulary:
    def test_ids_assigned_in_first_seen_order(self):
        vocab = Vocabulary.from_tokens(["b", "a", "b", "c"])
        assert (vocab["b"], vocab["a"], vocab["c"]) == (0, 1, 2)

    def test_add_returns_existing_id(self):
        vocab = Vocabulary()
        first = vocab.add("pencil")
        assert vocab.add("pencil") == first
        assert len(vocab) == 1

    def test_word_roundtrip(self):
        vocab = Vocabulary.from_tokens(["x", "y"])
        assert vocab.word(vocab.id("y")) == "y"

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a", "b"], ["b", "c"]])
        assert vocab.words == ("a", "b", "c")

    def test_contains(self):
        vocab = Vocabulary.from_tokens(["a"])
        assert "a" in vocab
        assert "b" not in vocab

    def test_get_default(self):
        vocab = Vocabulary()
        assert vocab.get("missing") is None
        assert vocab.get("missing", -1) == -1

    def test_freeze_blocks_new_words(self):
        vocab = Vocabulary.from_tokens(["a"]).freeze()
        assert vocab.frozen
        with pytest.raises(ValueError, match="frozen"):
            vocab.add("b")

    def test_freeze_allows_existing_words(self):
        vocab = Vocabulary.from_tokens(["a"]).freeze()
        assert vocab.add("a") == 0

    def test_encode_skips_unknown(self):
        vocab = Vocabulary.from_tokens(["a", "b"])
        np.testing.assert_array_equal(vocab.encode(["a", "zzz", "b"]),
                                      [0, 1])

    def test_encode_raises_when_strict(self):
        vocab = Vocabulary.from_tokens(["a"])
        with pytest.raises(KeyError):
            vocab.encode(["zzz"], skip_unknown=False)

    def test_decode(self):
        vocab = Vocabulary.from_tokens(["a", "b"])
        assert vocab.decode([1, 0, 1]) == ["b", "a", "b"]

    def test_count_vector(self):
        vocab = Vocabulary.from_tokens(["a", "b"])
        np.testing.assert_array_equal(
            vocab.count_vector(["a", "a", "b", "zzz"]), [2.0, 1.0])

    def test_equality(self):
        assert Vocabulary.from_tokens(["a", "b"]) == \
            Vocabulary.from_tokens(["a", "b"])
        assert Vocabulary.from_tokens(["a", "b"]) != \
            Vocabulary.from_tokens(["b", "a"])

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            Vocabulary().add(3)  # type: ignore[arg-type]

    def test_iteration_order(self):
        vocab = Vocabulary.from_tokens(["c", "a", "b"])
        assert list(vocab) == ["c", "a", "b"]

    def test_as_mapping(self):
        vocab = Vocabulary.from_tokens(["a", "b"])
        assert vocab.as_mapping() == {"a": 0, "b": 1}

    @given(st.lists(words, max_size=50))
    def test_ids_dense_and_consistent(self, tokens: list[str]):
        vocab = Vocabulary.from_tokens(tokens)
        assert sorted(vocab.as_mapping().values()) == \
            list(range(len(vocab)))
        for word in tokens:
            assert vocab.word(vocab.id(word)) == word

    @given(st.lists(words, min_size=1, max_size=50))
    def test_encode_decode_roundtrip(self, tokens: list[str]):
        vocab = Vocabulary.from_tokens(tokens)
        ids = vocab.encode(tokens)
        assert vocab.decode(ids) == tokens
