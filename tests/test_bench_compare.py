"""Tests for the bench regression gate (``benchmarks/compare.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_COMPARE_PATH = (Path(__file__).parent.parent / "benchmarks"
                 / "compare.py")


@pytest.fixture(scope="module")
def compare():
    spec = importlib.util.spec_from_file_location("bench_compare",
                                                  _COMPARE_PATH)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves the defining module through sys.modules.
    sys.modules["bench_compare"] = module
    spec.loader.exec_module(module)
    return module


def _write_result(directory: Path, name: str, metrics: dict,
                  backend: str | None = None,
                  peak_rss: int | None = None) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": "repro.benchmarks/result",
        "schema_version": 2,
        "name": name,
        "metrics": metrics,
        "params": {},
    }
    if backend is not None:
        payload["backend"] = backend
    if peak_rss is not None:
        payload["peak_rss_bytes"] = peak_rss
    (directory / f"{name}.json").write_text(json.dumps(payload))


class TestThroughputMetrics:
    def test_flattens_nested_throughput_only(self, compare):
        payload = {"metrics": {
            "docs_per_second": {"1": 100.0, "8": 250.0},
            "tokens_per_second": 4000,
            "accuracy": 0.93,                 # not throughput: ignored
            "flags": {"docs_per_second_ok": True},  # bool: ignored
            "ratio": None,                    # null off-path: ignored
        }}
        flat = compare.throughput_metrics(payload)
        assert flat == {"docs_per_second.1": 100.0,
                        "docs_per_second.8": 250.0,
                        "tokens_per_second": 4000.0}

    def test_null_throughput_leaf_is_kept_as_none(self, compare):
        # A null on a throughput path means "not measured in this
        # run" — it must surface as None so compare_dirs can skip it
        # with a reason, not vanish from the flattened view.
        payload = {"metrics": {
            "tokens_per_second": {"python": 900.0, "numba": None}}}
        flat = compare.throughput_metrics(payload)
        assert flat == {"tokens_per_second.python": 900.0,
                        "tokens_per_second.numba": None}


class TestCompareDirs:
    def test_detects_regression_beyond_threshold(self, compare,
                                                 tmp_path):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": {"1": 100.0, "8": 200.0}})
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": {"1": 60.0, "8": 190.0}})
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert skipped == []
        by_metric = {c.metric: c for c in comparisons}
        assert by_metric["docs_per_second.1"].regressed(0.3)
        assert not by_metric["docs_per_second.8"].regressed(0.3)
        # A looser gate tolerates the same drop.
        assert not by_metric["docs_per_second.1"].regressed(0.5)

    def test_improvements_and_noise_pass(self, compare, tmp_path):
        _write_result(tmp_path / "base", "sweep",
                      {"tokens_per_second": 1000.0})
        _write_result(tmp_path / "fresh", "sweep",
                      {"tokens_per_second": 1400.0})
        comparisons, _ = compare.compare_dirs(tmp_path / "base",
                                              tmp_path / "fresh")
        assert not any(c.regressed(0.3) for c in comparisons)

    def test_missing_fresh_file_is_skipped_not_fatal(self, compare,
                                                     tmp_path):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 10.0})
        _write_result(tmp_path / "base", "retired",
                      {"docs_per_second": 5.0})
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 11.0})
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert [c.bench for c in comparisons] == ["serving"]
        assert [name for name, _reason in skipped] == ["retired"]

    def test_fresh_only_file_is_skipped_not_silent(self, compare,
                                                   tmp_path):
        """A result present only in the fresh directory (a new bench,
        or a renamed baseline) must surface as skipped — not vanish
        from the gate's output entirely."""
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 10.0})
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 11.0})
        _write_result(tmp_path / "fresh", "brand_new",
                      {"docs_per_second": 7.0})
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert [c.bench for c in comparisons] == ["serving"]
        assert [name for name, _reason in skipped] == ["brand_new"]

    def test_backend_mismatch_is_skipped_not_compared(self, compare,
                                                      tmp_path):
        """A python-backend baseline diffed against a numba-backend
        fresh run measures the backend swap, not a regression — the
        pair must be skipped with a reason, and same-backend pairs must
        keep gating."""
        _write_result(tmp_path / "base", "sweep",
                      {"tokens_per_second": 1000.0}, backend="python")
        _write_result(tmp_path / "fresh", "sweep",
                      {"tokens_per_second": 400.0}, backend="numba")
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 10.0}, backend="python")
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 11.0}, backend="python")
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert [c.bench for c in comparisons] == ["serving"]
        assert [name for name, _reason in skipped] == ["sweep"]
        assert "backend mismatch" in skipped[0][1]

    def test_null_metric_is_skipped_with_reason(self, compare, tmp_path):
        """A throughput series that is null on either side (a series
        the bench could not measure in that run's configuration) must
        be skipped with a printed reason — not compared as a number
        and not silently dropped."""
        _write_result(tmp_path / "base", "sweep", {"tokens_per_second": {
            "python": 1000.0, "numba": None}})
        _write_result(tmp_path / "fresh", "sweep", {"tokens_per_second": {
            "python": 950.0, "numba": 4000.0}})
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert [c.metric for c in comparisons] == [
            "tokens_per_second.python"]
        assert skipped == [("sweep:tokens_per_second.numba",
                            "null on baseline side — not measured in "
                            "that run's configuration")]

    def test_unstamped_baseline_still_gates(self, compare, tmp_path):
        """Pre-stamp results (no "backend" key) must keep gating
        against stamped fresh runs — regenerating every committed
        baseline is not a precondition for the gate."""
        _write_result(tmp_path / "base", "sweep",
                      {"tokens_per_second": 1000.0})
        _write_result(tmp_path / "fresh", "sweep",
                      {"tokens_per_second": 500.0}, backend="python")
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert skipped == []
        assert comparisons[0].regressed(0.3)


class TestLatencyGate:
    def test_latency_leaves_gate_lower_is_better(self, compare,
                                                 tmp_path):
        _write_result(tmp_path / "base", "elastic", {
            "latency_seconds": {"hedged": {"p50": 0.02, "p99": 0.10}}})
        _write_result(tmp_path / "fresh", "elastic", {
            "latency_seconds": {"hedged": {"p50": 0.02, "p99": 0.20}}})
        comparisons, skipped = compare.compare_dirs(tmp_path / "base",
                                                    tmp_path / "fresh")
        assert skipped == []
        by_metric = {c.metric: c for c in comparisons}
        p99 = by_metric["latency_seconds.hedged.p99"]
        assert p99.direction == "lower"
        assert p99.regressed(0.3)           # doubled: above threshold
        assert not p99.regressed(1.5)       # a looser gate tolerates it
        assert not by_metric["latency_seconds.hedged.p50"].regressed(0.3)

    def test_latency_improvement_never_regresses(self, compare,
                                                 tmp_path):
        _write_result(tmp_path / "base", "elastic",
                      {"request_latency": {"p99": 0.50}})
        _write_result(tmp_path / "fresh", "elastic",
                      {"request_latency": {"p99": 0.05}})
        comparisons, _ = compare.compare_dirs(tmp_path / "base",
                                              tmp_path / "fresh")
        (row,) = comparisons
        # The bare "latency" marker gates too, and a 10x drop is an
        # improvement in the lower-is-better direction, never a fail.
        assert row.direction == "lower"
        assert not row.regressed(0.3)

    def test_per_second_paths_never_gate_as_latency(self, compare):
        payload = {"metrics": {"docs_per_second": 100.0,
                               "batch_seconds": 1.5,
                               "accuracy": 0.9}}
        assert compare.latency_metrics(payload) == {
            "batch_seconds": 1.5}
        assert compare.throughput_metrics(payload) == {
            "docs_per_second": 100.0}

    def test_synthetic_p99_regression_exits_nonzero(self, compare,
                                                    tmp_path, capsys):
        """The acceptance gate: a fresh run whose p99 latency grew past
        the threshold must fail the CLI, with the verdict row carrying
        the lower-is-better direction."""
        _write_result(tmp_path / "base", "elastic_serving", {
            "docs_per_second": 100.0,
            "latency_seconds": {"unhedged": {"p99": 0.30},
                                "hedged": {"p99": 0.05}}})
        _write_result(tmp_path / "fresh", "elastic_serving", {
            "docs_per_second": 100.0,
            "latency_seconds": {"unhedged": {"p99": 0.30},
                                "hedged": {"p99": 0.25}}})
        report_path = tmp_path / "report.json"
        code = compare.main([str(tmp_path / "fresh"), "--baseline",
                             str(tmp_path / "base"), "--json",
                             str(report_path)])
        capsys.readouterr()
        assert code == 1
        report = json.loads(report_path.read_text())
        by_metric = {row["metric"]: row for row in report["verdicts"]}
        bad = by_metric["latency_seconds.hedged.p99"]
        assert bad["verdict"] == "regressed"
        assert bad["direction"] == "lower"
        assert by_metric["docs_per_second"]["verdict"] == "ok"
        assert by_metric["docs_per_second"]["direction"] == "higher"
        # Same numbers within the threshold pass.
        assert compare.main([str(tmp_path / "base"), "--baseline",
                             str(tmp_path / "base")]) == 0
        capsys.readouterr()


class TestMemoryGate:
    def test_pairs_require_stamps_on_both_sides(self, compare, tmp_path):
        _write_result(tmp_path / "base", "stamped",
                      {"docs_per_second": 10.0}, peak_rss=100 * 2**20)
        _write_result(tmp_path / "fresh", "stamped",
                      {"docs_per_second": 10.0}, peak_rss=150 * 2**20)
        _write_result(tmp_path / "base", "prestamp",
                      {"docs_per_second": 10.0})
        _write_result(tmp_path / "fresh", "prestamp",
                      {"docs_per_second": 10.0}, peak_rss=900 * 2**20)
        rows = compare.memory_comparisons(tmp_path / "base",
                                          tmp_path / "fresh")
        assert [c.bench for c in rows] == ["stamped"]
        assert rows[0].ratio == pytest.approx(1.5)

    def test_memory_gate_is_opt_in_and_directional(self, compare,
                                                   tmp_path, capsys):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 100.0}, peak_rss=100 * 2**20)
        # Throughput fine, memory doubled.
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 101.0}, peak_rss=200 * 2**20)
        base = ["--baseline", str(tmp_path / "base")]
        fresh = str(tmp_path / "fresh")
        # Without the flag memory never gates.
        assert compare.main([fresh] + base) == 0
        # With it, growth beyond the threshold fails...
        assert compare.main([fresh, "--memory-threshold", "0.5"]
                            + base) == 1
        # ...tolerated growth passes, and shrinkage is never a failure.
        assert compare.main([fresh, "--memory-threshold", "1.5"]
                            + base) == 0
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 101.0}, peak_rss=50 * 2**20)
        assert compare.main([fresh, "--memory-threshold", "0.1"]
                            + base) == 0
        capsys.readouterr()  # swallow table output


class TestJsonReport:
    def _run(self, compare, tmp_path, capsys, *extra):
        report_path = tmp_path / "report.json"
        code = compare.main([str(tmp_path / "fresh"), "--baseline",
                             str(tmp_path / "base"), "--json",
                             str(report_path)] + list(extra))
        capsys.readouterr()  # swallow table output
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.benchmarks/compare"
        assert report["schema_version"] == 3
        assert report["exit_code"] == code
        return code, report

    def test_ok_and_regressed_verdicts(self, compare, tmp_path, capsys):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": {"1": 100.0, "8": 200.0}})
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": {"1": 40.0, "8": 195.0}})
        code, report = self._run(compare, tmp_path, capsys)
        assert code == 1
        by_metric = {row["metric"]: row for row in report["verdicts"]}
        bad = by_metric["docs_per_second.1"]
        assert bad["verdict"] == "regressed"
        assert bad["baseline"] == 100.0 and bad["fresh"] == 40.0
        assert bad["ratio"] == pytest.approx(0.4)
        assert by_metric["docs_per_second.8"]["verdict"] == "ok"
        # Schema v2: rows carry the shared gate shape's "name" key
        # (v1 called it "bench").
        assert all(row["name"] == "serving"
                   for row in report["verdicts"])
        assert report["threshold"] == pytest.approx(0.3)
        assert report["skipped"] == []
        assert report["memory"] == []

    def test_skipped_rows_carry_reasons(self, compare, tmp_path, capsys):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 10.0})
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 11.0})
        _write_result(tmp_path / "base", "sweep",
                      {"tokens_per_second": 900.0}, backend="python")
        _write_result(tmp_path / "fresh", "sweep",
                      {"tokens_per_second": 4000.0}, backend="numba")
        _write_result(tmp_path / "base", "retired",
                      {"docs_per_second": 5.0})
        code, report = self._run(compare, tmp_path, capsys)
        assert code == 0
        skipped = {row["name"]: row["reason"]
                   for row in report["skipped"]}
        assert "backend mismatch" in skipped["sweep"]
        assert "missing or unreadable" in skipped["retired"]
        assert [row["verdict"] for row in report["verdicts"]] == ["ok"]

    def test_memory_rows_when_gated(self, compare, tmp_path, capsys):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 100.0},
                      peak_rss=100 * 2**20)
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 101.0},
                      peak_rss=200 * 2**20)
        code, report = self._run(compare, tmp_path, capsys,
                                 "--memory-threshold", "0.5")
        assert code == 1
        assert report["memory_threshold"] == pytest.approx(0.5)
        (row,) = report["memory"]
        assert row["metric"] == "peak_rss_bytes"
        assert row["verdict"] == "regressed"
        assert row["ratio"] == pytest.approx(2.0)
        # Throughput itself was fine.
        assert all(r["verdict"] == "ok" for r in report["verdicts"])

    def test_written_even_when_nothing_is_comparable(self, compare,
                                                     tmp_path, capsys):
        """The exit-2 misconfiguration path must still leave a report —
        CI reads the file to learn *why* the gate did not run."""
        (tmp_path / "base").mkdir()
        (tmp_path / "fresh").mkdir()
        _write_result(tmp_path / "base", "only_here",
                      {"docs_per_second": 1.0})
        code, report = self._run(compare, tmp_path, capsys)
        assert code == 2
        assert report["verdicts"] == []
        assert [row["name"] for row in report["skipped"]] \
            == ["only_here"]

    def test_no_file_without_the_flag(self, compare, tmp_path, capsys):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 10.0})
        _write_result(tmp_path / "fresh", "serving",
                      {"docs_per_second": 11.0})
        assert compare.main([str(tmp_path / "fresh"), "--baseline",
                             str(tmp_path / "base")]) == 0
        capsys.readouterr()
        assert not (tmp_path / "report.json").exists()


class TestMain:
    def test_exit_codes(self, compare, tmp_path, capsys):
        _write_result(tmp_path / "base", "serving",
                      {"docs_per_second": 100.0})
        _write_result(tmp_path / "fresh_ok", "serving",
                      {"docs_per_second": 95.0})
        _write_result(tmp_path / "fresh_bad", "serving",
                      {"docs_per_second": 40.0})
        base = ["--baseline", str(tmp_path / "base")]
        assert compare.main([str(tmp_path / "fresh_ok")] + base) == 0
        assert compare.main([str(tmp_path / "fresh_bad")] + base) == 1
        # A custom threshold can wave the same drop through.
        assert compare.main([str(tmp_path / "fresh_bad"),
                             "--threshold", "0.7"] + base) == 0
        # Nothing comparable (or missing dirs) exits 2, not 0.
        empty = tmp_path / "empty"
        empty.mkdir()
        assert compare.main([str(empty)] + base) == 2
        assert compare.main([str(tmp_path / "nowhere")] + base) == 2
        capsys.readouterr()  # swallow table output
