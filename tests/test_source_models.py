"""Tests for the Source-LDA model family (core contribution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bijective import BijectiveSourceLDA
from repro.core.mixture import MixtureSourceLDA
from repro.core.source_lda import SourceLDA
from repro.sampling.integration import LambdaGrid
from repro.text.corpus import Corpus


class TestBijectiveSourceLDA:
    def test_topic_count_equals_source(self, wiki_source, wiki_corpus):
        fitted = BijectiveSourceLDA(wiki_source).fit(wiki_corpus,
                                                     iterations=5, seed=0)
        assert fitted.num_topics == len(wiki_source)
        assert fitted.topic_labels == wiki_source.labels

    def test_distributions_normalized(self, wiki_source, wiki_corpus):
        fitted = BijectiveSourceLDA(wiki_source).fit(wiki_corpus,
                                                     iterations=5, seed=0)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0,
                                   atol=1e-9)
        np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0)

    def test_classifies_generated_documents(self, wiki_source,
                                            wiki_corpus):
        fitted = BijectiveSourceLDA(wiki_source, alpha=0.5).fit(
            wiki_corpus, iterations=20, seed=0)
        correct = sum(1 for index in range(len(wiki_corpus))
                      if fitted.theta[index].argmax() == index % 5)
        assert correct >= 0.85 * len(wiki_corpus)

    def test_phi_tracks_source_distribution(self, wiki_source,
                                            wiki_corpus):
        from repro.metrics.divergence import js_divergence
        from repro.knowledge.distributions import (source_distribution,
                                                   source_hyperparameters)
        fitted = BijectiveSourceLDA(wiki_source).fit(
            wiki_corpus, iterations=20, seed=0)
        counts = wiki_source.count_matrix(wiki_corpus.vocabulary)
        refs = source_distribution(source_hyperparameters(counts))
        for topic in range(fitted.num_topics):
            assert js_divergence(fitted.phi[topic], refs[topic]) < 0.25

    def test_lambda_grid_integration(self, wiki_source, wiki_corpus):
        grid = LambdaGrid.from_prior(0.5, 0.5, steps=5)
        fitted = BijectiveSourceLDA(wiki_source, lambda_grid=grid).fit(
            wiki_corpus, iterations=5, seed=0)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0,
                                   atol=1e-9)

    def test_lambda_validation(self, wiki_source):
        with pytest.raises(ValueError, match="lambda_"):
            BijectiveSourceLDA(wiki_source, lambda_=1.5)

    def test_init_validation(self, wiki_source):
        with pytest.raises(ValueError, match="init"):
            BijectiveSourceLDA(wiki_source, init="magic")

    def test_random_init_supported(self, wiki_source, wiki_corpus):
        fitted = BijectiveSourceLDA(wiki_source, init="random").fit(
            wiki_corpus, iterations=5, seed=0)
        assert fitted.num_topics == len(wiki_source)

    def test_deterministic(self, wiki_source, wiki_corpus):
        a = BijectiveSourceLDA(wiki_source).fit(wiki_corpus,
                                                iterations=5, seed=3)
        b = BijectiveSourceLDA(wiki_source).fit(wiki_corpus,
                                                iterations=5, seed=3)
        np.testing.assert_array_equal(a.flat_assignments(),
                                      b.flat_assignments())

    def test_snapshots_recorded(self, wiki_source, wiki_corpus):
        fitted = BijectiveSourceLDA(wiki_source).fit(
            wiki_corpus, iterations=5, seed=0,
            snapshot_iterations=[0, 2])
        assert set(fitted.metadata["snapshots"]) == {0, 2}


class TestMixtureSourceLDA:
    def test_topic_layout(self, wiki_source, wiki_corpus):
        fitted = MixtureSourceLDA(wiki_source, num_free_topics=2).fit(
            wiki_corpus, iterations=5, seed=0)
        assert fitted.num_topics == 2 + len(wiki_source)
        assert fitted.topic_labels[:2] == (None, None)
        assert fitted.topic_labels[2:] == wiki_source.labels

    def test_requires_free_topics(self, wiki_source):
        with pytest.raises(ValueError, match="num_free_topics"):
            MixtureSourceLDA(wiki_source, num_free_topics=0)

    def test_unknown_content_lands_in_free_topic(self, wiki_source):
        rng = np.random.default_rng(0)
        unknown = ["qqxy" + str(i % 7) for i in range(400)]
        texts = []
        labels = wiki_source.labels
        for index in range(30):
            article = wiki_source.tokens(labels[index % len(labels)])
            texts.append(" ".join(rng.choice(article, size=25)))
        for _ in range(10):
            texts.append(" ".join(rng.choice(unknown, size=25)))
        corpus = Corpus.from_texts(texts, tokenizer=None)
        fitted = MixtureSourceLDA(wiki_source, num_free_topics=1,
                                  alpha=0.3, beta=0.1).fit(
            corpus, iterations=30, seed=1)
        # The unknown-vocabulary tokens should mostly sit in topic 0.
        unknown_ids = {corpus.vocabulary[w] for w in set(unknown)}
        flat_words = np.concatenate([d.word_ids for d in corpus])
        flat_topics = fitted.flat_assignments()
        in_free = np.mean([t == 0 for w, t in zip(flat_words, flat_topics)
                           if int(w) in unknown_ids])
        assert in_free > 0.9

    def test_lambda_validation(self, wiki_source):
        with pytest.raises(ValueError, match="lambda_"):
            MixtureSourceLDA(wiki_source, 1, lambda_=-0.1)


class TestSourceLDA:
    def test_full_model_shapes(self, wiki_source, wiki_corpus):
        fitted = SourceLDA(wiki_source, num_unlabeled_topics=2,
                           calibration_draws=3).fit(
            wiki_corpus, iterations=5, seed=0)
        assert fitted.num_topics == 2 + len(wiki_source)
        np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0,
                                   atol=1e-9)

    def test_metadata_contents(self, wiki_source, wiki_corpus):
        fitted = SourceLDA(wiki_source, calibration_draws=3).fit(
            wiki_corpus, iterations=5, seed=0)
        for key in ("active_topics", "document_frequencies", "grid_nodes",
                    "smoothing_xs", "smoothing_ys"):
            assert key in fitted.metadata

    def test_reduction_drops_absent_topics(self, wiki_source):
        """Only 2 of 5 source topics generate the corpus; reduction should
        keep those 2 and drop (most of) the rest."""
        rng = np.random.default_rng(2)
        texts = []
        for index in range(40):
            label = wiki_source.labels[index % 2]
            article = wiki_source.tokens(label)
            texts.append(" ".join(rng.choice(article, size=40)))
        corpus = Corpus.from_texts(texts, tokenizer=None)
        fitted = SourceLDA(wiki_source, num_unlabeled_topics=0, mu=0.8,
                           sigma=0.2, alpha=0.3, min_documents=4,
                           min_proportion=0.2, calibration_draws=3).fit(
            corpus, iterations=25, seed=2)
        active_labels = set(fitted.metadata["active_labels"])
        assert {wiki_source.labels[0], wiki_source.labels[1]} <= \
            active_labels
        assert len(active_labels) <= 3

    def test_final_topics_cap(self, wiki_source, wiki_corpus):
        fitted = SourceLDA(wiki_source, num_unlabeled_topics=0,
                           final_topics=2, min_documents=0,
                           min_proportion=0.0, calibration_draws=3).fit(
            wiki_corpus, iterations=8, seed=0)
        assert len(fitted.metadata["active_topics"]) <= 2

    def test_no_reduction_mode(self, wiki_source, wiki_corpus):
        fitted = SourceLDA(wiki_source, reduce_topics=False,
                           calibration_draws=3).fit(
            wiki_corpus, iterations=3, seed=0)
        assert "active_topics" not in fitted.metadata

    def test_identity_smoothing_when_calibration_off(self, wiki_source,
                                                     wiki_corpus):
        fitted = SourceLDA(wiki_source, calibrate=False,
                           reduce_topics=False).fit(
            wiki_corpus, iterations=2, seed=0)
        np.testing.assert_allclose(fitted.metadata["smoothing_xs"],
                                   [0.0, 1.0])
        np.testing.assert_allclose(fitted.metadata["smoothing_ys"],
                                   [0.0, 1.0])

    def test_custom_smoothing_respected(self, wiki_source, wiki_corpus):
        from repro.core.lambda_calibration import SmoothingFunction
        g = SmoothingFunction(xs=np.array([0.0, 1.0]),
                              ys=np.array([0.0, 0.5]))
        fitted = SourceLDA(wiki_source, smoothing=g,
                           reduce_topics=False).fit(
            wiki_corpus, iterations=2, seed=0)
        np.testing.assert_allclose(fitted.metadata["smoothing_ys"],
                                   [0.0, 0.5])

    def test_validation(self, wiki_source):
        with pytest.raises(ValueError, match="num_unlabeled"):
            SourceLDA(wiki_source, num_unlabeled_topics=-1)
        with pytest.raises(ValueError, match="init"):
            SourceLDA(wiki_source, init="bogus")

    def test_log_likelihood_tracking(self, wiki_source, wiki_corpus):
        fitted = SourceLDA(wiki_source, num_unlabeled_topics=1,
                           calibration_draws=3, reduce_topics=False).fit(
            wiki_corpus, iterations=4, seed=0,
            track_log_likelihood=True)
        assert len(fitted.log_likelihoods) == 4
        assert all(np.isfinite(v) for v in fitted.log_likelihoods)

    def test_beats_lda_on_label_recovery(self, wiki_source, wiki_corpus):
        """The headline behaviour: source topics come out on-label."""
        fitted = SourceLDA(wiki_source, num_unlabeled_topics=0,
                           calibration_draws=3, reduce_topics=False).fit(
            wiki_corpus, iterations=20, seed=0)
        counts = wiki_source.count_matrix(wiki_corpus.vocabulary)
        correct = 0
        for topic in range(fitted.num_topics):
            ids = fitted.top_word_ids(topic, 5)
            per_article = counts[:, ids].sum(axis=1)
            correct += per_article.argmax() == topic
        assert correct >= 4
