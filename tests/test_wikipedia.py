"""Tests for repro.knowledge.wikipedia (synthetic article generator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.knowledge.wikipedia import (SyntheticWikipedia, make_lexicon,
                                       zipf_probabilities)


class TestMakeLexicon:
    def test_size_and_uniqueness(self):
        lexicon = make_lexicon(200, seed=1)
        assert len(lexicon) == 200
        assert len(set(lexicon)) == 200

    def test_deterministic(self):
        assert make_lexicon(50, seed=3) == make_lexicon(50, seed=3)

    def test_seed_changes_output(self):
        assert make_lexicon(50, seed=3) != make_lexicon(50, seed=4)

    def test_prefix_applied(self):
        lexicon = make_lexicon(10, seed=0, prefix="zzq")
        assert all(word.startswith("zzq") for word in lexicon)

    def test_zero_size(self):
        assert make_lexicon(0) == ()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_lexicon(-1)


class TestZipfProbabilities:
    def test_sums_to_one(self):
        assert zipf_probabilities(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50)
        assert np.all(np.diff(probs) < 0)

    def test_heavier_tail_with_smaller_exponent(self):
        flat = zipf_probabilities(50, exponent=0.5)
        steep = zipf_probabilities(50, exponent=2.0)
        assert flat[0] < steep[0]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="positive"):
            zipf_probabilities(0)


class TestSyntheticWikipedia:
    def test_article_deterministic(self):
        wiki_a = SyntheticWikipedia(["Baseball"], seed=5)
        wiki_b = SyntheticWikipedia(["Baseball"], seed=5)
        assert wiki_a.article("Baseball") == wiki_b.article("Baseball")

    def test_article_length(self):
        wiki = SyntheticWikipedia(["X"], article_length=123, seed=0)
        assert len(wiki.article("X")) == 123

    def test_core_words_dominate(self):
        wiki = SyntheticWikipedia(["X"], article_length=1000,
                                  core_weight=0.8, seed=0)
        article = wiki.article("X")
        core = set(wiki.core_words("X"))
        core_fraction = sum(1 for t in article if t in core) / len(article)
        assert core_fraction == pytest.approx(0.8, abs=0.06)

    def test_topics_have_distinct_core_vocabularies(self):
        wiki = SyntheticWikipedia(["A", "B"], seed=0)
        assert not (set(wiki.core_words("A")) & set(wiki.core_words("B")))

    def test_topics_share_background(self):
        wiki = SyntheticWikipedia(["A", "B"], article_length=2000, seed=0)
        background = set(wiki.background_words)
        tokens_a = set(wiki.article("A")) & background
        tokens_b = set(wiki.article("B")) & background
        assert tokens_a & tokens_b

    def test_curated_vocabulary_used(self):
        wiki = SyntheticWikipedia(
            ["Gold"], curated_vocabularies={"Gold": ("gold", "ounce")},
            seed=0)
        assert wiki.core_words("Gold") == ("gold", "ounce")
        assert set(wiki.article("Gold")) & {"gold", "ounce"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SyntheticWikipedia(["A", "A"])

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SyntheticWikipedia([])

    def test_invalid_core_weight(self):
        with pytest.raises(ValueError, match="core_weight"):
            SyntheticWikipedia(["A"], core_weight=1.5)

    def test_empty_curated_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SyntheticWikipedia(["A"], curated_vocabularies={"A": []})

    def test_knowledge_source_roundtrip(self):
        wiki = SyntheticWikipedia(["A", "B"], article_length=50, seed=2)
        source = wiki.knowledge_source()
        assert source.labels == ("A", "B")
        assert source.tokens("A") == wiki.article("A")

    def test_article_independent_of_other_topics(self):
        solo = SyntheticWikipedia(["A"], seed=9).article("A")
        paired = SyntheticWikipedia(["A", "B"], seed=9).article("A")
        assert solo == paired
