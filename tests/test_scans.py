"""Tests for the scan strategies (Algorithms 2 and 3).

The paper's central claim for its parallel samplers is *exactness*: they
must produce the same cumulative sums (hence the same draws) as the serial
scan.  These tests verify that equivalence exhaustively and property-based.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.parallel import WorkerPool
from repro.sampling.prefix_sums import (PrefixSumScan,
                                        blelloch_exclusive_scan)
from repro.sampling.scans import SerialScan
from repro.sampling.simple_parallel import (SimpleParallelScan,
                                            blocked_inclusive_scan)

weight_arrays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=300).map(lambda xs: np.asarray(xs))


class TestBlellochScan:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 100,
                                   1023, 1024, 1025])
    def test_matches_cumsum_all_sizes(self, n: int):
        values = np.random.default_rng(n).random(n)
        expected = np.concatenate(([0.0], np.cumsum(values)[:-1]))
        np.testing.assert_allclose(blelloch_exclusive_scan(values),
                                   expected, rtol=1e-12)

    def test_empty_input(self):
        assert blelloch_exclusive_scan(np.array([])).shape == (0,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-d"):
            blelloch_exclusive_scan(np.zeros((2, 2)))

    def test_with_thread_pool(self):
        values = np.random.default_rng(0).random(515)
        expected = blelloch_exclusive_scan(values)
        with WorkerPool(4) as pool:
            threaded = blelloch_exclusive_scan(values, pool=pool)
        np.testing.assert_allclose(threaded, expected, rtol=1e-12)

    @given(weight_arrays)
    @settings(max_examples=50, deadline=None)
    def test_property_exclusive_scan(self, values: np.ndarray):
        expected = np.concatenate(([0.0], np.cumsum(values)[:-1]))
        np.testing.assert_allclose(blelloch_exclusive_scan(values),
                                   expected, rtol=1e-9, atol=1e-9)


class TestBlockedScan:
    @pytest.mark.parametrize("blocks", [1, 2, 3, 4, 7, 64])
    def test_matches_cumsum(self, blocks: int):
        values = np.random.default_rng(blocks).random(53)
        np.testing.assert_allclose(
            blocked_inclusive_scan(values, blocks), np.cumsum(values),
            rtol=1e-12)

    def test_more_blocks_than_elements(self):
        values = np.array([1.0, 2.0])
        np.testing.assert_allclose(blocked_inclusive_scan(values, 10),
                                   [1.0, 3.0])

    def test_empty_input(self):
        assert blocked_inclusive_scan(np.array([]), 4).shape == (0,)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError, match="blocks"):
            blocked_inclusive_scan(np.array([1.0]), 0)

    def test_with_thread_pool(self):
        values = np.random.default_rng(1).random(301)
        with WorkerPool(3) as pool:
            threaded = blocked_inclusive_scan(values, 6, pool=pool)
        np.testing.assert_allclose(threaded, np.cumsum(values), rtol=1e-12)

    @given(weight_arrays, st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_property_inclusive_scan(self, values: np.ndarray,
                                     blocks: int):
        np.testing.assert_allclose(
            blocked_inclusive_scan(values, blocks), np.cumsum(values),
            rtol=1e-9, atol=1e-9)


class TestSamplingEquivalence:
    """Identical uniform draw => identical topic from all three scans."""

    @pytest.mark.parametrize("scan_factory", [
        SerialScan,
        PrefixSumScan,
        lambda: SimpleParallelScan(blocks=4),
    ])
    def test_sample_distribution(self, scan_factory):
        scan = scan_factory()
        weights = np.array([1.0, 0.0, 3.0, 0.0])
        rng = np.random.default_rng(0)
        draws = np.array([scan.sample(weights, rng) for _ in range(500)])
        # Only topics with mass are ever drawn, at roughly 1:3 odds.
        assert set(np.unique(draws)) <= {0, 2}
        assert (draws == 2).mean() == pytest.approx(0.75, abs=0.07)

    def test_same_seed_same_draws_across_strategies(self):
        weights = np.random.default_rng(3).random(37)
        draws = []
        for scan in (SerialScan(), PrefixSumScan(),
                     SimpleParallelScan(blocks=5)):
            rng = np.random.default_rng(42)
            draws.append([scan.sample(weights, rng) for _ in range(100)])
        assert draws[0] == draws[1] == draws[2]

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError, match="positive finite mass"):
            SerialScan().sample(np.zeros(4), np.random.default_rng(0))

    def test_nan_mass_rejected(self):
        with pytest.raises(ValueError, match="positive finite mass"):
            SerialScan().sample(np.array([1.0, np.nan]),
                                np.random.default_rng(0))

    @given(st.lists(st.floats(min_value=0.01, max_value=100),
                    min_size=2, max_size=64),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_identical_draws(self, weights: list[float],
                                      seed: int):
        array = np.asarray(weights)
        results = set()
        for scan in (SerialScan(), PrefixSumScan(),
                     SimpleParallelScan(blocks=3)):
            rng = np.random.default_rng(seed)
            results.add(scan.sample(array, rng))
        assert len(results) == 1


class _NearOneRng:
    """Largest-double-below-1 uniforms: with total < 1 the scaled draw
    rounds up to exactly the total (the right-bisection boundary)."""

    U = 1.0 - 2.0 ** -53

    def random(self, size=None):
        if size is None:
            return self.U
        return np.full(size, self.U)


class TestBoundaryDraws:
    """u rounding up to the total, with and without zero-weight tails."""

    SCANS = [SerialScan, PrefixSumScan,
             lambda: SimpleParallelScan(blocks=4)]

    @pytest.mark.parametrize("scan_factory", SCANS)
    def test_zero_tail_lands_on_last_positive(self, scan_factory):
        # total = 0.5 < 1, so u * total == total exactly; the zero-
        # weight tail must never be selected.
        weights = np.array([0.3, 0.2, 0.0, 0.0])
        topic = scan_factory().sample(weights, _NearOneRng())
        assert topic == 1

    @pytest.mark.parametrize("scan_factory", SCANS)
    def test_positive_tail_lands_on_last_topic(self, scan_factory):
        weights = np.array([0.2, 0.2, 0.1])
        topic = scan_factory().sample(weights, _NearOneRng())
        assert topic == 2

    @pytest.mark.parametrize("scan_factory", SCANS)
    def test_interior_zeros_never_selected(self, scan_factory):
        weights = np.array([0.2, 0.0, 0.0, 0.3])
        scan = scan_factory()
        rng = np.random.default_rng(5)
        draws = {scan.sample(weights, rng) for _ in range(200)}
        draws.add(scan.sample(weights, _NearOneRng()))
        assert draws <= {0, 3}

    def test_categorical_boundary_clamps_to_last_positive(self):
        from repro.sampling.rng import categorical
        assert categorical(np.array([0.3, 0.2, 0.0]), _NearOneRng()) == 1
