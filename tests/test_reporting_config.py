"""Tests for repro.experiments.reporting and .config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import LAPTOP, PAPER, SMOKE
from repro.experiments.reporting import (BoxplotSummary, format_boxplots,
                                         format_series, format_table)


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_validation(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])


class TestBoxplotSummary:
    def test_five_number_summary(self):
        summary = BoxplotSummary.of("x", np.arange(1, 101, dtype=float))
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == pytest.approx(50.5)
        assert summary.q1 < summary.median < summary.q3
        assert summary.mean == pytest.approx(50.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            BoxplotSummary.of("x", np.array([]))

    def test_format_boxplots(self):
        summaries = [BoxplotSummary.of("a", np.array([1.0, 2.0, 3.0]))]
        text = format_boxplots(summaries, value_label="topic")
        assert "topic" in text and "median" in text


class TestFormatSeries:
    def test_columns(self):
        text = format_series("x", [1, 2], {"a": [0.1, 0.2],
                                           "b": [0.3, 0.4]})
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 4

    def test_length_validation(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [1, 2], {"a": [0.1]})


class TestScales:
    def test_paper_matches_publication_parameters(self):
        assert PAPER.iterations == 1000
        assert PAPER.num_documents == 2000
        assert PAPER.superset_size == 578
        assert PAPER.generating_topics == 100

    def test_ordering(self):
        assert SMOKE.iterations < LAPTOP.iterations < PAPER.iterations
        assert SMOKE.num_documents < LAPTOP.num_documents \
            < PAPER.num_documents

    def test_scaled_override(self):
        scaled = LAPTOP.scaled(iterations=3)
        assert scaled.iterations == 3
        assert scaled.num_documents == LAPTOP.num_documents
        # original untouched (frozen dataclass)
        assert LAPTOP.iterations != 3
