"""Smoke tests for the experiment drivers at SMOKE scale.

Each driver must run end-to-end and return a structurally valid result;
the quantitative shape assertions live in benchmarks/ where the scales are
large enough for them to be meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (SMOKE, format_boxplots, format_case_study,
                               format_condition, format_graphical_example,
                               format_lambda_integration, format_reuters,
                               format_scaling, format_series, run_fig2,
                               run_fig3, run_fig4, run_graphical_example,
                               run_lambda_integration, run_mixed_condition,
                               run_pmi_sweep, run_reuters_analysis,
                               run_scaling)
from repro.experiments.wikipedia_corpus import run_bijective_condition

TINY = SMOKE.scaled(num_documents=16, iterations=4, superset_size=6,
                    generating_topics=3, avg_document_length=15,
                    article_length=60, divergence_draws=8)


def test_fig2_driver():
    summaries = run_fig2(TINY, categories=("Trade", "Gold"), seed=0)
    assert len(summaries) == 2
    text = format_boxplots(summaries)
    assert "Trade" in text


def test_fig3_driver():
    result = run_fig3(TINY, lambdas=np.array([0.0, 0.5, 1.0]), seed=0)
    assert len(result.summaries) == 3
    assert result.summaries[0].median > result.summaries[-1].median


def test_fig4_driver():
    result = run_fig4(TINY, lambdas=np.array([0.0, 0.5, 1.0]), seed=0)
    assert result.smoothing is not None
    assert np.isfinite(result.median_linearity_r2)


def test_graphical_driver():
    result = run_graphical_example(TINY.scaled(num_documents=30),
                                   num_runs=2, seed=0)
    assert len(result.log_likelihood_runs) == 2
    assert result.snapshots
    assert format_graphical_example(result)


def test_lambda_integration_driver():
    result = run_lambda_integration(TINY, fixed_lambdas=(0.5, 1.0),
                                    seed=0)
    assert len(result.fixed) == 2
    assert result.baseline.perplexity > 1.0
    assert format_lambda_integration(result)


def test_reuters_driver():
    result = run_reuters_analysis(TINY, seed=0)
    assert set(result.top_words) == set(result.table_labels)
    assert result.discovered_labeled_topics["IR-LDA"] >= 0
    assert format_reuters(result)


def test_mixed_condition_driver():
    result = run_mixed_condition(TINY, seed=0)
    names = [score.name for score in result.scores]
    assert names == ["SRC-Unk", "EDA-Unk", "CTM-Unk", "LDA-Unk"]
    for score in result.scores:
        assert 0.0 <= score.accuracy <= 1.0
        assert score.theta_js_total >= 0.0
    assert format_condition(result)


def test_bijective_condition_driver():
    result = run_bijective_condition(TINY, seed=0)
    names = [score.name for score in result.scores]
    assert names == ["SRC-Exact", "EDA-Exact", "CTM-Exact", "LDA-Exact"]


def test_pmi_sweep_driver():
    result = run_pmi_sweep(TINY, topic_counts=[3, 4], seed=0)
    assert result.topic_counts == [3, 4]
    for series in result.series.values():
        assert len(series) == 2
        assert all(np.isfinite(v) for v in series)
    assert format_series("topics", result.topic_counts, result.series)


def test_scaling_driver():
    result = run_scaling(topic_counts=[20, 40], thread_counts=(1, 2),
                         num_documents=3, document_length=10,
                         iterations=1, seed=0)
    assert len(result.rows) == 2
    for row in result.rows:
        assert set(row.measured_seconds) == {1, 2}
        assert row.modeled_seconds[2] <= row.modeled_seconds[1]
    assert format_scaling(result)


@pytest.mark.slow
def test_case_study_driver():
    from repro.experiments import run_case_study
    result = run_case_study(iterations=80)
    assert result.source_lda_separates
    assert format_case_study(result)
