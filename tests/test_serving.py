"""Tests for the serving subsystem (persistence, registry, fold-in,
sessions)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.bijective import BijectiveSourceLDA
from repro.core.mixture import MixtureSourceLDA
from repro.core.source_lda import SourceLDA
from repro.metrics.perplexity import heldout_gibbs_theta
from repro.models.base import FittedTopicModel
from repro.models.ctm import CTM
from repro.models.eda import EDA
from repro.models.lda import LDA
from repro.sampling.rng import categorical, ensure_rng
from repro.serving import (ARTIFACT_FORMAT, SCHEMA_VERSION, ArtifactError,
                           FoldInEngine, InferenceSession, ManifestError,
                           ModelRegistry, load_model, read_manifest,
                           save_model, validate_phi)
from repro.text.corpus import Corpus
from repro.text.vocabulary import Vocabulary

# ----------------------------------------------------------------------
# Fitted models of all six classes (module-scoped: fitting is the
# expensive part, round-trip assertions are cheap).
# ----------------------------------------------------------------------
MODEL_CLASSES = ("LDA", "EDA", "CTM", "BijectiveSourceLDA",
                 "MixtureSourceLDA", "SourceLDA")


@pytest.fixture(scope="module")
def serving_corpus_and_source():
    from repro.knowledge.source import KnowledgeSource
    from repro.knowledge.wikipedia import SyntheticWikipedia
    wiki = SyntheticWikipedia([f"Topic {i}" for i in range(4)],
                              article_length=100, core_vocab_size=8,
                              background_vocab_size=30, seed=5)
    source = wiki.knowledge_source()
    rng = np.random.default_rng(3)
    labels = source.labels
    texts = [" ".join(rng.choice(source.tokens(labels[i % 4]), size=25))
             for i in range(16)]
    corpus = Corpus.from_texts(texts, tokenizer=None)
    assert isinstance(source, KnowledgeSource)
    return corpus, source


@pytest.fixture(scope="module")
def fitted_models(serving_corpus_and_source):
    corpus, source = serving_corpus_and_source
    fits = {
        "LDA": LDA(num_topics=4).fit(
            corpus, iterations=4, seed=0, track_log_likelihood=True),
        "EDA": EDA(source).fit(corpus, iterations=4, seed=0),
        "CTM": CTM(source, num_free_topics=1, top_n_words=20).fit(
            corpus, iterations=4, seed=0),
        "BijectiveSourceLDA": BijectiveSourceLDA(source).fit(
            corpus, iterations=4, seed=0),
        "MixtureSourceLDA": MixtureSourceLDA(source, num_free_topics=1)
        .fit(corpus, iterations=4, seed=0),
        "SourceLDA": SourceLDA(source, num_unlabeled_topics=1,
                               calibration_draws=3).fit(
            corpus, iterations=4, seed=0,
            snapshot_iterations=(1, 3)),
    }
    assert set(fits) == set(MODEL_CLASSES)
    return fits


def _assert_metadata_equal(left, right, path="metadata"):
    assert type(left) is type(right), path
    if isinstance(left, dict):
        assert set(left) == set(right), path
        for key in left:
            _assert_metadata_equal(left[key], right[key],
                                   f"{path}[{key!r}]")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), path
        for index, (a, b) in enumerate(zip(left, right)):
            _assert_metadata_equal(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, path
        assert np.array_equal(left, right), path
    else:
        assert left == right, path


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("model_class", MODEL_CLASSES)
    def test_round_trip_bit_exact(self, model_class, fitted_models,
                                  tmp_path):
        fitted = fitted_models[model_class]
        path = save_model(fitted, tmp_path / model_class,
                          model_class=model_class)
        loaded = load_model(path)
        assert loaded.model_class == model_class
        assert loaded.schema_version == SCHEMA_VERSION
        model = loaded.model
        assert model.phi.dtype == np.float64
        assert np.array_equal(model.phi, fitted.phi)
        assert np.array_equal(model.theta, fitted.theta)
        assert model.topic_labels == fitted.topic_labels
        assert model.vocabulary == fitted.vocabulary
        assert model.log_likelihoods == fitted.log_likelihoods
        assert len(model.assignments) == len(fitted.assignments)
        for a, b in zip(model.assignments, fitted.assignments):
            assert np.array_equal(a, b)
        _assert_metadata_equal(model.metadata, fitted.metadata)

    @pytest.mark.parametrize("model_class", MODEL_CLASSES)
    def test_manifest_hyperparameters(self, model_class, fitted_models,
                                      tmp_path):
        fitted = fitted_models[model_class]
        path = save_model(fitted, tmp_path / model_class)
        manifest = read_manifest(path)
        hyper = manifest["hyperparameters"]
        assert hyper["alpha"] == fitted.metadata["alpha"]
        for key, value in fitted.metadata.items():
            if isinstance(value, (bool, int, float, str)):
                assert hyper[key] == value, key
        assert manifest["num_topics"] == fitted.num_topics
        assert manifest["vocabulary"] == list(fitted.vocabulary.words)
        assert manifest["topic_labels"] == list(fitted.topic_labels)

    def test_snapshot_metadata_round_trips_int_keys(self, fitted_models,
                                                    tmp_path):
        fitted = fitted_models["SourceLDA"]
        loaded = load_model(save_model(fitted, tmp_path / "m"))
        snapshots = loaded.model.metadata["snapshots"]
        assert set(snapshots) == {1, 3}
        assert np.array_equal(snapshots[3],
                              fitted.metadata["snapshots"][3])

    def test_refuses_overwrite(self, fitted_models, tmp_path):
        fitted = fitted_models["LDA"]
        save_model(fitted, tmp_path / "m")
        with pytest.raises(ArtifactError, match="already exists"):
            save_model(fitted, tmp_path / "m")
        save_model(fitted, tmp_path / "m", overwrite=True)

    def test_rejects_unserializable_metadata(self, fitted_models,
                                             tmp_path):
        fitted = fitted_models["LDA"]
        bad = FittedTopicModel(
            phi=fitted.phi, theta=fitted.theta,
            assignments=fitted.assignments,
            vocabulary=fitted.vocabulary,
            metadata={"callback": lambda: None})
        with pytest.raises(ArtifactError, match="cannot serialize"):
            save_model(bad, tmp_path / "bad")

    def test_rejects_object_dtype_metadata_array(self, fitted_models,
                                                 tmp_path):
        """An object array would pickle on save but be unloadable."""
        fitted = fitted_models["LDA"]
        bad = FittedTopicModel(
            phi=fitted.phi, theta=fitted.theta,
            assignments=fitted.assignments,
            vocabulary=fitted.vocabulary,
            metadata={"ragged": np.asarray([[1, 2], [3]], dtype=object)})
        with pytest.raises(ArtifactError, match="object-dtype"):
            save_model(bad, tmp_path / "bad")


class TestManifestValidation:
    def _saved(self, fitted_models, tmp_path):
        return save_model(fitted_models["LDA"], tmp_path / "m")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError, match="no artifact manifest"):
            load_model(tmp_path / "nowhere")

    def test_rejects_newer_schema_version(self, fitted_models, tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="newer than"):
            load_model(path)

    def test_rejects_invalid_schema_version(self, fitted_models,
                                            tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = "one"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="invalid schema_version"):
            load_model(path)

    def test_rejects_foreign_format(self, fitted_models, tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format"] = "someone/else"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError,
                           match=ARTIFACT_FORMAT.replace("/", ".")):
            load_model(path)

    def test_rejects_unparseable_manifest(self, fitted_models, tmp_path):
        path = self._saved(fitted_models, tmp_path)
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_model(path)

    def test_missing_metadata_entry_loads_empty(self, fitted_models,
                                                tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        del manifest["metadata"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        assert load_model(path).model.metadata == {}


class TestModelRegistry:
    def test_publish_resolve_versions(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        record1 = registry.publish("demo", fitted_models["LDA"],
                                   model_class="LDA")
        record2 = registry.publish("demo", fitted_models["EDA"],
                                   model_class="EDA")
        assert (record1.version, record2.version) == (1, 2)
        assert registry.versions("demo") == [1, 2]
        assert registry.names() == ["demo"]
        assert registry.resolve("demo").version == 2
        assert registry.resolve("demo", 1).path == record1.path
        assert registry.load("demo").model_class == "EDA"
        assert registry.load("demo", 1).model_class == "LDA"

    def test_unknown_name_and_version(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(KeyError, match="no versions"):
            registry.resolve("ghost")
        with pytest.raises(ValueError, match="invalid model name"):
            registry.publish("../escape", None)

    def test_missing_version(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        with pytest.raises(KeyError, match="no version 9"):
            registry.resolve("demo", 9)

    def test_republish_version_is_immutable(self, fitted_models,
                                            tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        with pytest.raises(ArtifactError, match="immutable"):
            registry.publish("demo", fitted_models["LDA"], version=1)

    def test_lru_cache_hits_and_eviction(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry", cache_size=2)
        for name in ("a", "b", "c"):
            registry.publish(name, fitted_models["LDA"])
        first = registry.load("a")
        assert registry.load("a") is first          # cache hit
        registry.load("b")
        registry.load("c")                          # evicts "a"
        assert registry.cached_keys == (("b", 1), ("c", 1))
        assert registry.load("a") is not first      # reloaded from disk
        registry.clear_cache()
        assert registry.cached_keys == ()

    def test_cache_disabled(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry", cache_size=0)
        registry.publish("demo", fitted_models["LDA"])
        assert registry.load("demo") is not registry.load("demo")

    def test_names_skips_clutter_directories(self, fitted_models,
                                             tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        (tmp_path / "registry" / ".cache").mkdir()
        (tmp_path / "registry" / "not a model!").mkdir()
        assert registry.names() == ["demo"]


# ----------------------------------------------------------------------
# Fold-in engine
# ----------------------------------------------------------------------
def _legacy_heldout_gibbs_theta(phi, corpus, alpha, iterations=30,
                                rng=None):
    """The pre-serving per-token loop, verbatim — the seed-pin oracle."""
    phi = validate_phi(phi)
    rng = ensure_rng(rng)
    num_topics = phi.shape[0]
    theta = np.empty((len(corpus), num_topics))
    for index, doc in enumerate(corpus):
        length = len(doc)
        if length == 0:
            theta[index] = 1.0 / num_topics
            continue
        assignments = rng.integers(0, num_topics, size=length)
        doc_counts = np.bincount(assignments, minlength=num_topics) \
            .astype(np.float64)
        word_probs = phi[:, doc.word_ids].T
        burn_in = min(max(1, iterations // 2), iterations - 1)
        accumulated = np.zeros(num_topics)
        samples = 0
        for iteration in range(iterations):
            for position in range(length):
                topic = assignments[position]
                doc_counts[topic] -= 1.0
                weights = word_probs[position] * (doc_counts + alpha)
                topic = categorical(weights, rng)
                assignments[position] = topic
                doc_counts[topic] += 1.0
            if iteration >= burn_in:
                accumulated += doc_counts
                samples += 1
        mean_counts = accumulated / max(samples, 1)
        theta[index] = (mean_counts + alpha) / (length
                                                + num_topics * alpha)
    return theta


@pytest.fixture
def foldin_phi_and_corpus():
    rng = np.random.default_rng(11)
    num_topics, vocab_size = 6, 30
    phi = rng.dirichlet(np.full(vocab_size, 0.4), size=num_topics)
    vocab = Vocabulary(f"w{i}" for i in range(vocab_size))
    id_lists = [rng.integers(0, vocab_size, size=n).tolist()
                for n in (14, 0, 25, 1, 9)]
    return phi, Corpus.from_word_id_lists(id_lists, vocab)


class TestFoldInEngine:
    @pytest.mark.parametrize("iterations", [1, 2, 7, 30])
    def test_exact_lane_seed_pinned_to_legacy(self, iterations,
                                              foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        expected = _legacy_heldout_gibbs_theta(
            phi, corpus, alpha=0.4, iterations=iterations, rng=99)
        via_metric = heldout_gibbs_theta(
            phi, corpus, alpha=0.4, iterations=iterations, rng=99)
        engine = FoldInEngine(phi, alpha=0.4, iterations=iterations)
        direct = engine.theta([doc.word_ids for doc in corpus], rng=99)
        assert np.array_equal(expected, via_metric)
        assert np.array_equal(expected, direct)

    def test_batch_size_does_not_change_draws(self,
                                              foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        small = FoldInEngine(phi, 0.4, iterations=5, batch_size=1)
        large = FoldInEngine(phi, 0.4, iterations=5, batch_size=64)
        assert np.array_equal(small.theta(docs, rng=5),
                              large.theta(docs, rng=5))

    def test_engine_reuse_matches_fresh_engine(self,
                                               foldin_phi_and_corpus):
        """Buffer reuse across calls must not leak state between them."""
        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        engine = FoldInEngine(phi, 0.4, iterations=5)
        first = engine.theta(docs, rng=5)
        again = engine.theta(docs, rng=5)
        assert np.array_equal(first, again)

    def test_sparse_lane_valid_and_close_to_exact(self,
                                                  foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        sparse = FoldInEngine(phi, 0.4, iterations=200, mode="sparse")
        exact = FoldInEngine(phi, 0.4, iterations=200, mode="exact")
        theta_sparse = sparse.theta(docs, rng=1)
        theta_exact = exact.theta(docs, rng=1)
        np.testing.assert_allclose(theta_sparse.sum(axis=1), 1.0)
        assert np.all(theta_sparse > 0)
        # Same conditional distribution, different draw association: the
        # long-run averages agree to sampling noise.
        assert np.abs(theta_sparse - theta_exact).max() < 0.12

    def test_empty_document_is_uniform_prior(self,
                                             foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        for mode in ("exact", "sparse"):
            engine = FoldInEngine(phi, 0.4, mode=mode)
            theta = engine.theta([np.empty(0, dtype=np.int64)], rng=0)
            np.testing.assert_allclose(theta[0], 1.0 / phi.shape[0])

    def test_validation_errors(self, foldin_phi_and_corpus):
        phi, _ = foldin_phi_and_corpus
        with pytest.raises(ValueError, match="alpha"):
            FoldInEngine(phi, alpha=0.0)
        with pytest.raises(ValueError, match="iterations"):
            FoldInEngine(phi, 0.4, iterations=0)
        with pytest.raises(ValueError, match="mode"):
            FoldInEngine(phi, 0.4, mode="warp")
        with pytest.raises(ValueError, match="batch_size"):
            FoldInEngine(phi, 0.4, batch_size=0)
        with pytest.raises(ValueError, match="rows must sum"):
            FoldInEngine(np.full((2, 4), 0.5), 0.4)
        engine = FoldInEngine(phi, 0.4)
        with pytest.raises(ValueError, match="outside the model"):
            engine.theta([np.asarray([10_000])], rng=0)


# ----------------------------------------------------------------------
# Inference sessions
# ----------------------------------------------------------------------
class TestInferenceSession:
    @pytest.fixture(scope="class")
    def session_model(self, fitted_models):
        return fitted_models["BijectiveSourceLDA"]

    def test_serves_raw_text_batches(self, session_model):
        session = InferenceSession(session_model, iterations=20, seed=0)
        vocab_words = session.vocabulary.words
        queries = [" ".join(vocab_words[:6]),
                   " ".join(vocab_words[6:10])]
        result = session.infer(queries)
        assert result.theta.shape == (2, session.num_topics)
        np.testing.assert_allclose(result.theta.sum(axis=1), 1.0)
        assert result.num_tokens.tolist() == [6, 4]
        assert result.num_oov.tolist() == [0, 0]

    def test_oov_ignore_counts_and_uniform_fallback(self, session_model):
        session = InferenceSession(session_model, seed=0)
        known = session.vocabulary.words[0]
        result = session.infer([f"{known} zzz-unknown qqq-unknown",
                                "zzz-unknown qqq-unknown",
                                ""])
        assert result.num_oov.tolist() == [2, 2, 0]
        assert result.num_tokens.tolist() == [1, 0, 0]
        # OOV-only and empty documents fall back to the uniform prior.
        np.testing.assert_allclose(result.theta[1],
                                   1.0 / session.num_topics)
        np.testing.assert_allclose(result.theta[2],
                                   1.0 / session.num_topics)

    def test_oov_error_policy(self, session_model):
        session = InferenceSession(session_model, oov="error", seed=0)
        with pytest.raises(KeyError, match="zzz-unknown"):
            session.infer(["zzz-unknown"])

    def test_pretokenized_input(self, session_model):
        session = InferenceSession(session_model, seed=0)
        tokens = list(session.vocabulary.words[:5])
        result = session.infer([tokens])
        assert result.num_tokens.tolist() == [5]

    def test_top_topics_and_labels(self, session_model):
        session = InferenceSession(session_model, iterations=20, seed=0)
        labels = session_model.topic_labels
        # Query text drawn from one topic's most probable words should
        # rank that topic first.
        topic = 2
        words = [session.vocabulary.word(int(i))
                 for i in session_model.top_word_ids(topic, 8)]
        scores = session.top_topics([" ".join(words * 3)], top_n=3)[0]
        assert len(scores) == 3
        assert scores[0].topic == topic
        assert scores[0].label == labels[topic]
        assert scores[0].probability >= scores[1].probability
        assert session.top_labels([" ".join(words * 3)]) \
            == [labels[topic]]

    def test_ranking_from_result_reuses_theta(self, session_model):
        """Passing an InferenceResult ranks without re-sampling, so the
        labels are consistent with the theta the caller holds."""
        session = InferenceSession(session_model, iterations=10, seed=0)
        words = session.vocabulary.words
        result = session.infer([" ".join(words[:6]),
                                " ".join(words[6:12])])
        scores = session.top_topics(result, top_n=1)
        for row, (top,) in zip(result.theta, scores):
            assert top.topic == int(np.argmax(row))
            assert top.probability == float(row.max())
        # Same via a bare theta array, and stable across repeat calls.
        assert session.top_topics(result.theta, top_n=1) == scores
        assert session.top_topics(result, top_n=1) == scores
        with pytest.raises(ValueError, match="theta must have shape"):
            session.top_topics(np.zeros((2, 3)))

    def test_top_labels_none_for_unlabeled_model(self, fitted_models):
        session = InferenceSession(fitted_models["LDA"], seed=0)
        word = session.vocabulary.words[0]
        assert session.top_labels([word]) == [None]

    def test_session_from_loaded_model_matches_fitted(self, fitted_models,
                                                      tmp_path):
        fitted = fitted_models["BijectiveSourceLDA"]
        loaded = load_model(save_model(fitted, tmp_path / "m"))
        queries = [" ".join(fitted.vocabulary.words[:8])]
        theta_fitted = InferenceSession(fitted, seed=4).theta(queries)
        theta_loaded = InferenceSession(loaded, seed=4).theta(queries)
        assert np.array_equal(theta_fitted, theta_loaded)

    def test_alpha_defaults_to_fit_metadata(self, session_model):
        session = InferenceSession(session_model)
        assert session.alpha == session_model.metadata["alpha"]

    def test_invalid_arguments(self, session_model):
        with pytest.raises(ValueError, match="oov"):
            InferenceSession(session_model, oov="explode")
        with pytest.raises(TypeError, match="FittedTopicModel"):
            InferenceSession("not a model")

    def test_bare_string_batch_rejected(self, session_model):
        session = InferenceSession(session_model, seed=0)
        with pytest.raises(TypeError, match="bare string"):
            session.infer("a single query passed without a list")
