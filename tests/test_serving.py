"""Tests for the serving subsystem (persistence, registry, fold-in,
sessions)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.bijective import BijectiveSourceLDA
from repro.core.mixture import MixtureSourceLDA
from repro.core.source_lda import SourceLDA
from repro.metrics.perplexity import heldout_gibbs_theta
from repro.models.base import FittedTopicModel
from repro.models.ctm import CTM
from repro.models.eda import EDA
from repro.models.lda import LDA
from repro.sampling.rng import categorical, ensure_rng
from repro.serving import (ARTIFACT_FORMAT, SCHEMA_VERSION, ArtifactError,
                           FoldInEngine, InferenceSession, ManifestError,
                           ModelRegistry, load_model, read_manifest,
                           save_model, validate_phi)
from repro.text.corpus import Corpus
from repro.text.vocabulary import Vocabulary

# ----------------------------------------------------------------------
# Fitted models of all six classes (module-scoped: fitting is the
# expensive part, round-trip assertions are cheap).
# ----------------------------------------------------------------------
MODEL_CLASSES = ("LDA", "EDA", "CTM", "BijectiveSourceLDA",
                 "MixtureSourceLDA", "SourceLDA")

#: Sentinel for "remove the metadata key entirely" in alpha tests.
_ABSENT = object()


@pytest.fixture(scope="module")
def serving_corpus_and_source():
    from repro.knowledge.source import KnowledgeSource
    from repro.knowledge.wikipedia import SyntheticWikipedia
    wiki = SyntheticWikipedia([f"Topic {i}" for i in range(4)],
                              article_length=100, core_vocab_size=8,
                              background_vocab_size=30, seed=5)
    source = wiki.knowledge_source()
    rng = np.random.default_rng(3)
    labels = source.labels
    texts = [" ".join(rng.choice(source.tokens(labels[i % 4]), size=25))
             for i in range(16)]
    corpus = Corpus.from_texts(texts, tokenizer=None)
    assert isinstance(source, KnowledgeSource)
    return corpus, source


@pytest.fixture(scope="module")
def fitted_models(serving_corpus_and_source):
    corpus, source = serving_corpus_and_source
    fits = {
        "LDA": LDA(num_topics=4).fit(
            corpus, iterations=4, seed=0, track_log_likelihood=True),
        "EDA": EDA(source).fit(corpus, iterations=4, seed=0),
        "CTM": CTM(source, num_free_topics=1, top_n_words=20).fit(
            corpus, iterations=4, seed=0),
        "BijectiveSourceLDA": BijectiveSourceLDA(source).fit(
            corpus, iterations=4, seed=0),
        "MixtureSourceLDA": MixtureSourceLDA(source, num_free_topics=1)
        .fit(corpus, iterations=4, seed=0),
        "SourceLDA": SourceLDA(source, num_unlabeled_topics=1,
                               calibration_draws=3).fit(
            corpus, iterations=4, seed=0,
            snapshot_iterations=(1, 3)),
    }
    assert set(fits) == set(MODEL_CLASSES)
    return fits


def _assert_metadata_equal(left, right, path="metadata"):
    assert type(left) is type(right), path
    if isinstance(left, dict):
        assert set(left) == set(right), path
        for key in left:
            _assert_metadata_equal(left[key], right[key],
                                   f"{path}[{key!r}]")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), path
        for index, (a, b) in enumerate(zip(left, right)):
            _assert_metadata_equal(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, path
        assert np.array_equal(left, right), path
    else:
        assert left == right, path


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("model_class", MODEL_CLASSES)
    def test_round_trip_bit_exact(self, model_class, fitted_models,
                                  tmp_path):
        fitted = fitted_models[model_class]
        path = save_model(fitted, tmp_path / model_class,
                          model_class=model_class)
        loaded = load_model(path)
        assert loaded.model_class == model_class
        # Default saves stamp the minimum version their layout needs
        # (v1: everything in the npz), not the newest supported.
        assert loaded.schema_version == 1
        model = loaded.model
        assert model.phi.dtype == np.float64
        assert np.array_equal(model.phi, fitted.phi)
        assert np.array_equal(model.theta, fitted.theta)
        assert model.topic_labels == fitted.topic_labels
        assert model.vocabulary == fitted.vocabulary
        assert model.log_likelihoods == fitted.log_likelihoods
        assert len(model.assignments) == len(fitted.assignments)
        for a, b in zip(model.assignments, fitted.assignments):
            assert np.array_equal(a, b)
        _assert_metadata_equal(model.metadata, fitted.metadata)

    @pytest.mark.parametrize("model_class", MODEL_CLASSES)
    def test_manifest_hyperparameters(self, model_class, fitted_models,
                                      tmp_path):
        fitted = fitted_models[model_class]
        path = save_model(fitted, tmp_path / model_class)
        manifest = read_manifest(path)
        hyper = manifest["hyperparameters"]
        assert hyper["alpha"] == fitted.metadata["alpha"]
        for key, value in fitted.metadata.items():
            if isinstance(value, (bool, int, float, str)):
                assert hyper[key] == value, key
        assert manifest["num_topics"] == fitted.num_topics
        assert manifest["vocabulary"] == list(fitted.vocabulary.words)
        assert manifest["topic_labels"] == list(fitted.topic_labels)

    def test_snapshot_metadata_round_trips_int_keys(self, fitted_models,
                                                    tmp_path):
        fitted = fitted_models["SourceLDA"]
        loaded = load_model(save_model(fitted, tmp_path / "m"))
        snapshots = loaded.model.metadata["snapshots"]
        assert set(snapshots) == {1, 3}
        assert np.array_equal(snapshots[3],
                              fitted.metadata["snapshots"][3])

    def test_refuses_overwrite(self, fitted_models, tmp_path):
        fitted = fitted_models["LDA"]
        save_model(fitted, tmp_path / "m")
        with pytest.raises(ArtifactError, match="already exists"):
            save_model(fitted, tmp_path / "m")
        save_model(fitted, tmp_path / "m", overwrite=True)

    def test_rejects_unserializable_metadata(self, fitted_models,
                                             tmp_path):
        fitted = fitted_models["LDA"]
        bad = FittedTopicModel(
            phi=fitted.phi, theta=fitted.theta,
            assignments=fitted.assignments,
            vocabulary=fitted.vocabulary,
            metadata={"callback": lambda: None})
        with pytest.raises(ArtifactError, match="cannot serialize"):
            save_model(bad, tmp_path / "bad")

    def test_rejects_object_dtype_metadata_array(self, fitted_models,
                                                 tmp_path):
        """An object array would pickle on save but be unloadable."""
        fitted = fitted_models["LDA"]
        bad = FittedTopicModel(
            phi=fitted.phi, theta=fitted.theta,
            assignments=fitted.assignments,
            vocabulary=fitted.vocabulary,
            metadata={"ragged": np.asarray([[1, 2], [3]], dtype=object)})
        with pytest.raises(ArtifactError, match="object-dtype"):
            save_model(bad, tmp_path / "bad")


class TestMmapArtifacts:
    """Schema-v2 artifacts: the uncompressed, mappable phi member."""

    def _memmap_backed(self, array):
        base = array
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
        return False

    def test_v2_round_trip_bit_exact(self, fitted_models, tmp_path):
        fitted = fitted_models["SourceLDA"]
        path = save_model(fitted, tmp_path / "m", mmap_phi=True)
        assert (path / "phi_word_major.npy").is_file()
        loaded = load_model(path)
        assert loaded.schema_version == 2
        assert loaded.phi_path == path / "phi_word_major.npy"
        assert not loaded.phi_mmapped
        assert np.array_equal(loaded.model.phi, fitted.phi)
        assert np.array_equal(loaded.model.theta, fitted.theta)
        _assert_metadata_equal(loaded.model.metadata, fitted.metadata)

    def test_mmap_load_shares_the_file(self, fitted_models, tmp_path):
        fitted = fitted_models["LDA"]
        path = save_model(fitted, tmp_path / "m", mmap_phi=True)
        loaded = load_model(path, mmap_phi=True)
        assert loaded.phi_mmapped
        assert np.array_equal(loaded.model.phi, fitted.phi)
        assert self._memmap_backed(loaded.model.phi)
        # Two loads of the same artifact map the same file rather than
        # materializing two copies.
        again = load_model(path, mmap_phi=True)
        assert self._memmap_backed(again.model.phi)

    def test_mmap_request_on_v1_artifact_warns_and_falls_back(
            self, fitted_models, tmp_path):
        path = save_model(fitted_models["LDA"], tmp_path / "m")
        with pytest.warns(RuntimeWarning,
                          match="cannot be memory-mapped"):
            loaded = load_model(path, mmap_phi=True)
        assert not loaded.phi_mmapped
        assert loaded.phi_path is None
        assert np.array_equal(loaded.model.phi,
                              fitted_models["LDA"].phi)

    def test_overwrite_v2_with_v1_drops_stale_member(self, fitted_models,
                                                     tmp_path):
        fitted = fitted_models["LDA"]
        path = save_model(fitted, tmp_path / "m", mmap_phi=True)
        save_model(fitted, tmp_path / "m", overwrite=True)
        assert not (path / "phi_word_major.npy").exists()
        assert load_model(path).schema_version == 1

    def test_missing_phi_member_is_loud(self, fitted_models, tmp_path):
        path = save_model(fitted_models["LDA"], tmp_path / "m",
                          mmap_phi=True)
        (path / "phi_word_major.npy").unlink()
        with pytest.raises(ArtifactError, match="phi member missing"):
            load_model(path)

    def test_bad_phi_storage_manifest_is_rejected(self, fitted_models,
                                                  tmp_path):
        path = save_model(fitted_models["LDA"], tmp_path / "m",
                          mmap_phi=True)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["phi_storage"] = {"layout": "column_crazy"}
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="phi_storage"):
            load_model(path)

    def test_mmap_session_serves_identically_to_v1(self, fitted_models,
                                                   tmp_path):
        fitted = fitted_models["BijectiveSourceLDA"]
        v1 = load_model(save_model(fitted, tmp_path / "v1"))
        v2 = load_model(save_model(fitted, tmp_path / "v2",
                                   mmap_phi=True), mmap_phi=True)
        queries = [" ".join(fitted.vocabulary.words[:8])]
        theta_v1 = InferenceSession(v1, seed=4).theta(queries)
        theta_v2 = InferenceSession(v2, seed=4).theta(queries)
        assert np.array_equal(theta_v1, theta_v2)


class TestManifestValidation:
    def _saved(self, fitted_models, tmp_path):
        return save_model(fitted_models["LDA"], tmp_path / "m")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError, match="no artifact manifest"):
            load_model(tmp_path / "nowhere")

    def test_rejects_newer_schema_version(self, fitted_models, tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="newer than"):
            load_model(path)

    def test_rejects_invalid_schema_version(self, fitted_models,
                                            tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = "one"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="invalid schema_version"):
            load_model(path)

    def test_rejects_foreign_format(self, fitted_models, tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format"] = "someone/else"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError,
                           match=ARTIFACT_FORMAT.replace("/", ".")):
            load_model(path)

    def test_rejects_unparseable_manifest(self, fitted_models, tmp_path):
        path = self._saved(fitted_models, tmp_path)
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_model(path)

    def test_missing_metadata_entry_loads_empty(self, fitted_models,
                                                tmp_path):
        path = self._saved(fitted_models, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        del manifest["metadata"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        assert load_model(path).model.metadata == {}


class TestModelRegistry:
    def test_publish_resolve_versions(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        record1 = registry.publish("demo", fitted_models["LDA"],
                                   model_class="LDA")
        record2 = registry.publish("demo", fitted_models["EDA"],
                                   model_class="EDA")
        assert (record1.version, record2.version) == (1, 2)
        assert registry.versions("demo") == [1, 2]
        assert registry.names() == ["demo"]
        assert registry.resolve("demo").version == 2
        assert registry.resolve("demo", 1).path == record1.path
        assert registry.load("demo").model_class == "EDA"
        assert registry.load("demo", 1).model_class == "LDA"

    def test_unknown_name_and_version(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(KeyError, match="no versions"):
            registry.resolve("ghost")
        with pytest.raises(ValueError, match="invalid model name"):
            registry.publish("../escape", None)

    def test_missing_version(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        with pytest.raises(KeyError, match="no version 9"):
            registry.resolve("demo", 9)

    def test_republish_version_is_immutable(self, fitted_models,
                                            tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        with pytest.raises(ArtifactError, match="immutable"):
            registry.publish("demo", fitted_models["LDA"], version=1)

    def test_lru_cache_hits_and_eviction(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry", cache_size=2)
        for name in ("a", "b", "c"):
            registry.publish(name, fitted_models["LDA"])
        first = registry.load("a")
        assert registry.load("a") is first          # cache hit
        registry.load("b")
        registry.load("c")                          # evicts "a"
        assert registry.cached_keys == (("b", 1, False, "v1:npz"),
                                        ("c", 1, False, "v1:npz"))
        assert registry.load("a") is not first      # reloaded from disk
        registry.clear_cache()
        assert registry.cached_keys == ()

    def test_cache_disabled(self, fitted_models, tmp_path):
        registry = ModelRegistry(tmp_path / "registry", cache_size=0)
        registry.publish("demo", fitted_models["LDA"])
        assert registry.load("demo") is not registry.load("demo")

    def test_names_skips_clutter_directories(self, fitted_models,
                                             tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        (tmp_path / "registry" / ".cache").mkdir()
        (tmp_path / "registry" / "not a model!").mkdir()
        assert registry.names() == ["demo"]

    def test_publish_mmap_artifact_and_cache_flavors(self, fitted_models,
                                                     tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish("demo", fitted_models["LDA"],
                                  mmap_phi=True)
        assert (record.path / "phi_word_major.npy").is_file()
        plain = registry.load("demo")
        mapped = registry.load("demo", mmap_phi=True)
        assert plain is registry.load("demo")
        assert mapped is registry.load("demo", mmap_phi=True)
        assert plain is not mapped
        assert mapped.phi_mmapped
        assert registry.cached_keys == (
            ("demo", 1, False, "v2:word_major"),
            ("demo", 1, True, "v2:word_major"))


class TestRegistryConcurrentPublish:
    """The scan-then-write race: versions must be claimed atomically."""

    def test_publish_skips_versions_claimed_by_others(self, fitted_models,
                                                      tmp_path):
        """A claim directory without a manifest — a concurrent publisher
        mid-save, or a crashed one — must never be overwritten."""
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("demo", fitted_models["LDA"])
        # Simulate a second publisher that claimed v2 and has not yet
        # (or will never) finish writing.
        claim = tmp_path / "registry" / "demo" / "v2"
        claim.mkdir()
        record = registry.publish("demo", fitted_models["EDA"])
        assert record.version == 3
        assert not (claim / "manifest.json").exists()
        # The dead claim is invisible to readers.
        assert registry.versions("demo") == [1, 3]
        assert registry.resolve("demo").version == 3

    def test_failed_save_releases_its_claim(self, fitted_models,
                                            tmp_path):
        """A publish whose save_model raises must not wedge the version
        number on an empty claim directory."""
        registry = ModelRegistry(tmp_path / "registry")
        bad = FittedTopicModel(
            phi=fitted_models["LDA"].phi,
            theta=fitted_models["LDA"].theta,
            assignments=fitted_models["LDA"].assignments,
            vocabulary=fitted_models["LDA"].vocabulary,
            metadata={"callback": lambda: None})  # unserializable
        with pytest.raises(ArtifactError, match="cannot serialize"):
            registry.publish("demo", bad, version=1)
        assert not (tmp_path / "registry" / "demo" / "v1").exists()
        # The number is free again for a good publish.
        assert registry.publish("demo", fitted_models["LDA"],
                                version=1).version == 1

    def test_explicit_version_claim_collision_is_loud(self, fitted_models,
                                                      tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        (tmp_path / "registry" / "demo").mkdir(parents=True)
        (tmp_path / "registry" / "demo" / "v1").mkdir()
        with pytest.raises(ArtifactError, match="immutable"):
            registry.publish("demo", fitted_models["LDA"], version=1)

    def test_interleaved_publishers_never_overwrite(self, fitted_models,
                                                    tmp_path):
        """Two publishers hammering one name from two threads: every
        publish gets a distinct version and every artifact survives."""
        from concurrent.futures import ThreadPoolExecutor

        registry_a = ModelRegistry(tmp_path / "registry")
        registry_b = ModelRegistry(tmp_path / "registry")
        per_publisher = 6

        def publish_many(registry, model_class):
            return [registry.publish("demo",
                                     fitted_models[model_class],
                                     model_class=model_class).version
                    for _ in range(per_publisher)]

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(publish_many, registry_a, "LDA"),
                       pool.submit(publish_many, registry_b, "EDA")]
            versions_a, versions_b = [f.result() for f in futures]
        claimed = sorted(versions_a + versions_b)
        assert claimed == list(range(1, 2 * per_publisher + 1))
        assert registry_a.versions("demo") == claimed
        # Each version still carries the class its publisher wrote —
        # nobody's artifact was clobbered by the other publisher.
        for version in versions_a:
            assert registry_a.manifest("demo", version)["model_class"] \
                == "LDA"
        for version in versions_b:
            assert registry_a.manifest("demo", version)["model_class"] \
                == "EDA"


# ----------------------------------------------------------------------
# Fold-in engine
# ----------------------------------------------------------------------
def _legacy_heldout_gibbs_theta(phi, corpus, alpha, iterations=30,
                                rng=None):
    """The pre-serving per-token loop, verbatim — the seed-pin oracle."""
    phi = validate_phi(phi)
    rng = ensure_rng(rng)
    num_topics = phi.shape[0]
    theta = np.empty((len(corpus), num_topics))
    for index, doc in enumerate(corpus):
        length = len(doc)
        if length == 0:
            theta[index] = 1.0 / num_topics
            continue
        assignments = rng.integers(0, num_topics, size=length)
        doc_counts = np.bincount(assignments, minlength=num_topics) \
            .astype(np.float64)
        word_probs = phi[:, doc.word_ids].T
        burn_in = min(max(1, iterations // 2), iterations - 1)
        accumulated = np.zeros(num_topics)
        samples = 0
        for iteration in range(iterations):
            for position in range(length):
                topic = assignments[position]
                doc_counts[topic] -= 1.0
                weights = word_probs[position] * (doc_counts + alpha)
                topic = categorical(weights, rng)
                assignments[position] = topic
                doc_counts[topic] += 1.0
            if iteration >= burn_in:
                accumulated += doc_counts
                samples += 1
        mean_counts = accumulated / max(samples, 1)
        theta[index] = (mean_counts + alpha) / (length
                                                + num_topics * alpha)
    return theta


@pytest.fixture
def foldin_phi_and_corpus():
    rng = np.random.default_rng(11)
    num_topics, vocab_size = 6, 30
    phi = rng.dirichlet(np.full(vocab_size, 0.4), size=num_topics)
    vocab = Vocabulary(f"w{i}" for i in range(vocab_size))
    id_lists = [rng.integers(0, vocab_size, size=n).tolist()
                for n in (14, 0, 25, 1, 9)]
    return phi, Corpus.from_word_id_lists(id_lists, vocab)


class TestFoldInEngine:
    @pytest.mark.parametrize("iterations", [1, 2, 7, 30])
    def test_exact_lane_seed_pinned_to_legacy(self, iterations,
                                              foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        expected = _legacy_heldout_gibbs_theta(
            phi, corpus, alpha=0.4, iterations=iterations, rng=99)
        via_metric = heldout_gibbs_theta(
            phi, corpus, alpha=0.4, iterations=iterations, rng=99)
        engine = FoldInEngine(phi, alpha=0.4, iterations=iterations)
        direct = engine.theta([doc.word_ids for doc in corpus], rng=99)
        assert np.array_equal(expected, via_metric)
        assert np.array_equal(expected, direct)

    def test_batch_size_does_not_change_draws(self,
                                              foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        small = FoldInEngine(phi, 0.4, iterations=5, batch_size=1)
        large = FoldInEngine(phi, 0.4, iterations=5, batch_size=64)
        assert np.array_equal(small.theta(docs, rng=5),
                              large.theta(docs, rng=5))

    def test_engine_reuse_matches_fresh_engine(self,
                                               foldin_phi_and_corpus):
        """Buffer reuse across calls must not leak state between them."""
        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        engine = FoldInEngine(phi, 0.4, iterations=5)
        first = engine.theta(docs, rng=5)
        again = engine.theta(docs, rng=5)
        assert np.array_equal(first, again)

    def test_sparse_lane_valid_and_close_to_exact(self,
                                                  foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        sparse = FoldInEngine(phi, 0.4, iterations=200, mode="sparse")
        exact = FoldInEngine(phi, 0.4, iterations=200, mode="exact")
        theta_sparse = sparse.theta(docs, rng=1)
        theta_exact = exact.theta(docs, rng=1)
        np.testing.assert_allclose(theta_sparse.sum(axis=1), 1.0)
        assert np.all(theta_sparse > 0)
        # Same conditional distribution, different draw association: the
        # long-run averages agree to sampling noise.
        assert np.abs(theta_sparse - theta_exact).max() < 0.12

    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    def test_theta_is_reentrant_across_threads(self, mode,
                                               foldin_phi_and_corpus):
        """Two threads hammering ONE engine must each get the
        single-threaded answer.

        Before the scratch split, `_work`/`_cumulative`/`_accumulated`/
        `_gather` and the sparse lane's TopicSet lived on the engine, so
        concurrent callers silently corrupted each other's theta.
        """
        from concurrent.futures import ThreadPoolExecutor

        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        engine = FoldInEngine(phi, 0.4, iterations=8, mode=mode)
        seeds = list(range(24))
        expected = {seed: engine.theta(docs, rng=seed) for seed in seeds}
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [(seed, pool.submit(engine.theta, docs, seed))
                       for seed in seeds * 4]
            for seed, future in futures:
                assert np.array_equal(future.result(), expected[seed]), \
                    f"seed {seed} corrupted under concurrency"

    def test_theta_document_matches_scratch_sharing(self,
                                                    foldin_phi_and_corpus):
        """A caller-provided scratch reused across documents gives the
        same bits as fresh per-call scratches."""
        from repro.sampling.rng import document_rng, ensure_seed_sequence

        phi, corpus = foldin_phi_and_corpus
        docs = [doc.word_ids for doc in corpus]
        root = ensure_seed_sequence(3)
        for mode in ("exact", "sparse"):
            engine = FoldInEngine(phi, 0.4, iterations=5, mode=mode)
            scratch = engine.new_scratch()
            shared = [engine.theta_document(doc, document_rng(root, i),
                                            scratch)
                      for i, doc in enumerate(docs)]
            fresh = [engine.theta_document(doc, document_rng(root, i))
                     for i, doc in enumerate(docs)]
            assert np.array_equal(np.asarray(shared), np.asarray(fresh))

    def test_empty_document_is_uniform_prior(self,
                                             foldin_phi_and_corpus):
        phi, corpus = foldin_phi_and_corpus
        for mode in ("exact", "sparse"):
            engine = FoldInEngine(phi, 0.4, mode=mode)
            theta = engine.theta([np.empty(0, dtype=np.int64)], rng=0)
            np.testing.assert_allclose(theta[0], 1.0 / phi.shape[0])

    def test_validation_errors(self, foldin_phi_and_corpus):
        phi, _ = foldin_phi_and_corpus
        with pytest.raises(ValueError, match="alpha"):
            FoldInEngine(phi, alpha=0.0)
        with pytest.raises(ValueError, match="iterations"):
            FoldInEngine(phi, 0.4, iterations=0)
        with pytest.raises(ValueError, match="mode"):
            FoldInEngine(phi, 0.4, mode="warp")
        with pytest.raises(ValueError, match="batch_size"):
            FoldInEngine(phi, 0.4, batch_size=0)
        with pytest.raises(ValueError, match="rows must sum"):
            FoldInEngine(np.full((2, 4), 0.5), 0.4)
        engine = FoldInEngine(phi, 0.4)
        with pytest.raises(ValueError, match="outside the model"):
            engine.theta([np.asarray([10_000])], rng=0)


# ----------------------------------------------------------------------
# Inference sessions
# ----------------------------------------------------------------------
class TestInferenceSession:
    @pytest.fixture(scope="class")
    def session_model(self, fitted_models):
        return fitted_models["BijectiveSourceLDA"]

    def test_serves_raw_text_batches(self, session_model):
        session = InferenceSession(session_model, iterations=20, seed=0)
        vocab_words = session.vocabulary.words
        queries = [" ".join(vocab_words[:6]),
                   " ".join(vocab_words[6:10])]
        result = session.infer(queries)
        assert result.theta.shape == (2, session.num_topics)
        np.testing.assert_allclose(result.theta.sum(axis=1), 1.0)
        assert result.num_tokens.tolist() == [6, 4]
        assert result.num_oov.tolist() == [0, 0]

    def test_oov_ignore_counts_and_uniform_fallback(self, session_model):
        session = InferenceSession(session_model, seed=0)
        known = session.vocabulary.words[0]
        result = session.infer([f"{known} zzz-unknown qqq-unknown",
                                "zzz-unknown qqq-unknown",
                                ""])
        assert result.num_oov.tolist() == [2, 2, 0]
        assert result.num_tokens.tolist() == [1, 0, 0]
        # OOV-only and empty documents fall back to the uniform prior.
        np.testing.assert_allclose(result.theta[1],
                                   1.0 / session.num_topics)
        np.testing.assert_allclose(result.theta[2],
                                   1.0 / session.num_topics)

    def test_oov_error_policy(self, session_model):
        session = InferenceSession(session_model, oov="error", seed=0)
        with pytest.raises(KeyError, match="zzz-unknown"):
            session.infer(["zzz-unknown"])

    def test_pretokenized_input(self, session_model):
        session = InferenceSession(session_model, seed=0)
        tokens = list(session.vocabulary.words[:5])
        result = session.infer([tokens])
        assert result.num_tokens.tolist() == [5]

    def test_top_topics_and_labels(self, session_model):
        session = InferenceSession(session_model, iterations=20, seed=0)
        labels = session_model.topic_labels
        # Query text drawn from one topic's most probable words should
        # rank that topic first.
        topic = 2
        words = [session.vocabulary.word(int(i))
                 for i in session_model.top_word_ids(topic, 8)]
        scores = session.top_topics([" ".join(words * 3)], top_n=3)[0]
        assert len(scores) == 3
        assert scores[0].topic == topic
        assert scores[0].label == labels[topic]
        assert scores[0].probability >= scores[1].probability
        assert session.top_labels([" ".join(words * 3)]) \
            == [labels[topic]]

    def test_ranking_from_result_reuses_theta(self, session_model):
        """Passing an InferenceResult ranks without re-sampling, so the
        labels are consistent with the theta the caller holds."""
        session = InferenceSession(session_model, iterations=10, seed=0)
        words = session.vocabulary.words
        result = session.infer([" ".join(words[:6]),
                                " ".join(words[6:12])])
        scores = session.top_topics(result, top_n=1)
        for row, (top,) in zip(result.theta, scores):
            assert top.topic == int(np.argmax(row))
            assert top.probability == float(row.max())
        # Same via a bare theta array, and stable across repeat calls.
        assert session.top_topics(result.theta, top_n=1) == scores
        assert session.top_topics(result, top_n=1) == scores
        with pytest.raises(ValueError, match="theta must have shape"):
            session.top_topics(np.zeros((2, 3)))

    def test_top_labels_none_for_unlabeled_model(self, fitted_models):
        session = InferenceSession(fitted_models["LDA"], seed=0)
        word = session.vocabulary.words[0]
        assert session.top_labels([word]) == [None]

    def test_session_from_loaded_model_matches_fitted(self, fitted_models,
                                                      tmp_path):
        fitted = fitted_models["BijectiveSourceLDA"]
        loaded = load_model(save_model(fitted, tmp_path / "m"))
        queries = [" ".join(fitted.vocabulary.words[:8])]
        theta_fitted = InferenceSession(fitted, seed=4).theta(queries)
        theta_loaded = InferenceSession(loaded, seed=4).theta(queries)
        assert np.array_equal(theta_fitted, theta_loaded)

    def test_alpha_defaults_to_fit_metadata(self, session_model):
        session = InferenceSession(session_model)
        assert session.alpha == session_model.metadata["alpha"]

    def _with_alpha(self, model, recorded):
        metadata = dict(model.metadata)
        if recorded is _ABSENT:
            metadata.pop("alpha", None)
        else:
            metadata["alpha"] = recorded
        return FittedTopicModel(
            phi=model.phi, theta=model.theta,
            assignments=model.assignments, vocabulary=model.vocabulary,
            topic_labels=model.topic_labels, metadata=metadata)

    def test_alpha_recovery_rejects_bools(self, session_model):
        """``metadata["alpha"] = True`` used to sail through the
        ``isinstance(..., (int, float))`` check as alpha = 1.0."""
        for bad in (True, np.True_):
            with pytest.warns(RuntimeWarning, match="unusable alpha"):
                session = InferenceSession(
                    self._with_alpha(session_model, bad))
            assert session.alpha == 50.0 / session.num_topics

    def test_alpha_recovery_accepts_numpy_scalars(self, session_model):
        for recorded, expected in ((np.float32(0.25), 0.25),
                                   (np.float64(0.7), 0.7),
                                   (np.int64(2), 2.0)):
            session = InferenceSession(
                self._with_alpha(session_model, recorded))
            assert session.alpha == pytest.approx(expected)

    def test_alpha_recovery_warns_on_fallback(self, session_model):
        for bad in ("high", -1.0, 0.0, float("nan"), float("inf")):
            with pytest.warns(RuntimeWarning, match="unusable alpha"):
                session = InferenceSession(
                    self._with_alpha(session_model, bad))
            assert session.alpha == 50.0 / session.num_topics

    def test_alpha_absent_falls_back_silently(self, session_model):
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            session = InferenceSession(
                self._with_alpha(session_model, _ABSENT))
        assert session.alpha == 50.0 / session.num_topics

    def test_invalid_arguments(self, session_model):
        with pytest.raises(ValueError, match="oov"):
            InferenceSession(session_model, oov="explode")
        with pytest.raises(TypeError, match="FittedTopicModel"):
            InferenceSession("not a model")

    def test_bare_string_batch_rejected(self, session_model):
        session = InferenceSession(session_model, seed=0)
        with pytest.raises(TypeError, match="bare string"):
            session.infer("a single query passed without a list")
