"""Tests for worker-sharded serving: per-document RNG streams, the
process pool, alias-table prior draws, and end-to-end determinism."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.sampling.alias import (alias_draw, build_alias_rows,
                                  build_alias_table)
from repro.sampling.rng import (document_rng, document_seed_sequence,
                                ensure_seed_sequence)
from repro.serving import (EngineSpec, FoldInEngine, HedgePolicy,
                           InferenceSession, ParallelFoldIn, WorkerFault,
                           load_model, save_model)
from repro.text.vocabulary import Vocabulary

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def frozen_phi():
    rng = np.random.default_rng(11)
    return rng.dirichlet(np.full(30, 0.4), size=6)


@pytest.fixture(scope="module")
def query_docs():
    rng = np.random.default_rng(3)
    return [rng.integers(0, 30, size=n)
            for n in (14, 0, 25, 1, 9, 17, 0, 6)]


# ----------------------------------------------------------------------
# Per-document seed sequences
# ----------------------------------------------------------------------
class TestDocumentStreams:
    def test_matches_seed_sequence_spawn(self):
        """`document_seed_sequence` is the stateless twin of
        `SeedSequence.spawn`: same children, any derivation order."""
        root = np.random.SeedSequence(42)
        spawned = np.random.SeedSequence(42).spawn(5)
        for index in (4, 0, 2, 3, 1):  # deliberately out of order
            direct = document_seed_sequence(root, index)
            assert direct.entropy == spawned[index].entropy
            assert direct.spawn_key == spawned[index].spawn_key
            assert np.array_equal(
                np.random.default_rng(direct).random(8),
                np.random.default_rng(spawned[index]).random(8))

    def test_streams_are_distinct_per_document(self):
        root = ensure_seed_sequence(7)
        draws = [document_rng(root, i).random(4) for i in range(6)]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_ensure_seed_sequence_flavors(self):
        sequence = np.random.SeedSequence(1)
        assert ensure_seed_sequence(sequence) is sequence
        assert ensure_seed_sequence(5).entropy == 5
        # A Generator is consumed for entropy — deterministically.
        a = ensure_seed_sequence(np.random.default_rng(3))
        b = ensure_seed_sequence(np.random.default_rng(3))
        assert a.entropy == b.entropy
        assert ensure_seed_sequence(None).entropy is not None
        with pytest.raises(ValueError, match="non-negative"):
            document_seed_sequence(sequence, -1)


# ----------------------------------------------------------------------
# Walker alias tables
# ----------------------------------------------------------------------
class TestAliasTables:
    def test_table_reproduces_weights_exactly(self):
        """Cell acceptance masses must reassemble the normalized
        weights: p[k] = (accept[k] + sum of alias mass pointed at k)/n."""
        rng = np.random.default_rng(0)
        weights = rng.random(17) * np.asarray(
            [0, 1] * 8 + [1])  # include zeros
        accept, alias = build_alias_table(weights)
        n = weights.shape[0]
        rebuilt = accept.copy()
        for cell in range(n):
            rebuilt[alias[cell]] += 1.0 - accept[cell]
        np.testing.assert_allclose(rebuilt / n,
                                   weights / weights.sum(), atol=1e-12)

    def test_zero_row_is_poisoned(self):
        accept, alias = build_alias_table(np.zeros(4))
        assert np.all(accept == -1.0)
        with pytest.raises(ValueError, match="all-zero"):
            alias_draw(accept, alias, 0.5)

    def test_invalid_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            build_alias_table(np.asarray([1.0, -0.5]))
        with pytest.raises(ValueError, match="non-empty"):
            build_alias_table(np.empty(0))
        with pytest.raises(ValueError, match="2-d"):
            build_alias_rows(np.ones(3))

    def test_draws_match_binary_search_lane_chi_squared(self, frozen_phi):
        """Alias-table prior draws follow the same distribution as the
        binary search over the per-word cumulative sum they replaced."""
        word_major = np.ascontiguousarray(frozen_phi.T)
        accept, alias = build_alias_rows(word_major)
        cumsums = np.cumsum(word_major, axis=1)
        rng = np.random.default_rng(99)
        num_draws = 20_000
        num_topics = frozen_phi.shape[0]
        for word in (0, 7, 29):
            uniforms = rng.random(num_draws)
            alias_topics = np.asarray(
                [alias_draw(accept[word], alias[word], u)
                 for u in uniforms])
            search_topics = np.searchsorted(
                cumsums[word], uniforms * cumsums[word, -1],
                side="right")
            expected = word_major[word] / word_major[word].sum()
            alias_counts = np.bincount(alias_topics,
                                       minlength=num_topics)
            search_counts = np.bincount(search_topics,
                                        minlength=num_topics)
            keep = expected * num_draws >= 5  # chi-squared validity
            for counts in (alias_counts, search_counts):
                result = stats.chisquare(
                    counts[keep],
                    expected[keep] / expected[keep].sum()
                    * counts[keep].sum())
                assert result.pvalue > 1e-3, (word, result)


# ----------------------------------------------------------------------
# Worker-sharded fold-in
# ----------------------------------------------------------------------
class TestParallelFoldIn:
    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    def test_bit_identical_at_every_worker_count(self, mode, frozen_phi,
                                                 query_docs):
        engine = FoldInEngine(frozen_phi, 0.4, iterations=6, mode=mode)
        reference = None
        for workers in WORKER_COUNTS:
            with ParallelFoldIn(engine, num_workers=workers) as foldin:
                theta = foldin.theta(query_docs, seed=17)
            if reference is None:
                reference = theta
            else:
                assert np.array_equal(reference, theta), \
                    f"{mode} diverged at num_workers={workers}"
        np.testing.assert_allclose(reference.sum(axis=1), 1.0)
        # Empty documents got the uniform row.
        np.testing.assert_allclose(reference[1],
                                   1.0 / frozen_phi.shape[0])

    def test_independent_of_document_order_coupling(self, frozen_phi,
                                                    query_docs):
        """Each document's row depends only on (seed, index, words):
        repeating a call never perturbs it, unlike the legacy
        sequential stream where every document shifted its successors."""
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        foldin = ParallelFoldIn(engine, num_workers=1)
        full = foldin.theta(query_docs, seed=8)
        again = foldin.theta(query_docs, seed=8)
        assert np.array_equal(full, again)

    def test_seed_flavors_agree(self, frozen_phi, query_docs):
        engine = FoldInEngine(frozen_phi, 0.4, iterations=4,
                              mode="sparse")
        foldin = ParallelFoldIn(engine, num_workers=1)
        by_int = foldin.theta(query_docs, seed=23)
        by_sequence = foldin.theta(query_docs,
                                   seed=np.random.SeedSequence(23))
        assert np.array_equal(by_int, by_sequence)

    def test_invalid_arguments(self, frozen_phi):
        engine = FoldInEngine(frozen_phi, 0.4)
        with pytest.raises(ValueError, match="num_workers"):
            ParallelFoldIn(engine, num_workers=0)
        with pytest.raises(ValueError, match="exactly one"):
            EngineSpec(alpha=0.4, iterations=5, mode="sparse")
        with pytest.raises(ValueError, match="exactly one"):
            EngineSpec(alpha=0.4, iterations=5, mode="sparse",
                       phi=np.ones((2, 2)), phi_path="somewhere.npy")

    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    def test_inline_theta_is_reentrant_across_threads(self, mode,
                                                      frozen_phi,
                                                      query_docs):
        """Two threads hammering ONE ParallelFoldIn's inline
        (workers == 1) path must each get the single-threaded answer.

        The inline path reuses a scratch across calls; before it was
        per-thread, both threads wrote the same sampling buffers and
        silently corrupted each other's theta — the engine-level fix
        was bypassed exactly where sessions default to running.
        """
        from concurrent.futures import ThreadPoolExecutor

        engine = FoldInEngine(frozen_phi, 0.4, iterations=6, mode=mode)
        foldin = ParallelFoldIn(engine, num_workers=1)
        seeds = list(range(12))
        expected = {seed: foldin.theta(query_docs, seed=seed)
                    for seed in seeds}
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [(seed, pool.submit(foldin.theta, query_docs,
                                          seed))
                       for seed in seeds * 4]
            for seed, future in futures:
                assert np.array_equal(future.result(), expected[seed]), \
                    f"seed {seed} corrupted under concurrency"

    def test_pool_context_avoids_fork_in_threaded_parent(self,
                                                         monkeypatch):
        """Forking a multi-threaded parent is deadlock-prone; a
        threaded parent must get a non-fork start method."""
        import sys

        from repro.serving import parallel

        monkeypatch.setattr(parallel.threading, "active_count",
                            lambda: 3)
        assert parallel._pool_context().get_start_method() != "fork"
        monkeypatch.setattr(parallel.threading, "active_count",
                            lambda: 1)
        method = parallel._pool_context().get_start_method()
        if sys.version_info >= (3, 11) and sys.platform != "win32":
            # Only 3.11+ launches every fork worker at the first
            # (locked) submit; older executors fork incrementally and
            # must not get fork even when single-threaded.
            assert method == "fork"
        else:
            assert method != "fork"

    def test_warm_up_spawns_the_pool_before_queries(self, frozen_phi,
                                                    query_docs):
        """warm_up() forks the workers at a chosen safe moment; later
        queries reuse that pool and answer identically."""
        engine = FoldInEngine(frozen_phi, 0.4, iterations=3,
                              mode="sparse")
        with ParallelFoldIn(engine, num_workers=2) as foldin:
            assert foldin.warm_up() is foldin
            assert foldin._pool is not None
            warm = foldin.theta(query_docs, seed=4)
        cold = ParallelFoldIn(engine, num_workers=2)
        assert np.array_equal(warm, cold.theta(query_docs, seed=4))
        cold.close()

    def test_phi_path_must_match_the_mapped_file(self, frozen_phi,
                                                 tmp_path):
        """Workers are handed phi_path only when the parent engine is
        mapping that very file — a path to a *different* artifact (or
        an engine serving a private renormalized copy) must ship the
        parent's array instead, or workers would silently serve
        different phi than the inline path."""
        word_major = np.ascontiguousarray(frozen_phi.T)
        for name in ("a.npy", "b.npy"):
            np.save(tmp_path / name, word_major)
        mapped = np.load(tmp_path / "a.npy", mmap_mode="r")
        engine = FoldInEngine(mapped.T, 0.4, validate=False)
        same = ParallelFoldIn(engine, phi_path=tmp_path / "a.npy")
        assert same._spec.phi_path is not None
        foreign = ParallelFoldIn(engine, phi_path=tmp_path / "b.npy")
        assert foreign._spec.phi_path is None
        assert foreign._spec.phi is not None

    def test_close_during_concurrent_theta_is_safe(self, frozen_phi,
                                                   query_docs):
        """close() racing in-flight multi-worker theta calls must
        neither crash them ('cannot schedule new futures after
        shutdown') nor leak a pool: submission happens under the same
        lock that swaps the pool out, and shutdown drains already
        submitted shards."""
        from concurrent.futures import ThreadPoolExecutor

        engine = FoldInEngine(frozen_phi, 0.4, iterations=3,
                              mode="sparse")
        foldin = ParallelFoldIn(engine, num_workers=2)
        expected = foldin.theta(query_docs, seed=6)
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(foldin.theta, query_docs, 6)
                       for _ in range(6)]
            for _ in range(3):
                foldin.close()
            for future in futures:
                assert np.array_equal(future.result(), expected)
        foldin.close()

    def test_engine_spec_rebuilds_identical_engine(self, frozen_phi,
                                                   query_docs):
        """What a worker builds from the spec answers exactly like the
        parent engine."""
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        spec = EngineSpec(alpha=engine.alpha,
                          iterations=engine.iterations,
                          mode=engine.mode, phi=engine._phi_by_word)
        rebuilt = spec.build_engine()
        root = ensure_seed_sequence(5)
        for index, doc in enumerate(query_docs):
            assert np.array_equal(
                engine.theta_document(doc, document_rng(root, index)),
                rebuilt.theta_document(doc, document_rng(root, index)))


# ----------------------------------------------------------------------
# Per-worker utilization stats
# ----------------------------------------------------------------------
class TestWorkerUtilization:
    def test_merged_stats_are_invariant_to_worker_count(self,
                                                        frozen_phi,
                                                        query_docs):
        """Workers report ``{docs, tokens, busy_seconds}`` per task and
        the parent merges them into per-worker counter series; however
        the documents are sharded, the merged docs/tokens totals must
        equal the single-worker totals (and theta must not move)."""
        from repro.telemetry import InMemoryRecorder

        totals = {}
        reference = None
        for workers in WORKER_COUNTS:
            recorder = InMemoryRecorder()
            engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                                  mode="sparse")
            with ParallelFoldIn(engine, num_workers=workers,
                                recorder=recorder) as foldin:
                theta = foldin.theta(query_docs, seed=12)
            if reference is None:
                reference = theta
            else:
                assert np.array_equal(reference, theta), workers
            totals[workers] = {
                "docs": recorder.counter_total("serving.worker.docs"),
                "tokens": recorder.counter_total(
                    "serving.worker.tokens"),
            }
            busy = recorder.counter_series(
                "serving.worker.busy_seconds")
            assert busy, workers
            assert len(busy) <= workers
            assert all(seconds >= 0 for seconds in busy.values())
            # The shared fold-in totals mirror the per-worker sums:
            # merging happens once, in the parent, with no double
            # counting from worker-side recorders.
            assert recorder.counter_value("serving.foldin.documents") \
                == totals[workers]["docs"]
            assert recorder.counter_value("serving.foldin.tokens") \
                == totals[workers]["tokens"]
        single = totals[WORKER_COUNTS[0]]
        assert single["docs"] == sum(1 for d in query_docs if len(d))
        assert single["tokens"] == sum(len(d) for d in query_docs)
        for workers in WORKER_COUNTS[1:]:
            assert totals[workers] == single, workers


# ----------------------------------------------------------------------
# Elastic work-stealing dispatch and hedged recomputation
# ----------------------------------------------------------------------
class TestElasticHedgedServing:
    """Theta is a pure function of (seed, index, words) — so no
    scheduling decision (task size, hedging, stragglers, pool resizes)
    may move a single bit."""

    def _reference(self, frozen_phi, query_docs, seed):
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        return ParallelFoldIn(engine).theta(query_docs, seed=seed)

    @pytest.mark.parametrize("task_docs", [1, 2, 7, 64])
    def test_bit_identical_across_task_sizes(self, task_docs,
                                             frozen_phi, query_docs):
        """The micro-batch cut (one doc per task up to one task for
        everything) is invisible in the output."""
        expected = self._reference(frozen_phi, query_docs, seed=31)
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        with ParallelFoldIn(engine, num_workers=2,
                            task_docs=task_docs) as foldin:
            assert np.array_equal(foldin.theta(query_docs, seed=31),
                                  expected), task_docs

    @pytest.mark.parametrize("workers", [2, 4])
    def test_hedged_straggler_is_bit_identical(self, workers,
                                               frozen_phi, query_docs):
        """An injected straggler plus an aggressive hedge: duplicates
        are issued, first result wins, theta does not move, and the
        wasted work is priced on the hedge counters."""
        from repro.telemetry import InMemoryRecorder

        expected = self._reference(frozen_phi, query_docs, seed=13)
        recorder = InMemoryRecorder()
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        with ParallelFoldIn(
                engine, num_workers=workers, task_docs=1,
                hedge=HedgePolicy(quantile=0.5, multiplier=2.0,
                                  min_wait=0.01, max_hedges=2),
                fault=WorkerFault(sleep_seconds=0.08, rank=0),
                recorder=recorder) as foldin:
            foldin.warm_up()
            theta = foldin.theta(query_docs, seed=13)
        assert np.array_equal(theta, expected), workers
        issued = recorder.counter_total("serving.hedge.issued")
        won = recorder.counter_total("serving.hedge.won")
        assert issued >= 1, "straggler never triggered a hedge"
        assert 0 <= won <= issued
        # Losers never reach the merge: the shared fold-in totals still
        # count every document exactly once.
        assert recorder.counter_value("serving.foldin.documents") \
            == sum(1 for d in query_docs if len(d))
        assert recorder.counter_value("serving.foldin.tokens") \
            == sum(len(d) for d in query_docs)

    def test_hedging_off_with_straggler_stays_identical(self,
                                                        frozen_phi,
                                                        query_docs):
        """hedge=None is the pre-hedging scheduler: it just waits out
        the straggler, issues nothing, and serves the same bits."""
        from repro.telemetry import InMemoryRecorder

        expected = self._reference(frozen_phi, query_docs, seed=13)
        recorder = InMemoryRecorder()
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        with ParallelFoldIn(
                engine, num_workers=2, task_docs=1,
                fault=WorkerFault(sleep_seconds=0.05, rank=0),
                recorder=recorder) as foldin:
            theta = foldin.theta(query_docs, seed=13)
        assert np.array_equal(theta, expected)
        assert recorder.counter_total("serving.hedge.issued") == 0
        assert recorder.counter_total("serving.hedge.won") == 0

    def test_elastic_resize_mid_sequence(self, frozen_phi, query_docs):
        """A demand swing (wide batch, several narrow ones, wide again)
        forces a grow, a patient shrink, and a regrow — every answer
        bit-identical to the inline reference."""
        from repro.telemetry import InMemoryRecorder

        recorder = InMemoryRecorder()
        engine = FoldInEngine(frozen_phi, 0.4, iterations=5,
                              mode="sparse")
        reference = ParallelFoldIn(FoldInEngine(
            frozen_phi, 0.4, iterations=5, mode="sparse"))
        # >= 2 pending docs everywhere: a single-doc batch takes the
        # inline path and would not exercise the pool at all.
        pattern = [query_docs, query_docs[:3], query_docs[2:5],
                   query_docs[3:6], query_docs]
        with ParallelFoldIn(engine, num_workers=1, min_workers=1,
                            max_workers=4, task_docs=1,
                            recorder=recorder) as foldin:
            for index, docs in enumerate(pattern):
                assert np.array_equal(
                    foldin.theta(docs, seed=100 + index),
                    reference.theta(docs, seed=100 + index)), index
        assert recorder.counter_total("serving.pool.grown") >= 1
        assert recorder.counter_total("serving.pool.shrunk") >= 1

    def test_session_forwards_elastic_knobs(self, frozen_phi,
                                            query_docs):
        """The session surface (task_docs / hedge_policy / min / max
        workers) is plumbing only — same seed, same theta as a plain
        session."""
        from repro.models.base import FittedTopicModel

        num_topics, vocab_size = frozen_phi.shape
        vocab = Vocabulary(f"w{i}" for i in range(vocab_size))
        vocab.freeze()
        rng = np.random.default_rng(5)
        model = FittedTopicModel(
            phi=frozen_phi,
            theta=rng.dirichlet(np.full(num_topics, 0.5), size=2),
            assignments=[rng.integers(0, num_topics, size=4)
                         for _ in range(2)],
            vocabulary=vocab,
            metadata={"alpha": 0.4})
        queries = [" ".join(vocab.words[i]
                            for i in rng.integers(0, vocab_size,
                                                  size=10))
                   for _ in range(6)]
        with InferenceSession(model, iterations=5, seed=2) as session:
            expected = session.theta(queries)
        with InferenceSession(
                model, iterations=5, seed=2, num_workers=2,
                task_docs=2, min_workers=1, max_workers=4,
                hedge_policy=HedgePolicy(min_wait=0.01)) as session:
            assert session._foldin.task_docs == 2
            assert session._foldin.hedge is not None
            assert session._foldin.max_workers == 4
            assert np.array_equal(session.theta(queries), expected)

    def test_validation(self, frozen_phi):
        engine = FoldInEngine(frozen_phi, 0.4)
        with pytest.raises(ValueError, match="quantile"):
            HedgePolicy(quantile=1.5)
        with pytest.raises(ValueError, match="multiplier"):
            HedgePolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="min_wait"):
            HedgePolicy(min_wait=-0.1)
        with pytest.raises(ValueError, match="max_hedges"):
            HedgePolicy(max_hedges=0)
        with pytest.raises(ValueError, match="sleep_seconds"):
            WorkerFault(sleep_seconds=-1.0)
        with pytest.raises(ValueError, match="rank"):
            WorkerFault(sleep_seconds=0.1, rank=-1)
        with pytest.raises(ValueError, match="task_docs"):
            ParallelFoldIn(engine, task_docs=0)
        with pytest.raises(ValueError, match="min_workers"):
            ParallelFoldIn(engine, min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            ParallelFoldIn(engine, min_workers=3, max_workers=2)

    def test_hedge_threshold(self):
        policy = HedgePolicy(quantile=0.9, multiplier=2.0,
                             min_wait=0.05, max_hedges=1)
        # No observations yet: fall back to the floor.
        assert policy.threshold(None) == 0.05
        assert policy.threshold(0.001) == 0.05  # floor dominates
        assert policy.threshold(0.2) == pytest.approx(0.4)


# ----------------------------------------------------------------------
# End-to-end serving determinism
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_model(frozen_phi):
    """A minimal fitted model wrapping the frozen phi."""
    from repro.models.base import FittedTopicModel
    num_topics, vocab_size = frozen_phi.shape
    vocab = Vocabulary(f"w{i}" for i in range(vocab_size))
    vocab.freeze()
    rng = np.random.default_rng(1)
    return FittedTopicModel(
        phi=frozen_phi,
        theta=rng.dirichlet(np.full(num_topics, 0.5), size=3),
        assignments=[rng.integers(0, num_topics, size=6)
                     for _ in range(3)],
        vocabulary=vocab,
        metadata={"alpha": 0.4})


@pytest.fixture(scope="module")
def raw_queries(served_model):
    words = served_model.vocabulary.words
    rng = np.random.default_rng(2)
    return [" ".join(words[i] for i in rng.integers(0, len(words),
                                                    size=12))
            for _ in range(7)] + [""]


class TestServingDeterminism:
    def test_theta_invariant_to_workers_and_batch_size(self, served_model,
                                                       raw_queries):
        """Same seed ⇒ identical theta for num_workers ∈ {1, 2, 4} and
        any batch_size — the tentpole's contract."""
        reference = None
        for workers in WORKER_COUNTS:
            for batch_size in (1, 3, 64):
                with InferenceSession(served_model, iterations=6,
                                      seed=0, num_workers=workers,
                                      batch_size=batch_size) as session:
                    theta = session.theta(raw_queries)
                if reference is None:
                    reference = theta
                else:
                    assert np.array_equal(reference, theta), \
                        (workers, batch_size)

    def test_v1_and_mmap_v2_serve_identical_theta(self, served_model,
                                                  raw_queries, tmp_path):
        """A v1 artifact load and a mmap v2 load serve the same bits at
        every worker count."""
        v1 = load_model(save_model(served_model, tmp_path / "v1"))
        v2 = load_model(save_model(served_model, tmp_path / "v2",
                                   mmap_phi=True), mmap_phi=True)
        assert v2.phi_mmapped
        reference = None
        for loaded in (v1, v2):
            for workers in WORKER_COUNTS:
                with InferenceSession(loaded, iterations=6, seed=3,
                                      num_workers=workers) as session:
                    theta = session.theta(raw_queries)
                if reference is None:
                    reference = theta
                else:
                    assert np.array_equal(reference, theta), \
                        (loaded.schema_version, workers)

    def test_mmap_session_ships_path_not_array(self, served_model,
                                               tmp_path):
        loaded = load_model(save_model(served_model, tmp_path / "m",
                                       mmap_phi=True), mmap_phi=True)
        session = InferenceSession(loaded, num_workers=2, seed=0)
        spec = session._foldin._spec
        assert spec.phi_path is not None and spec.phi is None
        session.close()

    def test_session_is_reentrant_across_threads(self, served_model,
                                                 raw_queries):
        """Two threads sharing ONE seeded session produce exactly the
        thetas the same session produces sequentially.

        Covers both concurrency fixes at the session level: per-thread
        inline scratch (no corrupted rows — every concurrent theta is
        bit-identical to some sequential one) and the lock-guarded
        ``SeedSequence.spawn`` (no duplicated child streams — the
        sequential thetas are pairwise distinct, so any spawn race
        would surface as a duplicate breaking the multiset match).
        """
        from concurrent.futures import ThreadPoolExecutor

        calls = 8
        with InferenceSession(served_model, iterations=5,
                              seed=21) as session:
            sequential = [session.theta(raw_queries)
                          for _ in range(calls)]
        assert len({theta.tobytes() for theta in sequential}) == calls
        with InferenceSession(served_model, iterations=5,
                              seed=21) as session:
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [pool.submit(session.theta, raw_queries)
                           for _ in range(calls)]
                concurrent = [future.result() for future in futures]
        assert sorted(theta.tobytes() for theta in sequential) \
            == sorted(theta.tobytes() for theta in concurrent)

    def test_successive_calls_continue_the_stream(self, served_model,
                                                  raw_queries):
        """Two infer calls draw different streams, but the whole
        session replays identically from the same seed."""
        def run():
            with InferenceSession(served_model, iterations=5,
                                  seed=9) as session:
                return (session.theta(raw_queries[:3]),
                        session.theta(raw_queries[:3]))

        first_a, second_a = run()
        first_b, second_b = run()
        assert np.array_equal(first_a, first_b)
        assert np.array_equal(second_a, second_b)
        assert not np.array_equal(first_a, second_a)
