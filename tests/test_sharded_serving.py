"""Tests for column-sharded phi serving (schema v3).

The load-bearing claim is bit-identity: sharding is a storage/paging
decision and must never change served theta — for any shard layout,
any worker count, and documents whose vocabulary straddles shard
boundaries.  The rest pins the out-of-core contract (only touched
shards map), artifact validation, checksums, mmap lifecycle (close /
ResourceWarning), registry fingerprinting, and the alias engine's
``rebuild_every="auto"`` cadence.
"""

from __future__ import annotations

import gc
import json
import warnings

import numpy as np
import pytest

from repro.models.base import FittedTopicModel
from repro.sampling.alias_engine import (DEFAULT_REBUILD_EVERY,
                                         resolve_rebuild_every)
from repro.serving import (InferenceSession, ManifestError, ModelRegistry,
                           ShardedPhi, TransposedShardedPhi, load_model,
                           read_manifest, save_model, plan_shard_starts)
from repro.serving.foldin import FoldInEngine
from repro.serving.parallel import ParallelFoldIn
from repro.text.vocabulary import Vocabulary

TOPICS = 6
VOCAB = 37


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(11)
    phi = rng.dirichlet(np.ones(VOCAB), size=TOPICS)
    theta = rng.dirichlet(np.ones(TOPICS), size=9)
    vocab = Vocabulary.from_tokens([f"w{i:03d}" for i in range(VOCAB)])
    return FittedTopicModel(phi=phi, theta=theta, assignments=[],
                            vocabulary=vocab,
                            metadata={"alpha": 0.4})


@pytest.fixture(scope="module")
def documents():
    rng = np.random.default_rng(7)
    docs = [rng.integers(0, VOCAB, size=int(rng.integers(1, 60)))
            for _ in range(10)]
    # One document whose vocabulary straddles every shard boundary of
    # the layouts under test, one empty, one single-word.
    docs.append(np.arange(VOCAB, dtype=np.int64))
    docs.append(np.empty(0, dtype=np.int64))
    docs.append(np.array([VOCAB - 1], dtype=np.int64))
    return docs


def _sharded_load(fitted, tmp_path, shard_words, name="m"):
    path = save_model(fitted, tmp_path / name, shard_words=shard_words)
    return load_model(path)


# ----------------------------------------------------------------------
# plan + view mechanics
# ----------------------------------------------------------------------
class TestShardedPhiView:
    def test_plan_shard_starts(self):
        assert plan_shard_starts(10, 4) == (0, 4, 8)
        assert plan_shard_starts(10, 10) == (0,)
        assert plan_shard_starts(10, 100) == (0,)
        assert plan_shard_starts(10, 1) == tuple(range(10))
        with pytest.raises(ValueError, match="shard_words"):
            plan_shard_starts(10, 0)
        with pytest.raises(ValueError, match="vocab_size"):
            plan_shard_starts(0, 4)

    def test_lazy_row_and_gather_identity(self, fitted, tmp_path):
        loaded = _sharded_load(fitted, tmp_path, shard_words=7)
        sharded = loaded.model.phi.T
        assert isinstance(sharded, ShardedPhi)
        assert sharded.shape == (VOCAB, TOPICS)
        assert sharded.mapped_shards == ()
        word_major = np.ascontiguousarray(fitted.phi.T)
        # Scalar rows (incl. negative), slices and fancy gathers all
        # reproduce the whole-matrix bytes.
        assert np.array_equal(sharded[0], word_major[0])
        assert np.array_equal(sharded[-1], word_major[-1])
        assert np.array_equal(sharded[3:20:2], word_major[3:20:2])
        ids = np.array([0, 36, 6, 7, 8, 20, 6])
        assert np.array_equal(sharded.take(ids, axis=0),
                              word_major.take(ids, axis=0))
        # np.take with out= dispatches through the duck method.
        out = np.empty((len(ids), TOPICS))
        np.take(sharded, ids, axis=0, out=out)
        assert np.array_equal(out, word_major.take(ids, axis=0))
        assert np.array_equal(np.asarray(sharded), word_major)
        loaded.close()

    def test_touch_maps_only_needed_shards(self, fitted, tmp_path):
        loaded = _sharded_load(fitted, tmp_path, shard_words=7)
        sharded = loaded.model.phi.T
        assert sharded.num_shards == 6
        assert sharded.touch(np.array([0, 3])) == (0,)
        assert sharded.mapped_shards == (0,)
        assert sharded.touch(np.array([35, 36])) == (5,)
        assert sharded.mapped_shards == (0, 5)
        # Footprint counts mapped shards only (last shard is short:
        # rows 35..36).
        per_row = TOPICS * 8
        assert sharded.mapped_bytes == (7 + 2) * per_row
        assert sharded.nbytes == VOCAB * per_row
        with pytest.raises(IndexError, match="outside the vocabulary"):
            sharded.touch(np.array([VOCAB]))
        loaded.close()
        assert sharded.mapped_shards == ()
        # The view stays usable after close: gathers re-map lazily.
        assert np.array_equal(sharded[10],
                              np.ascontiguousarray(fitted.phi.T)[10])
        loaded.close()

    def test_bounds_and_type_errors(self, fitted, tmp_path):
        loaded = _sharded_load(fitted, tmp_path, shard_words=10)
        sharded = loaded.model.phi.T
        with pytest.raises(IndexError):
            sharded[VOCAB]
        with pytest.raises(IndexError):
            sharded.take(np.array([0, VOCAB]))
        with pytest.raises(ValueError, match="axis"):
            sharded.take(np.array([0]), axis=1)
        with pytest.raises(TypeError, match="materialize"):
            sharded[object()]
        transposed = loaded.model.phi
        assert isinstance(transposed, TransposedShardedPhi)
        with pytest.raises(TypeError, match="materialize"):
            transposed[0:2]
        loaded.close()

    def test_transposed_face(self, fitted, tmp_path):
        loaded = _sharded_load(fitted, tmp_path, shard_words=5)
        transposed = loaded.model.phi
        assert transposed.shape == (TOPICS, VOCAB)
        assert transposed.T is loaded.model.phi.T.T.T  # same ShardedPhi
        for topic in range(TOPICS):
            assert np.array_equal(transposed[topic], fitted.phi[topic])
        assert np.array_equal(np.asarray(transposed), fitted.phi)
        # The documented model surface works on the lazy view.
        assert loaded.model.num_topics == TOPICS
        assert loaded.model.vocab_size == VOCAB
        top = loaded.model.top_word_ids(0, n=3)
        assert np.array_equal(top, np.argsort(-fitted.phi[0],
                                              kind="stable")[:3])
        loaded.close()

    def test_pickle_ships_map_not_blocks(self, fitted, tmp_path):
        import pickle
        loaded = _sharded_load(fitted, tmp_path, shard_words=7)
        sharded = loaded.model.phi.T
        sharded.touch(np.arange(VOCAB))
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone.mapped_shards == ()          # arrives unmapped
        assert clone.shard_ranges == sharded.shard_ranges
        assert np.array_equal(np.asarray(clone), np.asarray(sharded))
        clone.close()
        loaded.close()


# ----------------------------------------------------------------------
# artifact round-trip + validation
# ----------------------------------------------------------------------
class TestShardedArtifacts:
    def test_round_trip_schema_v3(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m", shard_words=7)
        manifest = read_manifest(path)
        assert manifest["schema_version"] == 3
        storage = manifest["phi_storage"]
        assert storage["layout"] == "word_major_sharded"
        assert storage["shard_words"] == 7
        shards = storage["shards"]
        assert [s["start"] for s in shards] == [0, 7, 14, 21, 28, 35]
        assert shards[-1]["stop"] == VOCAB
        assert (path / shards[0]["member"]).is_file()
        # Per-shard masses tile the total probability mass T.
        assert sum(s["mass"] for s in shards) == pytest.approx(TOPICS)
        loaded = load_model(path)
        assert loaded.schema_version == 3
        assert loaded.phi_mmapped
        assert loaded.shard_map == tuple(
            (s["start"], s["stop"]) for s in shards)
        assert np.array_equal(np.asarray(loaded.model.phi), fitted.phi)
        assert np.array_equal(loaded.model.theta, fitted.theta)
        loaded.close()

    def test_shard_words_validation(self, fitted, tmp_path):
        from repro.serving import ArtifactError
        with pytest.raises(ArtifactError, match="shard_words"):
            save_model(fitted, tmp_path / "m", shard_words=0)

    def test_checksums_catch_corruption(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m", shard_words=20)
        loaded = load_model(path)
        sharded = loaded.model.phi.T
        sharded.verify_checksums()
        member = path / read_manifest(path)["phi_storage"]["shards"][1][
            "member"]
        raw = bytearray(member.read_bytes())
        raw[-1] ^= 0xFF
        member.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="corrupt"):
            sharded.verify_checksums()
        loaded.close()

    @pytest.mark.parametrize("mutate, match", [
        (lambda s: s["shards"].pop(0), "tile"),
        (lambda s: s["shards"][0].update(start=1), "tile"),
        (lambda s: s["shards"][-1].update(stop=VOCAB - 1), "cover"),
        (lambda s: s.update(shards=[]), "shard list"),
        (lambda s: s["shards"][0].update(member=123), "malformed"),
    ])
    def test_manifest_shard_map_validation(self, fitted, tmp_path,
                                           mutate, match):
        path = save_model(fitted, tmp_path / "m", shard_words=7)
        manifest = json.loads((path / "manifest.json").read_text())
        mutate(manifest["phi_storage"])
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match=match):
            load_model(path)

    def test_missing_member_fails_loudly(self, fitted, tmp_path):
        from repro.serving import ArtifactError
        path = save_model(fitted, tmp_path / "m", shard_words=7)
        member = read_manifest(path)["phi_storage"]["shards"][2]["member"]
        (path / member).unlink()
        with pytest.raises(ArtifactError, match="missing"):
            load_model(path)

    def test_resave_unsharded_removes_stale_shards(self, fitted,
                                                   tmp_path):
        """Overwriting a sharded artifact with an unsharded save must
        not leave orphan shard members behind."""
        path = save_model(fitted, tmp_path / "m", shard_words=7)
        assert list(path.glob("phi_shard_*.npy"))
        save_model(fitted, tmp_path / "m", overwrite=True)
        assert not list(path.glob("phi_shard_*.npy"))
        loaded = load_model(path)
        assert loaded.schema_version == 1
        assert np.array_equal(loaded.model.phi, fitted.phi)
        loaded.close()


# ----------------------------------------------------------------------
# bit-identity: the tentpole property
# ----------------------------------------------------------------------
class TestShardedBitIdentity:
    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    @pytest.mark.parametrize("shard_words", [VOCAB, 19, 6, 1])
    def test_engine_theta_identical(self, fitted, documents, tmp_path,
                                    mode, shard_words):
        """{1, 2, 7, V} shards, single process, both fold-in lanes."""
        loaded = _sharded_load(fitted, tmp_path, shard_words,
                               name=f"m{mode}{shard_words}")
        baseline = FoldInEngine(fitted.phi, 0.4, iterations=8,
                                mode=mode)
        engine = FoldInEngine(loaded.model.phi, 0.4, iterations=8,
                              mode=mode)
        expected = baseline.theta(documents, rng=123)
        actual = engine.theta(documents, rng=123)
        assert np.array_equal(expected, actual)
        loaded.close()

    @pytest.mark.parametrize("mode", ["exact", "sparse"])
    @pytest.mark.parametrize("num_workers", [1, 4])
    def test_parallel_theta_identical(self, fitted, documents, tmp_path,
                                      mode, num_workers):
        loaded = _sharded_load(fitted, tmp_path, 6,
                               name=f"p{mode}{num_workers}")
        baseline = ParallelFoldIn(
            FoldInEngine(fitted.phi, 0.4, iterations=8, mode=mode),
            num_workers=num_workers)
        foldin = ParallelFoldIn(
            FoldInEngine(loaded.model.phi, 0.4, iterations=8,
                         mode=mode),
            num_workers=num_workers)
        try:
            expected = baseline.theta(documents, seed=9)
            actual = foldin.theta(documents, seed=9)
        finally:
            baseline.close()
            foldin.close()
        assert np.array_equal(expected, actual)
        loaded.close()

    def test_session_end_to_end_identical(self, fitted, tmp_path):
        plain = save_model(fitted, tmp_path / "plain")
        sharded = save_model(fitted, tmp_path / "sharded", shard_words=6)
        texts = ["w001 w006 w035 w036", "w000", "w012 w012 w020"]
        loaded_plain = load_model(plain)
        loaded_sharded = load_model(sharded)
        result_plain = InferenceSession(loaded_plain, seed=5).infer(texts)
        result_sharded = InferenceSession(loaded_sharded,
                                          seed=5).infer(texts)
        assert np.array_equal(result_plain.theta, result_sharded.theta)
        loaded_plain.close()
        loaded_sharded.close()

    def test_boundary_straddling_document(self, fitted, tmp_path):
        """A single document touching words on both sides of one shard
        boundary gathers rows from two blocks mid-document."""
        loaded = _sharded_load(fitted, tmp_path, 19, name="straddle")
        doc = np.array([17, 18, 19, 20, 18, 19], dtype=np.int64)
        engine = FoldInEngine(loaded.model.phi, 0.4, iterations=8,
                              mode="sparse")
        assert engine.touch(doc) == (0, 1)
        baseline = FoldInEngine(fitted.phi, 0.4, iterations=8,
                                mode="sparse")
        assert np.array_equal(baseline.theta([doc], rng=1),
                              engine.theta([doc], rng=1))
        loaded.close()

    def test_batch_touch_prefetches_union(self, fitted, documents,
                                          tmp_path):
        loaded = _sharded_load(fitted, tmp_path, 6, name="prefetch")
        engine = FoldInEngine(loaded.model.phi, 0.4, mode="sparse")
        sharded = engine.sharded
        assert sharded is not None
        engine.theta([np.array([0, 1]), np.array([36])], rng=0)
        assert sharded.mapped_shards == (0, 6)
        loaded.close()


# ----------------------------------------------------------------------
# lifecycle: close, eviction, ResourceWarning
# ----------------------------------------------------------------------
class TestMmapLifecycle:
    def test_close_releases_maps_and_is_idempotent(self, fitted,
                                                   tmp_path):
        loaded = _sharded_load(fitted, tmp_path, 7)
        sharded = loaded.model.phi.T
        sharded.touch(np.arange(VOCAB))
        assert sharded.mapped_bytes > 0
        loaded.close()
        loaded.close()
        assert sharded.mapped_bytes == 0

    def test_leaked_sharded_map_warns_on_collection(self, fitted,
                                                    tmp_path):
        path = save_model(fitted, tmp_path / "m", shard_words=7)
        loaded = load_model(path)
        loaded.model.phi.T.touch(np.array([0]))
        resource = loaded.phi_resource
        del loaded
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del resource
            gc.collect()
        assert any(issubclass(w.category, ResourceWarning)
                   and "unclosed ShardedPhi" in str(w.message)
                   for w in caught)

    def test_closed_load_does_not_warn(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m", shard_words=7)
        loaded = load_model(path)
        loaded.model.phi.T.touch(np.array([0]))
        loaded.close()
        resource = loaded.phi_resource
        del loaded
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del resource
            gc.collect()
        assert not [w for w in caught
                    if issubclass(w.category, ResourceWarning)]

    def test_v2_mmap_guard_warns_when_leaked(self, fitted, tmp_path):
        path = save_model(fitted, tmp_path / "m", mmap_phi=True)
        loaded = load_model(path, mmap_phi=True)
        resource = loaded.phi_resource
        assert resource is not None and not resource.closed
        del loaded
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del resource
            gc.collect()
        assert any(issubclass(w.category, ResourceWarning)
                   and "unclosed memory-mapped phi" in str(w.message)
                   for w in caught)

    def test_registry_eviction_closes(self, fitted, tmp_path):
        registry = ModelRegistry(tmp_path / "registry", cache_size=1)
        registry.publish("a", fitted, shard_words=7)
        registry.publish("b", fitted)
        loaded_a = registry.load("a")
        resource = loaded_a.phi_resource
        loaded_a.model.phi.T.touch(np.array([0]))
        assert resource.mapped_shards == (0,)
        registry.load("b")                      # evicts and closes "a"
        assert resource.mapped_shards == ()
        registry.clear_cache()


# ----------------------------------------------------------------------
# registry fingerprinting
# ----------------------------------------------------------------------
class TestRegistryFingerprint:
    def test_publish_forwards_shard_words(self, fitted, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish("demo", fitted, shard_words=7)
        assert read_manifest(record.path)["schema_version"] == 3
        loaded = registry.load("demo")
        assert loaded.shard_map is not None
        assert registry.cached_keys == (
            ("demo", 1, False,
             "v3:sharded:0-7,7-14,14-21,21-28,28-35,35-37"),)
        registry.clear_cache()

    def test_interleaved_flavors_never_cross_hit(self, fitted, tmp_path):
        """Rewriting a version directory in place (out-of-band — the
        registry's own publish keeps versions immutable) must not be
        served from a stale cache entry keyed on the old storage."""
        registry = ModelRegistry(tmp_path / "registry", cache_size=4)
        record = registry.publish("demo", fitted)
        plain = registry.load("demo")
        assert plain.shard_map is None
        # Out-of-band re-save of the same version, now sharded.
        save_model(fitted, record.path, shard_words=19, overwrite=True)
        sharded = registry.load("demo")
        assert sharded is not plain
        assert sharded.shard_map == ((0, 19), (19, VOCAB))
        # The stale plain entry was purged (and closed), not kept as a
        # sibling: one entry per (name, version, flavor).
        assert registry.cached_keys == (
            ("demo", 1, False, "v3:sharded:0-19,19-37"),)
        assert registry.load("demo") is sharded
        registry.clear_cache()


# ----------------------------------------------------------------------
# alias engine: rebuild_every="auto"
# ----------------------------------------------------------------------
class TestAutoRebuildCadence:
    def test_resolver(self):
        assert resolve_rebuild_every("auto", 500) == DEFAULT_REBUILD_EVERY
        assert resolve_rebuild_every("auto", 64 * 64) == 64
        assert resolve_rebuild_every("auto", 8000) == 125
        assert resolve_rebuild_every("auto", 16000) == 250
        assert resolve_rebuild_every(7, 16000) == 7
        with pytest.raises(ValueError, match="'auto'"):
            resolve_rebuild_every("fast", 100)
        with pytest.raises(ValueError, match=">= 1"):
            resolve_rebuild_every(0, 100)
        with pytest.raises(ValueError, match=">= 1"):
            resolve_rebuild_every(True, 100)

    def test_sampler_accepts_auto(self):
        from repro.models.lda import LdaKernel
        from repro.sampling.gibbs import CollapsedGibbsSampler
        from repro.sampling.state import GibbsState
        from repro.text.corpus import Corpus
        corpus = Corpus.from_texts(["a b c d", "b c d e a"],
                                   tokenizer=None)
        rng = np.random.default_rng(0)
        state = GibbsState(corpus, 3)
        state.initialize_random(rng)
        kernel = LdaKernel(state, 0.5, 0.1)
        sampler = CollapsedGibbsSampler(state, kernel, rng,
                                        engine="alias",
                                        rebuild_every="auto")
        assert sampler._sweep_engine.rebuild_every == \
            DEFAULT_REBUILD_EVERY
        sampler.run(2)
