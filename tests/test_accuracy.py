"""Tests for repro.metrics.accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.accuracy import (align_topics_by_js,
                                    align_topics_hungarian,
                                    correct_assignments, labeled_accuracy,
                                    map_assignments, token_accuracy)


class TestCorrectAssignments:
    def test_counts_matches(self):
        assert correct_assignments(np.array([0, 1, 2]),
                                   np.array([0, 9, 2])) == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            correct_assignments(np.array([0]), np.array([0, 1]))

    def test_token_accuracy(self):
        assert token_accuracy(np.array([1, 1]), np.array([1, 0])) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero tokens"):
            token_accuracy(np.array([]), np.array([]))


class TestAlignment:
    def _phis(self):
        truth = np.array([[0.8, 0.1, 0.1],
                          [0.1, 0.8, 0.1],
                          [0.1, 0.1, 0.8]])
        # model topics are truth topics in a shuffled order
        model = truth[[2, 0, 1]]
        return model, truth

    def test_js_alignment_recovers_permutation(self):
        model, truth = self._phis()
        np.testing.assert_array_equal(align_topics_by_js(model, truth),
                                      [2, 0, 1])

    def test_hungarian_recovers_permutation(self):
        model, truth = self._phis()
        np.testing.assert_array_equal(
            align_topics_hungarian(model, truth), [2, 0, 1])

    def test_js_alignment_allows_many_to_one(self):
        truth = np.array([[0.9, 0.05, 0.05], [0.05, 0.9, 0.05]])
        model = np.array([[0.85, 0.1, 0.05], [0.8, 0.15, 0.05]])
        mapping = align_topics_by_js(model, truth)
        np.testing.assert_array_equal(mapping, [0, 0])

    def test_hungarian_requires_enough_truth_topics(self):
        model = np.ones((3, 2)) / 2
        truth = np.ones((2, 2)) / 2
        with pytest.raises(ValueError, match="1-to-1"):
            align_topics_hungarian(model, truth)

    def test_map_assignments(self):
        mapping = np.array([5, 7])
        np.testing.assert_array_equal(
            map_assignments(np.array([0, 1, 0]), mapping), [5, 7, 5])

    def test_map_assignments_range_check(self):
        with pytest.raises(ValueError, match="outside"):
            map_assignments(np.array([3]), np.array([0, 1]))


class TestLabeledAccuracy:
    def test_label_matching(self):
        accuracy = labeled_accuracy(
            model_assignments=np.array([0, 1, 1]),
            model_labels=("Baseball", "Cooking"),
            truth_assignments=np.array([1, 0, 0]),
            truth_labels=("Cooking", "Baseball"))
        # model topic 0 = Baseball = truth topic 1; all three match.
        assert accuracy == pytest.approx(1.0)

    def test_unlabeled_topics_always_wrong(self):
        accuracy = labeled_accuracy(
            model_assignments=np.array([0, 0]),
            model_labels=(None, "X"),
            truth_assignments=np.array([0, 0]),
            truth_labels=("X",))
        assert accuracy == 0.0

    def test_partial_match(self):
        accuracy = labeled_accuracy(
            model_assignments=np.array([0, 1]),
            model_labels=("A", "B"),
            truth_assignments=np.array([0, 0]),
            truth_labels=("A",))
        assert accuracy == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            labeled_accuracy(np.array([0]), ("A",), np.array([0, 1]),
                             ("A",))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero tokens"):
            labeled_accuracy(np.array([], dtype=int), ("A",),
                             np.array([], dtype=int), ("A",))
