"""Cross-module integration tests: the full pipelines users run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.source_lda import SourceLDA
from repro.datasets.synthetic import (generate_source_lda_corpus,
                                      restrict_source_to_truth)
from repro.knowledge.wikipedia import SyntheticWikipedia
from repro.labeling.js_mapping import JsDivergenceLabeler
from repro.metrics.accuracy import labeled_accuracy
from repro.metrics.perplexity import perplexity_importance_sampling
from repro.models.lda import LDA
from repro.sampling.prefix_sums import PrefixSumScan
from repro.sampling.simple_parallel import SimpleParallelScan


@pytest.fixture(scope="module")
def pipeline():
    """Source -> generated corpus -> fitted Source-LDA, shared per module."""
    wiki = SyntheticWikipedia([f"Subject {i}" for i in range(6)],
                              article_length=200, core_vocab_size=12,
                              background_vocab_size=50, seed=21)
    source = wiki.knowledge_source()
    data = generate_source_lda_corpus(
        source, num_topics=4, num_documents=50, avg_document_length=40,
        alpha=0.5, mu=0.8, sigma=0.2, seed=21)
    fitted = SourceLDA(source, num_unlabeled_topics=1, mu=0.8, sigma=0.2,
                       alpha=0.5, min_documents=3, min_proportion=0.1,
                       calibration_draws=4).fit(
        data.corpus, iterations=30, seed=21)
    return source, data, fitted


class TestSourceLdaPipeline:
    def test_recovers_generating_topics(self, pipeline):
        source, data, fitted = pipeline
        active_labels = {label for label in
                         fitted.metadata["active_labels"]
                         if label is not None}
        recovered = len(active_labels & set(data.chosen_topics))
        assert recovered >= 3

    def test_token_label_accuracy_beats_chance(self, pipeline):
        source, data, fitted = pipeline
        accuracy = labeled_accuracy(
            fitted.flat_assignments(), fitted.topic_labels,
            data.token_topics, data.chosen_topics)
        assert accuracy > 0.5  # chance is ~1/7

    def test_beats_unsupervised_lda_on_labels(self, pipeline):
        source, data, fitted = pipeline
        lda = LDA(num_topics=4, alpha=0.5, beta=0.1).fit(
            data.corpus, iterations=30, seed=21)
        labeling = JsDivergenceLabeler().label_topics(lda, source)
        lda_accuracy = labeled_accuracy(
            lda.flat_assignments(), labeling.labels, data.token_topics,
            data.chosen_topics)
        src_accuracy = labeled_accuracy(
            fitted.flat_assignments(), fitted.topic_labels,
            data.token_topics, data.chosen_topics)
        # LDA here is given the oracle topic count (4) on an easy corpus,
        # so post-hoc mapping is unusually strong; Source-LDA must stay
        # competitive despite carrying the full 6-topic superset plus an
        # unlabeled topic.  (The decisive gaps appear at bench scale —
        # see benchmarks/test_bench_fig8a_accuracy_mixed.py.)
        assert src_accuracy >= lda_accuracy - 0.1

    def test_heldout_perplexity_sane(self, pipeline):
        source, data, fitted = pipeline
        heldout = generate_source_lda_corpus(
            source, num_topics=4, num_documents=8,
            avg_document_length=40, alpha=0.5, mu=0.8, sigma=0.2,
            seed=22, vocabulary=data.corpus.vocabulary)
        perplexity = perplexity_importance_sampling(
            fitted.phi, heldout.corpus, alpha=0.5, num_samples=16, rng=0)
        assert 1.0 < perplexity < data.corpus.vocab_size


class TestParallelScansInModels:
    """Algorithms 2/3 must be drop-in replacements inside real models."""

    def test_scan_strategies_equivalent_in_lda(self, wiki_corpus):
        results = []
        for scan in (None, PrefixSumScan(), SimpleParallelScan(blocks=4)):
            fitted = LDA(3, alpha=0.5, beta=0.1, scan=scan).fit(
                wiki_corpus, iterations=5, seed=13)
            results.append(fitted.flat_assignments())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_scan_strategies_equivalent_in_source_lda(self, wiki_source,
                                                      wiki_corpus):
        from repro.core.bijective import BijectiveSourceLDA
        results = []
        for scan in (None, PrefixSumScan(), SimpleParallelScan(blocks=3)):
            fitted = BijectiveSourceLDA(wiki_source, scan=scan).fit(
                wiki_corpus, iterations=4, seed=13)
            results.append(fitted.flat_assignments())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])


class TestExactCondition:
    def test_exact_source_pipeline(self, pipeline):
        source, data, _ = pipeline
        exact = restrict_source_to_truth(source, data)
        fitted = SourceLDA(exact, num_unlabeled_topics=0, mu=0.8,
                           sigma=0.2, alpha=0.5, reduce_topics=False,
                           calibration_draws=4).fit(
            data.corpus, iterations=25, seed=5)
        accuracy = labeled_accuracy(
            fitted.flat_assignments(), fitted.topic_labels,
            data.token_topics, data.chosen_topics)
        assert accuracy > 0.6
