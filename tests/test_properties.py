"""Property-based tests on cross-cutting invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.priors import SourcePrior
from repro.knowledge.source import KnowledgeSource
from repro.metrics.divergence import js_divergence
from repro.models.lda import LDA, posterior_theta
from repro.sampling.integration import LambdaGrid
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus

words = st.sampled_from(["aa", "bb", "cc", "dd", "ee", "ff"])
documents = st.lists(st.lists(words, min_size=1, max_size=12),
                     min_size=1, max_size=8)


@given(documents, st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=999))
@settings(max_examples=25, deadline=None)
def test_gibbs_state_invariants_hold_after_random_init(
        docs, num_topics, seed):
    corpus = Corpus.from_token_lists(docs)
    state = GibbsState(corpus, num_topics)
    state.initialize_random(np.random.default_rng(seed))
    assert state.counts_consistent()
    assert state.nw.sum() == state.num_tokens
    assert state.nt.sum() == state.num_tokens
    np.testing.assert_array_equal(state.nd.sum(axis=1),
                                  state.doc_lengths)


@given(documents, st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=999))
@settings(max_examples=15, deadline=None)
def test_lda_outputs_are_distributions(docs, num_topics, seed):
    corpus = Corpus.from_token_lists(docs)
    fitted = LDA(num_topics, alpha=0.5, beta=0.1).fit(
        corpus, iterations=2, seed=seed)
    np.testing.assert_allclose(fitted.phi.sum(axis=1), 1.0, atol=1e-9)
    np.testing.assert_allclose(fitted.theta.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(fitted.phi > 0)
    assert np.all(fitted.theta > 0)


@given(documents, st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_posterior_theta_rows_normalized(docs, num_topics):
    corpus = Corpus.from_token_lists(docs)
    state = GibbsState(corpus, num_topics)
    state.initialize_random(np.random.default_rng(0))
    theta = posterior_theta(state, alpha=0.5)
    np.testing.assert_allclose(theta.sum(axis=1), 1.0, atol=1e-9)


article_counts = st.lists(st.integers(min_value=0, max_value=40),
                          min_size=3, max_size=12)


@given(article_counts, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_source_prior_delta_bounds(counts, exponent):
    """delta entries always lie between min(1, X) and max(1, X)."""
    tokens = [f"w{i}" for i, c in enumerate(counts) for _ in range(c)]
    if not tokens:
        return
    source = KnowledgeSource({"T": tokens})
    vocab = source.vocabulary()
    prior = SourcePrior(source, vocab)
    delta = prior.delta(exponent)
    hyper = prior.hyperparameters
    lower = np.minimum(1.0, hyper)
    upper = np.maximum(1.0, hyper)
    assert np.all(delta >= lower - 1e-12)
    assert np.all(delta <= upper + 1e-12)


@given(article_counts,
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.01, max_value=2.0),
       st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_grid_tables_consistent_with_direct_power(counts, mu, sigma,
                                                  steps):
    tokens = [f"w{i}" for i, c in enumerate(counts) for _ in range(c)]
    if not tokens:
        return
    source = KnowledgeSource({"T": tokens})
    prior = SourcePrior(source, source.vocabulary())
    grid = LambdaGrid.from_prior(mu, sigma, steps)
    tables = prior.grid_tables(grid.nodes)
    word = 0
    direct = np.power(prior.hyperparameters[:, word][:, None],
                      grid.nodes[None, :])
    np.testing.assert_allclose(tables.delta_for_word(word), direct,
                               rtol=1e-10)


@given(st.integers(min_value=2, max_value=30),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_js_triangle_like_behaviour(size, seed):
    """JS^(1/2) is a metric: check the triangle inequality on random
    triples (a stronger invariant than symmetry/bounds alone)."""
    rng = np.random.default_rng(seed)
    p, q, r = rng.dirichlet(np.ones(size), size=3)
    d_pq = np.sqrt(js_divergence(p, q))
    d_qr = np.sqrt(js_divergence(q, r))
    d_pr = np.sqrt(js_divergence(p, r))
    assert d_pr <= d_pq + d_qr + 1e-9


@given(documents, st.integers(min_value=0, max_value=99))
@settings(max_examples=15, deadline=None)
def test_sampler_token_conservation_through_sweeps(docs, seed):
    """No sweep may create or destroy tokens (counts stay balanced)."""
    from repro.models.lda import LdaKernel
    from repro.sampling.gibbs import CollapsedGibbsSampler
    corpus = Corpus.from_token_lists(docs)
    rng = np.random.default_rng(seed)
    state = GibbsState(corpus, 3)
    state.initialize_random(rng)
    sampler = CollapsedGibbsSampler(state, LdaKernel(state, 0.5, 0.1), rng)
    sampler.run(2)
    assert state.counts_consistent()
    assert state.nw.sum() == corpus.num_tokens
