"""Tests for repro.metrics.divergence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.divergence import (LN2, js_divergence,
                                      js_divergence_matrix, kl_divergence,
                                      sorted_theta_js,
                                      sorted_theta_js_total)


def random_distribution(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.dirichlet(np.ones(size))


distributions = st.integers(min_value=2, max_value=20).flatmap(
    lambda n: st.lists(st.floats(min_value=0.01, max_value=10),
                       min_size=n, max_size=n)).map(
    lambda xs: np.asarray(xs) / np.sum(xs))


class TestKlDivergence:
    def test_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log(2) + 0.5 * np.log(2 / 3)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_asymmetric(self):
        p = np.array([0.8, 0.2])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_infinite_on_support_mismatch(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert kl_divergence(p, q) == np.inf

    def test_zero_p_entries_ignored(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(np.log(2))

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="sum to 1"):
            kl_divergence(np.array([0.5, 0.6]), np.array([0.5, 0.5]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            kl_divergence(np.array([-0.5, 1.5]), np.array([0.5, 0.5]))

    def test_rowwise(self):
        p = np.array([[0.5, 0.5], [0.9, 0.1]])
        result = kl_divergence(p, p)
        np.testing.assert_allclose(result, [0.0, 0.0], atol=1e-12)


class TestJsDivergence:
    def test_symmetric(self, rng):
        p = random_distribution(rng, 10)
        q = random_distribution(rng, 10)
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_bounded_by_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert js_divergence(p, q) == pytest.approx(LN2)

    def test_zero_for_identical(self, rng):
        p = random_distribution(rng, 6)
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_finite_on_disjoint_support(self):
        assert np.isfinite(js_divergence(np.array([1.0, 0.0]),
                                         np.array([0.0, 1.0])))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            js_divergence(np.array([1.0]), np.array([0.5, 0.5]))

    @given(distributions, st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_bounds_and_symmetry(self, p, seed):
        q = np.random.default_rng(seed).dirichlet(np.ones(p.shape[0]))
        value = js_divergence(p, q)
        assert 0.0 <= value <= LN2 + 1e-12
        assert value == pytest.approx(js_divergence(q, p))


class TestJsDivergenceMatrix:
    def test_shape_and_diagonal(self, rng):
        rows = np.array([random_distribution(rng, 5) for _ in range(3)])
        matrix = js_divergence_matrix(rows, rows)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)

    def test_matches_scalar_function(self, rng):
        rows = np.array([random_distribution(rng, 4) for _ in range(2)])
        cols = np.array([random_distribution(rng, 4) for _ in range(3)])
        matrix = js_divergence_matrix(rows, cols)
        for i in range(2):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    js_divergence(rows[i], cols[j]))


class TestSortedThetaJs:
    def test_permutation_invariance(self, rng):
        theta = np.array([random_distribution(rng, 6) for _ in range(4)])
        permuted = theta[:, rng.permutation(6)]
        per_doc = sorted_theta_js(theta, permuted)
        np.testing.assert_allclose(per_doc, 0.0, atol=1e-12)

    def test_pads_different_topic_counts(self, rng):
        theta_a = np.array([[0.5, 0.5]])
        theta_b = np.array([[0.5, 0.3, 0.2]])
        value = sorted_theta_js(theta_a, theta_b)
        assert value.shape == (1,)
        assert np.isfinite(value[0])

    def test_identical_after_padding(self):
        theta_a = np.array([[0.6, 0.4]])
        theta_b = np.array([[0.4, 0.0, 0.6]])
        np.testing.assert_allclose(sorted_theta_js(theta_a, theta_b),
                                   [0.0], atol=1e-12)

    def test_document_count_mismatch(self):
        with pytest.raises(ValueError, match="document count"):
            sorted_theta_js(np.ones((2, 2)) / 2, np.ones((3, 2)) / 2)

    def test_total_is_sum(self, rng):
        theta_a = np.array([random_distribution(rng, 5) for _ in range(6)])
        theta_b = np.array([random_distribution(rng, 5) for _ in range(6)])
        assert sorted_theta_js_total(theta_a, theta_b) == pytest.approx(
            sorted_theta_js(theta_a, theta_b).sum())

    def test_closer_model_scores_lower(self, rng):
        truth = np.array([random_distribution(rng, 8) for _ in range(10)])
        near = 0.9 * truth + 0.1 / 8
        far = np.array([random_distribution(rng, 8) for _ in range(10)])
        assert sorted_theta_js_total(truth, near) < \
            sorted_theta_js_total(truth, far)
