"""Serve a trained model: fit -> save -> load -> batched inference.

Fits Source-LDA on a tiny corpus, publishes the fitted model into a
versioned registry as a schema-v2 artifact (uncompressed, mappable
phi), reloads it memory-mapped in a "serving process", and answers
batched topic queries for raw, unseen text — including out-of-vocabulary
words, which the session drops and reports.  The worker-sharded session
(`num_workers`) answers bit-identically at every worker count, so the
single-worker run below is exactly what a multi-process deployment
would serve.

Run:  python examples/save_load_serve.py
"""

import tempfile

from repro import Corpus, KnowledgeSource, SourceLDA
from repro.serving import InferenceSession, ModelRegistry

DOCUMENTS = [
    "pencil eraser notebook pencil ruler classroom pencil paper",
    "ruler notebook pencil crayon paper classroom school eraser",
    "umpire baseball inning pitcher baseball glove strike bat",
    "baseball bat ball umpire pitcher inning team game",
    "pencil paper notebook school baseball game classroom crayon",
]

ARTICLES = {
    "School Supplies": (
        "pencil pencil pencil ruler ruler eraser eraser notebook notebook "
        "paper paper pen crayon scissors glue backpack school school "
        "classroom student").split(),
    "Baseball": (
        "baseball baseball baseball umpire umpire bat bat ball ball "
        "pitcher pitcher inning glove base team game game strike "
        "field").split(),
}

QUERIES = [
    "umpire called a strike and the pitcher threw to the glove",
    "notebook paper and a pencil for every student",
    "quarterly earnings were flat",          # entirely out of vocabulary
]


def main() -> None:
    corpus = Corpus.from_texts(DOCUMENTS, tokenizer=None)
    source = KnowledgeSource(ARTICLES)
    fitted = SourceLDA(source, num_unlabeled_topics=1, alpha=0.3).fit(
        corpus, iterations=150, seed=7)

    with tempfile.TemporaryDirectory() as root:
        # Training process: publish the fitted model.  mmap_phi writes
        # the schema-v2 artifact whose phi serving workers can share.
        registry = ModelRegistry(root)
        record = registry.publish("everyday-topics", fitted,
                                  model_class="SourceLDA",
                                  mmap_phi=True)
        print(f"published {record.name} v{record.version} "
              f"-> {record.path.name}/")

        # Serving process: resolve latest, reload with a memory-mapped
        # phi, answer queries.  num_workers > 1 shards the batch over
        # processes that map the same phi file — same bits, more cores.
        loaded = ModelRegistry(root).load("everyday-topics",
                                          mmap_phi=True)
        with InferenceSession(loaded, iterations=40, seed=0,
                              num_workers=1) as session:
            result = session.infer(QUERIES)
            # Rank from the result we already have — no second fold-in.
            top = session.top_topics(result, top_n=1)

        print("\nquery -> dominant topic (in-vocab/OOV tokens):")
        for i, query in enumerate(QUERIES):
            best = top[i][0]
            label = best.label or "(unlabeled)"
            print(f"  {label:16s} p={best.probability:.2f} "
                  f"({result.num_tokens[i]}/{result.num_oov[i]}) "
                  f"| {query[:44]}")


if __name__ == "__main__":
    main()
