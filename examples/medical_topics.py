"""Clinical-notes scenario: the paper's motivating application.

The introduction motivates Source-LDA with patient-record summarization:
"since there are extensive knowledge sources comprising essentially all
medical topics, Source-LDA can be useful in discovering and labeling these
existing topics" (Section III.C.5b).  This example builds a MedlinePlus-
style medical topic superset, synthesizes a corpus of "clinical notes"
drawn from a handful of those conditions, and shows Source-LDA recovering
*which* conditions the notes discuss — the summarization signal a
physician-facing system would surface.

Run:  python examples/medical_topics.py
"""

import numpy as np

from repro.core import SourceLDA
from repro.datasets import generate_source_lda_corpus
from repro.knowledge.medline import medlineplus_topics
from repro.knowledge.wikipedia import SyntheticWikipedia


def main() -> None:
    # A 40-topic slice of the MedlinePlus inventory keeps the demo quick;
    # the library handles the full 578 (see benchmarks/).
    labels = medlineplus_topics(40)
    wikipedia = SyntheticWikipedia(list(labels), article_length=250,
                                   core_vocab_size=16,
                                   background_vocab_size=120, seed=3)
    source = wikipedia.knowledge_source()

    # "Patient notes": generated from 6 of the 40 conditions.
    data = generate_source_lda_corpus(
        source, num_topics=6, num_documents=80, avg_document_length=60,
        alpha=0.5, mu=0.7, sigma=0.3, seed=3)
    print("Conditions actually present in the notes:")
    for name in data.chosen_topics:
        print(f"  - {name}")

    model = SourceLDA(source, num_unlabeled_topics=2, mu=0.7, sigma=0.3,
                      min_documents=2, min_proportion=0.1,
                      calibration_draws=4)
    fitted = model.fit(data.corpus, iterations=50, seed=3)

    active = [int(t) for t in fitted.metadata["active_topics"]]
    discovered = [fitted.label_of(t) for t in active
                  if fitted.label_of(t) is not None]
    print(f"\nSource-LDA kept {len(discovered)} labeled topics "
          f"after superset reduction (out of {len(source)} candidates):")
    hits = 0
    for name in discovered:
        marker = "*" if name in data.chosen_topics else " "
        hits += name in data.chosen_topics
        print(f"  {marker} {name}")
    print(f"\n{hits}/{len(data.chosen_topics)} true conditions recovered "
          "(* = correct).")

    print("\nPer-note summary (dominant labeled condition):")
    for index in range(5):
        order = np.argsort(-fitted.theta[index])
        top = next((int(t) for t in order
                    if fitted.label_of(int(t)) is not None), int(order[0]))
        label = fitted.label_of(top) or "(unlabeled)"
        share = fitted.theta[index, top]
        print(f"  note {index}: {label} ({share:.0%} of note)")


if __name__ == "__main__":
    main()
