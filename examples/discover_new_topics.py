"""Discovering unknown topics alongside known ones (Section III.B/C).

The paper's central design goal: "allow for simultaneous discovery of both
known and unknown topics."  This example generates a corpus where most
tokens come from two knowledge-source topics but a third subject — absent
from the knowledge source — also runs through the documents.  Source-LDA's
unlabeled topics absorb the unknown subject while the source topics stay
on-label; the comparison with EDA (which has nowhere to put the new
subject) shows why the mixture matters.

Run:  python examples/discover_new_topics.py
"""

import numpy as np

from repro import EDA, Corpus, KnowledgeSource, SourceLDA
from repro.sampling.rng import ensure_rng

KNOWN_ARTICLES = {
    "Coffee": ("coffee coffee coffee beans beans arabica robusta harvest "
               "roast roast brew espresso caffeine export growers crop "
               "bags aroma").split(),
    "Cycling": ("bicycle bicycle wheel wheel pedal helmet race race rider "
                "sprint gear chain saddle tour peloton climb road "
                "frame").split(),
}

#: Vocabulary of the unknown subject (no article describes it).
UNKNOWN_WORDS = ("chess knight bishop rook pawn checkmate opening endgame "
                 "gambit board").split()


def build_corpus(seed: int = 5, num_documents: int = 60) -> Corpus:
    rng = ensure_rng(seed)
    pools = {name: tokens for name, tokens in KNOWN_ARTICLES.items()}
    pools["(unknown)"] = list(UNKNOWN_WORDS)
    names = list(pools)
    texts = []
    for _ in range(num_documents):
        subject = names[int(rng.integers(len(names)))]
        primary = pools[subject]
        tokens = [primary[int(rng.integers(len(primary)))]
                  for _ in range(30)]
        # sprinkle a little cross-subject noise
        other = pools[names[int(rng.integers(len(names)))]]
        tokens.extend(other[int(rng.integers(len(other)))]
                      for _ in range(3))
        texts.append(" ".join(tokens))
    return Corpus.from_texts(texts, tokenizer=None)


def main() -> None:
    corpus = build_corpus()
    source = KnowledgeSource(KNOWN_ARTICLES)

    fitted = SourceLDA(source, num_unlabeled_topics=1, mu=0.7, sigma=0.3,
                       reduce_topics=False).fit(
        corpus, iterations=120, seed=5)
    print("Source-LDA topics:")
    for topic in range(fitted.num_topics):
        label = fitted.label_of(topic) or "(unlabeled - discovered)"
        words = ", ".join(fitted.top_words(topic, 6))
        print(f"  {label:24s} {words}")

    unknown_topic = fitted.topic_labels.index(None)
    discovered = set(fitted.top_words(unknown_topic, 6))
    coverage = len(discovered & set(UNKNOWN_WORDS)) / 6
    print(f"\nUnlabeled topic's top words that belong to the hidden "
          f"subject: {coverage:.0%}")

    eda = EDA(source).fit(corpus, iterations=120, seed=5)
    print("\nEDA (no unknown topics allowed) forces chess tokens into:")
    chess_ids = [corpus.vocabulary[w] for w in UNKNOWN_WORDS
                 if w in corpus.vocabulary]
    flat_words = np.concatenate([doc.word_ids for doc in corpus])
    flat_topics = eda.flat_assignments()
    for word_id in chess_ids[:4]:
        topics = flat_topics[flat_words == word_id]
        if topics.size == 0:
            continue
        label = eda.label_of(int(np.bincount(topics).argmax()))
        print(f"  {corpus.vocabulary.word(word_id):10s} -> {label}")


if __name__ == "__main__":
    main()
