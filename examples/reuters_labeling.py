"""Newswire labeling: the Section IV.C workflow end to end.

Generates the synthetic Reuters-21578 substitute (80-category knowledge
superset, 49 categories actually present), fits Source-LDA, post-hoc-labels
a plain LDA run with the IR (TF-IDF/cosine) approach for contrast, and
prints Table-I-style top-word columns for the categories both models
labeled.

Run:  python examples/reuters_labeling.py
"""

from repro.experiments import LAPTOP, format_reuters, run_reuters_analysis


def main() -> None:
    scale = LAPTOP.scaled(num_documents=120, iterations=40,
                          avg_document_length=50.0, article_length=250,
                          generating_topics=6)
    print("Generating synthetic newswire corpus and fitting models "
          f"(scale={scale.name}, iterations={scale.iterations})...")
    result = run_reuters_analysis(scale, seed=11)

    print()
    print(format_reuters(result))

    print("\nSource-LDA labeled topics that survived superset reduction:")
    active = result.source_lda.metadata.get("active_topics", [])
    for topic in active:
        label = result.source_lda.label_of(int(topic))
        if label is None:
            continue
        words = ", ".join(result.source_lda.top_words(int(topic), 6))
        print(f"  {label:24s} {words}")

    truth = result.generator.ground_truth()
    print(f"\n(Ground truth: {len(truth.present_categories)} of "
          f"{len(result.generator.categories)} categories generated the "
          "corpus.)")


if __name__ == "__main__":
    main()
