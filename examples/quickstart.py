"""Quickstart: label topics during inference with Source-LDA.

Builds a tiny corpus about two everyday subjects, hands Source-LDA a
knowledge source describing three *candidate* topics (one of which does not
occur), and shows that the fitted topics come out of inference already
labeled — including noticing which candidate topic is absent.

Run:  python examples/quickstart.py
"""

from repro import Corpus, KnowledgeSource, SourceLDA

DOCUMENTS = [
    "pencil eraser notebook pencil ruler classroom pencil paper",
    "ruler notebook pencil crayon paper classroom school eraser",
    "umpire baseball inning pitcher baseball glove strike bat",
    "baseball bat ball umpire pitcher inning team game",
    "pencil paper notebook school baseball game classroom crayon",
]

ARTICLES = {
    "School Supplies": (
        "pencil pencil pencil ruler ruler eraser eraser notebook notebook "
        "paper paper pen crayon scissors glue backpack school school "
        "classroom student").split(),
    "Baseball": (
        "baseball baseball baseball umpire umpire bat bat ball ball "
        "pitcher pitcher inning glove base team game game strike "
        "field").split(),
    "Astronomy": (
        "telescope telescope star star planet planet galaxy orbit comet "
        "nebula astronomer moon moon eclipse").split(),
}


def main() -> None:
    corpus = Corpus.from_texts(DOCUMENTS, tokenizer=None)
    source = KnowledgeSource(ARTICLES)

    model = SourceLDA(
        source,
        num_unlabeled_topics=1,   # room for content none of the articles cover
        mu=0.9, sigma=0.15,       # how tightly topics track their articles
        alpha=0.3,
        min_documents=2,          # superset reduction threshold
        min_proportion=0.2,
    )
    fitted = model.fit(corpus, iterations=150, seed=7)

    print("Topics (label -> top words):")
    for topic in range(fitted.num_topics):
        label = fitted.label_of(topic) or "(unlabeled)"
        words = ", ".join(fitted.top_words(topic, 5))
        print(f"  {label:16s} {words}")

    active = fitted.metadata["active_topics"]
    print("\nTopics surviving superset reduction:",
          [fitted.label_of(int(t)) or "(unlabeled)" for t in active])

    print("\nPer-document dominant topic:")
    for index, doc_text in enumerate(DOCUMENTS):
        dominant = int(fitted.theta[index].argmax())
        label = fitted.label_of(dominant) or "(unlabeled)"
        print(f"  doc {index}: {label:16s} | {doc_text[:48]}...")


if __name__ == "__main__":
    main()
