"""Source-LDA: enhancing probabilistic topic models using prior knowledge
sources (Wood et al., ICDE 2017) — a full from-scratch reproduction.

Public API highlights
---------------------
Models
    :class:`~repro.core.SourceLDA` (the paper's contribution),
    :class:`~repro.core.BijectiveSourceLDA`,
    :class:`~repro.core.MixtureSourceLDA`, and the baselines
    :class:`~repro.models.LDA`, :class:`~repro.models.EDA`,
    :class:`~repro.models.CTM`.
Knowledge sources
    :class:`~repro.knowledge.KnowledgeSource` plus synthetic Wikipedia /
    Reuters / MedlinePlus generators.
Labeling and metrics
    The four post-hoc labelers in :mod:`repro.labeling`; JS divergence,
    perplexity, accuracy and PMI coherence in :mod:`repro.metrics`.
Experiments
    One driver per paper table/figure in :mod:`repro.experiments`.
Serving
    Model persistence and batched query-time inference in
    :mod:`repro.serving`: :func:`~repro.serving.save_model` /
    :func:`~repro.serving.load_model`,
    :class:`~repro.serving.ModelRegistry` and
    :class:`~repro.serving.InferenceSession`.
Telemetry
    Counters, latency histograms and span traces in
    :mod:`repro.telemetry`: pass an
    :class:`~repro.telemetry.InMemoryRecorder` as ``recorder=`` to any
    sampler/serving constructor; ``None`` (default) records nothing at
    zero overhead.
"""

from repro.core import (BijectiveSourceLDA, MixtureSourceLDA,
                        SmoothingFunction, SourceLDA, SourcePrior,
                        calibrate_smoothing)
from repro.knowledge import (KnowledgeSource, SyntheticReuters,
                             SyntheticWikipedia, medline_knowledge_source,
                             source_distribution, source_hyperparameters)
from repro.models import CTM, EDA, LDA, FittedTopicModel, TopicModel
from repro.serving import (InferenceSession, ModelRegistry, load_model,
                           save_model)
from repro.telemetry import (InMemoryRecorder, JsonlTraceWriter,
                             NullRecorder, Recorder)
from repro.text import Corpus, Document, Tokenizer, Vocabulary

__version__ = "1.0.0"

__all__ = [
    "BijectiveSourceLDA",
    "CTM",
    "Corpus",
    "Document",
    "EDA",
    "FittedTopicModel",
    "InMemoryRecorder",
    "InferenceSession",
    "JsonlTraceWriter",
    "KnowledgeSource",
    "LDA",
    "MixtureSourceLDA",
    "ModelRegistry",
    "NullRecorder",
    "Recorder",
    "SmoothingFunction",
    "SourceLDA",
    "SourcePrior",
    "SyntheticReuters",
    "SyntheticWikipedia",
    "Tokenizer",
    "TopicModel",
    "Vocabulary",
    "__version__",
    "calibrate_smoothing",
    "load_model",
    "medline_knowledge_source",
    "save_model",
    "source_distribution",
    "source_hyperparameters",
]
