"""The Reuters newswire analysis (Section IV.C, Table I).

Source-LDA, IR-labeled LDA and CTM are run against the (synthetic)
Reuters-21578 subset with the 80-category Wikipedia superset as prior
knowledge.  The experiment reports:

* Table I — the top-10 word lists each model produces for shared labels
  (the paper shows Inventories, Natural Gas and Balance of Payments);
* how many labeled topics each model "discovers" (paper: Source-LDA 15,
  CTM 6, IR-LDA forced to label everything);
* a word/label mismatch rate per model (the paper used human judgment;
  we substitute a deterministic proxy — a top word is a mismatch when it
  is not in the label's ground-truth topical vocabulary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.source_lda import SourceLDA
from repro.experiments.config import LAPTOP, ExperimentScale
from repro.experiments.reporting import format_table
from repro.knowledge.reuters import SyntheticReuters
from repro.labeling.ir_lda import TfidfCosineLabeler
from repro.models.base import (FittedTopicModel, default_alpha,
                               default_beta)
from repro.models.ctm import CTM
from repro.models.lda import LDA

TABLE1_LABELS = ("Inventories", "Natural Gas", "Balance of Payments")


@dataclass
class ReutersResult:
    """Table I plus the discovery/mismatch statistics of Section IV.C."""

    table_labels: tuple[str, ...]
    top_words: dict[str, dict[str, list[str]]]
    discovered_labeled_topics: dict[str, int]
    mismatch_rates: dict[str, float]
    source_lda: FittedTopicModel
    ir_lda: FittedTopicModel
    ctm: FittedTopicModel
    generator: SyntheticReuters


def _topic_for_label(model: FittedTopicModel, label: str) -> int | None:
    for topic, topic_label in enumerate(model.topic_labels):
        if topic_label == label:
            return topic
    return None


def _topic_for_label_by_score(score_matrix: np.ndarray,
                              candidate_labels: tuple[str, ...],
                              label: str) -> int:
    """The model topic best matching ``label`` (column argmax).

    Used for IR-LDA's Table I columns: even when no topic's own best label
    is ``label``, the table shows the topic the IR scorer ranks closest.
    """
    column = candidate_labels.index(label)
    return int(score_matrix[:, column].argmax())


def _mismatch_rate(model: FittedTopicModel, topics_with_labels:
                   list[tuple[int, str]], generator: SyntheticReuters,
                   top_n: int = 10) -> float:
    """Fraction of top words outside the label's topical vocabulary."""
    if not topics_with_labels:
        return float("nan")
    wikipedia = generator._wikipedia  # noqa: SLF001 - same package family
    mismatches = 0
    total = 0
    for topic, label in topics_with_labels:
        allowed = set(wikipedia.core_words(label))
        for word in model.top_words(topic, top_n):
            total += 1
            if word not in allowed:
                mismatches += 1
    return mismatches / total if total else float("nan")


def run_reuters_analysis(scale: ExperimentScale = LAPTOP,
                         seed: int = 0,
                         num_unlabeled: int | None = None
                         ) -> ReutersResult:
    """Run the Section IV.C comparison on the synthetic newswire."""
    generator = SyntheticReuters(
        num_documents=scale.num_documents,
        num_present_categories=min(49, max(6,
                                           scale.generating_topics * 4)),
        document_length_mean=scale.avg_document_length,
        article_length=scale.article_length,
        seed=seed)
    corpus = generator.corpus()
    source = generator.knowledge_source()
    vocab_size = corpus.vocab_size
    unlabeled = num_unlabeled if num_unlabeled is not None else \
        max(4, scale.generating_topics)
    total_topics = unlabeled + len(source)
    alpha = default_alpha(total_topics)
    beta = default_beta(vocab_size)

    source_model = SourceLDA(
        source, num_unlabeled_topics=unlabeled, mu=0.7, sigma=0.3,
        alpha=alpha, beta=beta, min_documents=2, min_proportion=0.05,
        calibration_draws=4).fit(
        corpus, iterations=scale.iterations, seed=seed)

    lda_model = LDA(num_topics=unlabeled + len(
        generator.ground_truth().present_categories),
        alpha=alpha, beta=beta).fit(
        corpus, iterations=scale.iterations, seed=seed)
    ir_labeling = TfidfCosineLabeler(top_n_words=10).label_topics(
        lda_model, source)
    ir_model = FittedTopicModel(
        phi=lda_model.phi, theta=lda_model.theta,
        assignments=lda_model.assignments,
        vocabulary=lda_model.vocabulary,
        topic_labels=ir_labeling.labels,
        metadata=dict(lda_model.metadata))

    ctm_model = CTM(source, num_free_topics=unlabeled,
                    top_n_words=10_000, alpha=alpha, beta=beta).fit(
        corpus, iterations=scale.iterations, seed=seed)

    top_words: dict[str, dict[str, list[str]]] = {}
    for label in TABLE1_LABELS:
        per_model: dict[str, list[str]] = {}
        for name, model in (("SRC-LDA", source_model),
                            ("CTM", ctm_model)):
            topic = _topic_for_label(model, label)
            per_model[name] = (model.top_words(topic, 10)
                               if topic is not None else [])
        ir_topic = _topic_for_label_by_score(
            ir_labeling.score_matrix, ir_labeling.candidate_labels, label)
        per_model["IR-LDA"] = ir_model.top_words(ir_topic, 10)
        # Keep the paper's column order.
        top_words[label] = {name: per_model[name]
                            for name in ("SRC-LDA", "IR-LDA", "CTM")}

    min_tokens = max(5, corpus.num_tokens // (4 * total_topics))
    src_active = [t for t in source_model.metadata.get(
        "active_topics", source_model.topics_used(min_tokens))
        if source_model.topic_labels[int(t)] is not None]
    ctm_active = [t for t in ctm_model.topics_used(min_tokens)
                  if ctm_model.topic_labels[t] is not None]
    ir_active = [t for t in ir_model.topics_used(min_tokens)]
    discovered = {
        "SRC-LDA": len(src_active),
        "CTM": len(ctm_active),
        "IR-LDA": len(ir_active),   # forced: every used topic has a label
    }
    mismatch = {
        "SRC-LDA": _mismatch_rate(
            source_model,
            [(int(t), source_model.topic_labels[int(t)])
             for t in src_active], generator),
        "CTM": _mismatch_rate(
            ctm_model, [(t, ctm_model.topic_labels[t])
                        for t in ctm_active], generator),
        "IR-LDA": _mismatch_rate(
            ir_model, [(t, ir_model.topic_labels[t])
                       for t in ir_active], generator),
    }
    return ReutersResult(
        table_labels=TABLE1_LABELS, top_words=top_words,
        discovered_labeled_topics=discovered, mismatch_rates=mismatch,
        source_lda=source_model, ir_lda=ir_model, ctm=ctm_model,
        generator=generator)


def format_reuters(result: ReutersResult, words_shown: int = 10) -> str:
    """Render Table I plus the discovery and mismatch statistics."""
    blocks = []
    for label in result.table_labels:
        per_model = result.top_words[label]
        names = list(per_model)
        rows = []
        for rank in range(words_shown):
            rows.append([per_model[name][rank]
                         if rank < len(per_model[name]) else ""
                         for name in names])
        blocks.append(format_table(names, rows, title=f"== {label} =="))
    stats_rows = [[name, result.discovered_labeled_topics.get(name, 0),
                   f"{100 * result.mismatch_rates.get(name, float('nan')):.0f}%"]
                  for name in ("SRC-LDA", "IR-LDA", "CTM")]
    blocks.append(format_table(
        ["model", "labeled topics discovered", "top-word mismatch"],
        stats_rows, title="== Discovery and mismatch =="))
    return "\n\n".join(blocks)
