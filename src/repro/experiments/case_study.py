"""The introduction's case study (Section I.1).

Two three-word documents — ``pencil pencil umpire`` and ``ruler ruler
baseball`` — and two knowledge-source topics, "School Supplies" and
"Baseball".  Plain LDA can split the tokens against their semantics
(pairing *pencil* with *baseball*), and once it has, every post-hoc mapping
technique is stuck: both topics contain baseball vocabulary, so both get
labeled "Baseball" (or both "School Supplies").  Source-LDA avoids the trap
because the knowledge source steers inference itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bijective import BijectiveSourceLDA
from repro.knowledge.source import KnowledgeSource
from repro.labeling.counting import CountingLabeler
from repro.labeling.ir_lda import TfidfCosineLabeler
from repro.labeling.js_mapping import JsDivergenceLabeler
from repro.labeling.mapping import TopicLabeler
from repro.labeling.pmi_mapping import PmiLabeler
from repro.models.base import FittedTopicModel
from repro.models.lda import LDA
from repro.experiments.reporting import format_table
from repro.text.corpus import Corpus

CASE_STUDY_DOCUMENTS = ("pencil pencil umpire", "ruler ruler baseball")

#: Miniature knowledge-source articles for the two case-study topics.  The
#: word multiplicities mimic what counting a real encyclopedia article
#: would produce: school-supply words dominate one, baseball words the
#: other, and both mention each corpus word at a plausible rate.
CASE_STUDY_ARTICLES: dict[str, list[str]] = {
    "School Supplies": (
        ["pencil"] * 12 + ["ruler"] * 9 + ["eraser"] * 7
        + ["notebook"] * 6 + ["paper"] * 6 + ["pen"] * 5 + ["crayon"] * 4
        + ["scissors"] * 3 + ["glue"] * 3 + ["backpack"] * 2
        + ["school"] * 8 + ["classroom"] * 4 + ["student"] * 5),
    "Baseball": (
        ["baseball"] * 14 + ["umpire"] * 8 + ["bat"] * 7 + ["ball"] * 9
        + ["pitcher"] * 6 + ["inning"] * 5 + ["glove"] * 4 + ["base"] * 6
        + ["team"] * 5 + ["game"] * 7 + ["strike"] * 4 + ["field"] * 4),
}


def case_study_corpus() -> Corpus:
    """The two-document corpus of Section I.1."""
    return Corpus.from_texts(CASE_STUDY_DOCUMENTS, tokenizer=None)


def case_study_source() -> KnowledgeSource:
    """The two-article knowledge source of Section I.1."""
    return KnowledgeSource(CASE_STUDY_ARTICLES)


def _techniques() -> dict[str, TopicLabeler]:
    return {
        "JS Divergence": JsDivergenceLabeler(),
        "TF-IDF/CS": TfidfCosineLabeler(top_n_words=2),
        "Counting": CountingLabeler(top_n_words=2),
        "PMI": PmiLabeler(top_n_words=2),
    }


def _is_mixed(model: FittedTopicModel) -> bool:
    """Did LDA produce the paper's confused outcome (a school-supply word
    sharing a topic with a baseball word)?"""
    school = {"pencil", "ruler"}
    flat = model.flat_assignments()
    words = [w for doc in case_study_corpus() for w in
             model.vocabulary.decode(doc.word_ids)]
    by_topic: dict[int, set[str]] = {}
    for token_word, topic in zip(words, flat):
        by_topic.setdefault(int(topic), set()).add(token_word)
    for topic_words in by_topic.values():
        has_school = bool(topic_words & school)
        has_ball = bool(topic_words & {"umpire", "baseball"})
        if has_school and has_ball:
            return True
    return False


@dataclass
class CaseStudyResult:
    """Everything the intro table and its Source-LDA contrast reports."""

    lda_seed: int
    lda_assignments: list[list[tuple[str, int]]]
    technique_labels: dict[str, tuple[str, ...]]
    collapsed_techniques: tuple[str, ...]
    source_lda_assignments: list[list[tuple[str, int]]]
    source_lda_labels: tuple[str, ...]
    source_lda_separates: bool


def _readable_assignments(model: FittedTopicModel,
                          corpus: Corpus) -> list[list[tuple[str, int]]]:
    readable = []
    for doc, assignments in zip(corpus, model.assignments):
        words = model.vocabulary.decode(doc.word_ids)
        readable.append([(word, int(topic) + 1)
                         for word, topic in zip(words, assignments)])
    return readable


def run_case_study(iterations: int = 200, max_seed_search: int = 200,
                   ) -> CaseStudyResult:
    """Reproduce the Section I.1 table.

    Scans LDA seeds until the stochastic mixed outcome the paper shows
    appears (it is "very possible", not guaranteed, per the paper), then
    applies all four post-hoc mappers to it and contrasts with Source-LDA.
    """
    corpus = case_study_corpus()
    source = case_study_source()
    mixed_model: FittedTopicModel | None = None
    mixed_seed = -1
    for seed in range(max_seed_search):
        candidate = LDA(num_topics=2, alpha=1.0, beta=0.1).fit(
            corpus, iterations=iterations, seed=seed)
        if _is_mixed(candidate):
            mixed_model, mixed_seed = candidate, seed
            break
    if mixed_model is None:
        raise RuntimeError(
            f"no LDA seed below {max_seed_search} produced the mixed "
            "topics; increase max_seed_search")
    technique_labels = {
        name: labeler.label_topics(mixed_model, source).labels
        for name, labeler in _techniques().items()}
    collapsed = tuple(name for name, labels in technique_labels.items()
                      if len(set(labels)) == 1)

    source_model = BijectiveSourceLDA(source, alpha=1.0).fit(
        corpus, iterations=iterations, seed=0)
    separated = not _is_mixed(source_model)
    return CaseStudyResult(
        lda_seed=mixed_seed,
        lda_assignments=_readable_assignments(mixed_model, corpus),
        technique_labels=technique_labels,
        collapsed_techniques=collapsed,
        source_lda_assignments=_readable_assignments(source_model, corpus),
        source_lda_labels=source_model.topic_labels,
        source_lda_separates=separated)


def format_case_study(result: CaseStudyResult) -> str:
    """Render the case study as the paper's mapping-technique table."""
    rows = [[name, labels[0], labels[1]]
            for name, labels in result.technique_labels.items()]
    table = format_table(["Technique", "Topic 1", "Topic 2"], rows,
                         title="Post-hoc labeling of mixed LDA topics "
                               f"(seed {result.lda_seed})")
    docs = []
    for index, assignment in enumerate(result.lda_assignments, start=1):
        tokens = ", ".join(f"{w}{t}" for w, t in assignment)
        docs.append(f"d{index} - {tokens}")
    source_docs = []
    for index, assignment in enumerate(result.source_lda_assignments,
                                       start=1):
        tokens = ", ".join(f"{w}[{result.source_lda_labels[t - 1]}]"
                           for w, t in assignment)
        source_docs.append(f"d{index} - {tokens}")
    lines = ["LDA assignments:", *docs, "", table, "",
             f"Techniques collapsing both topics to one label: "
             f"{', '.join(result.collapsed_techniques) or '(none)'}", "",
             "Source-LDA assignments (labels attached during inference):",
             *source_docs,
             f"Source-LDA separates the semantic topics: "
             f"{result.source_lda_separates}"]
    return "\n".join(lines)
