"""Console reporting: ASCII tables, box-plot summaries, series.

The paper presents results as figures; a library reproduction prints the
same data as text.  These helpers render aligned tables and five-number
summaries (the information content of a box plot) so every bench target can
emit the rows/series its figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}")
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(str(headers[c])),
                  max((len(row[c]) for row in cells), default=0))
              for c in range(columns)]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[c])
                             for c, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(row[c].ljust(widths[c])
                                for c in range(columns)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        return f"{value:.4g}"
    return str(value)


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary plus mean — the content of one box plot."""

    label: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, label: str, values: np.ndarray) -> "BoxplotSummary":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError(f"no values for box plot {label!r}")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        return cls(label=label, minimum=float(values.min()), q1=float(q1),
                   median=float(median), q3=float(q3),
                   maximum=float(values.max()), mean=float(values.mean()))

    def row(self) -> list[object]:
        return [self.label, self.minimum, self.q1, self.median, self.q3,
                self.maximum, self.mean]


def format_boxplots(summaries: Sequence[BoxplotSummary],
                    title: str | None = None,
                    value_label: str = "value") -> str:
    """Render a set of box-plot summaries as a table."""
    headers = [value_label, "min", "q1", "median", "q3", "max", "mean"]
    return format_table(headers, [s.row() for s in summaries], title=title)


def format_series(x_label: str, xs: Sequence[object],
                  series: dict[str, Sequence[float]],
                  title: str | None = None) -> str:
    """Render one-or-more y-series against a shared x axis (figure lines)."""
    lengths = {name: len(ys) for name, ys in series.items()}
    for name, length in lengths.items():
        if length != len(xs):
            raise ValueError(
                f"series {name!r} has {length} points, x axis has "
                f"{len(xs)}")
    headers = [x_label] + list(series)
    rows = [[xs[i]] + [series[name][i] for name in series]
            for i in range(len(xs))]
    return format_table(headers, rows, title=title)
