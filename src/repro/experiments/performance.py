"""Performance benchmarking (Section IV.E, Fig. 8f).

The paper generates corpora over knowledge sources of ``B`` = 100 .. 10,000
topics and plots average Gibbs-iteration time for 1, 3 and 6 parallel
units, demonstrating (i) linear scaling in the number of topics and (ii)
speedup from the parallel sampling algorithms.

The authors' testbed ran native threads; our substrate is Python, where
per-token thread dispatch costs more than the arithmetic it parallelizes
for small ``B``.  We therefore report both:

* **measured** per-iteration wall-clock times with the real thread pool
  executing Algorithm 3's chunked scans, and
* **modeled** times from the algorithms' ``O(Max[T/P, P])`` critical path,
  anchored to the measured single-thread cost — the shape the paper's
  figure asserts.

Alongside Fig. 8f, :func:`run_engine_speedup` reports the fast-vs-
reference sweep-engine throughput (tokens/sec) on a Source-LDA workload:
the fast engine's incremental lambda-integration caches
(:mod:`repro.sampling.fast_engine`) drop the per-token cost from
``O(S * A)`` to ``O(S)``, which is what lets the paper-scale ``B``
values run at all on this substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.bijective import BijectiveSourceLDA
from repro.core.kernels import SourceTopicsKernel
from repro.core.priors import SourcePrior
from repro.experiments.config import LAPTOP, ExperimentScale
from repro.experiments.reporting import format_table
from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import make_lexicon, zipf_probabilities
from repro.models.base import default_alpha
from repro.sampling.alias_engine import DEFAULT_REBUILD_EVERY
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.integration import LambdaGrid
from repro.sampling.parallel import WorkerPool
from repro.sampling.rng import ensure_rng
from repro.sampling.simple_parallel import SimpleParallelScan
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


def random_topic_source(num_topics: int, vocab_size: int = 400,
                        article_length: int = 60,
                        seed: int = 0) -> KnowledgeSource:
    """Topics "generated randomly from a given vocabulary" (Section IV.E)."""
    if num_topics < 1:
        raise ValueError(f"num_topics must be >= 1, got {num_topics}")
    rng = ensure_rng(seed)
    lexicon = make_lexicon(vocab_size, seed=seed)
    pmf = zipf_probabilities(vocab_size)
    articles = {}
    for index in range(num_topics):
        order = rng.permutation(vocab_size)
        draws = rng.choice(vocab_size, size=article_length, p=pmf)
        articles[f"topic-{index:05d}"] = [lexicon[order[d]] for d in draws]
    return KnowledgeSource(articles)


@dataclass(frozen=True)
class ScalingRow:
    """One x position of Fig. 8(f)."""

    num_topics: int
    measured_seconds: dict[int, float]
    modeled_seconds: dict[int, float]


@dataclass
class ScalingResult:
    rows: list[ScalingRow]
    thread_counts: tuple[int, ...]

    def is_linear_in_topics(self, tolerance: float = 0.35) -> bool:
        """Does single-thread time grow linearly with B (Fig. 8f's
        claim)?  Checks the correlation of time against B."""
        if len(self.rows) < 3:
            return True
        topics = np.array([row.num_topics for row in self.rows],
                          dtype=np.float64)
        times = np.array([row.measured_seconds[1] for row in self.rows])
        correlation = np.corrcoef(topics, times)[0, 1]
        return bool(correlation > 1.0 - tolerance)


def _modeled_time(serial_seconds: float, num_topics: int,
                  threads: int) -> float:
    """Critical-path model: work shrinks to ``Max[T/P, P]`` per token."""
    critical = max(num_topics / threads, threads)
    return serial_seconds * critical / num_topics


def run_scaling(scale: ExperimentScale = LAPTOP,
                topic_counts: list[int] | None = None,
                thread_counts: tuple[int, ...] = (1, 3, 6),
                num_documents: int = 10,
                document_length: int = 40,
                iterations: int = 2,
                seed: int = 0) -> ScalingResult:
    """Measure average iteration time vs knowledge-source size."""
    if topic_counts is None:
        topic_counts = [100, 250, 500, 1000, 2000]
    rows = []
    rng = ensure_rng(seed)
    for num_topics in topic_counts:
        source = random_topic_source(num_topics, seed=seed)
        vocabulary = source.vocabulary().freeze()
        id_lists = [rng.integers(0, len(vocabulary),
                                 size=document_length).tolist()
                    for _ in range(num_documents)]
        corpus = Corpus.from_word_id_lists(id_lists, vocabulary)
        measured: dict[int, float] = {}
        modeled: dict[int, float] = {}
        for threads in thread_counts:
            with WorkerPool(threads) as pool:
                scan = SimpleParallelScan(blocks=max(threads, 1),
                                          pool=pool if threads > 1
                                          else None)
                model = BijectiveSourceLDA(source, alpha=0.5, scan=scan)
                start = perf_counter()
                fitted = model.fit(corpus, iterations=iterations,
                                   seed=seed)
                elapsed = perf_counter() - start
            iteration_seconds = fitted.metadata["iteration_seconds"]
            measured[threads] = float(np.mean(iteration_seconds)) \
                if iteration_seconds else elapsed / max(iterations, 1)
        serial = measured[thread_counts[0]]
        for threads in thread_counts:
            modeled[threads] = _modeled_time(serial, num_topics, threads)
        rows.append(ScalingRow(num_topics=num_topics, measured_seconds=dict(
            measured), modeled_seconds=modeled))
    return ScalingResult(rows=rows, thread_counts=thread_counts)


@dataclass(frozen=True)
class EngineSpeedup:
    """Sweep throughput of all three engines on one Source-LDA workload."""

    num_topics: int
    approximation_steps: int
    num_tokens: int
    reference_tokens_per_second: float
    fast_tokens_per_second: float
    sparse_tokens_per_second: float
    exact: bool
    sparse_consistent: bool

    @property
    def speedup(self) -> float:
        """Fast over reference."""
        return (self.fast_tokens_per_second
                / self.reference_tokens_per_second)

    @property
    def sparse_speedup(self) -> float:
        """Sparse over reference."""
        return (self.sparse_tokens_per_second
                / self.reference_tokens_per_second)

    @property
    def sparse_vs_fast(self) -> float:
        """Sparse over fast — the bucketed sampler's marginal win."""
        return (self.sparse_tokens_per_second
                / self.fast_tokens_per_second)


def _time_source_sweeps(corpus: Corpus, prior: SourcePrior,
                        grid: LambdaGrid, tables, engine: str,
                        alpha: float, seed: int, sweeps: int,
                        backend: str = "auto",
                        rebuild_every: int | str = DEFAULT_REBUILD_EVERY,
                        ) -> tuple[float, np.ndarray, bool, float | None]:
    """Best-sweep tokens/sec of one engine on a Source-LDA workload.

    All engines run from identical init and draw seeds (one warm-up
    sweep, then ``sweeps`` timed ones; the fastest is reported because
    per-sweep work is identical, so the minimum is the least
    noise-contaminated estimate on a shared machine).  Returns the
    throughput, the final assignments, the count-matrix consistency
    flag and the alias engine's MH acceptance rate (``None`` for the
    other engines).
    """
    state = GibbsState(corpus, prior.num_topics)
    state.initialize_random(ensure_rng(seed + 1))
    kernel = SourceTopicsKernel(state, num_free=0, alpha=alpha,
                                beta=1.0, tables=tables, grid=grid)
    sampler = CollapsedGibbsSampler(state, kernel, ensure_rng(seed + 2),
                                    engine=engine, backend=backend,
                                    rebuild_every=rebuild_every)
    sampler.sweep()  # warm-up: caches, allocator, branch predictors
    best = np.inf
    for _ in range(sweeps):
        start = perf_counter()
        sampler.sweep()
        best = min(best, perf_counter() - start)
    return (state.num_tokens / best, state.z.copy(),
            state.counts_consistent(), sampler.acceptance_rate)


def _source_workload(num_topics: int, vocab_size: int,
                     num_documents: int, document_length: int,
                     approximation_steps: int, seed: int
                     ) -> tuple[Corpus, SourcePrior, LambdaGrid, object]:
    """The Section IV.E random-topic workload shared by the engine
    benches."""
    source = random_topic_source(num_topics, vocab_size=vocab_size,
                                 article_length=80, seed=seed)
    vocabulary = source.vocabulary().freeze()
    rng = ensure_rng(seed)
    id_lists = [rng.integers(0, len(vocabulary),
                             size=document_length).tolist()
                for _ in range(num_documents)]
    corpus = Corpus.from_word_id_lists(id_lists, vocabulary)
    prior = SourcePrior(source, vocabulary)
    grid = LambdaGrid.from_prior(0.7, 0.3, steps=approximation_steps)
    tables = prior.grid_tables(grid.nodes)
    return corpus, prior, grid, tables


def run_engine_speedup(num_topics: int = 2000,
                       approximation_steps: int = 16,
                       num_documents: int = 30,
                       document_length: int = 60,
                       vocab_size: int = 500,
                       sweeps: int = 2,
                       seed: int = 0,
                       alpha: float | None = None) -> EngineSpeedup:
    """Time reference vs fast vs sparse sweeps of the Source-LDA kernel.

    All engines run from identical init and draw seeds (one warm-up
    sweep, then ``sweeps`` timed ones).  ``exact`` records whether the
    fast engine produced byte-identical assignments to the reference
    (its contract); the sparse engine is statistically rather than
    draw-for-draw equivalent, so ``sparse_consistent`` records the
    count-matrix invariant instead.

    ``alpha`` defaults to the paper's symmetric document-topic prior
    ``50 / T`` (:func:`repro.models.base.default_alpha`); the prior
    governs how much of the conditional mass sits in the sparse
    engine's O(nnz) count buckets versus its prior bucket.
    """
    if alpha is None:
        alpha = default_alpha(num_topics)
    corpus, prior, grid, tables = _source_workload(
        num_topics, vocab_size, num_documents, document_length,
        approximation_steps, seed)

    throughput: dict[str, float] = {}
    assignments: dict[str, np.ndarray] = {}
    num_tokens = corpus.num_tokens
    sparse_consistent = False
    for engine in ("reference", "fast", "sparse"):
        # Pinned to the python backend: this bench compares *engines*,
        # and its `exact` flag asserts the python-lane draw-identity
        # contract — on "auto" a compiled fast lane would measure the
        # backend swap instead (run_backend_speedup covers that axis).
        tps, final_z, consistent, _acceptance = _time_source_sweeps(
            corpus, prior, grid, tables, engine, alpha, seed, sweeps,
            backend="python")
        throughput[engine] = tps
        assignments[engine] = final_z
        if engine == "sparse":
            sparse_consistent = consistent
    return EngineSpeedup(
        num_topics=num_topics,
        approximation_steps=approximation_steps,
        num_tokens=num_tokens,
        reference_tokens_per_second=throughput["reference"],
        fast_tokens_per_second=throughput["fast"],
        sparse_tokens_per_second=throughput["sparse"],
        exact=bool(np.array_equal(assignments["reference"],
                                  assignments["fast"])),
        sparse_consistent=sparse_consistent)


def format_engine_speedup(result: EngineSpeedup) -> str:
    table = format_table(
        ["engine", "tokens/sec"],
        [["reference", result.reference_tokens_per_second],
         ["fast", result.fast_tokens_per_second],
         ["sparse", result.sparse_tokens_per_second]],
        title=(f"Sweep engines - Source-LDA, B={result.num_topics}, "
               f"A={result.approximation_steps}, "
               f"{result.num_tokens} tokens"))
    return (f"{table}\n"
            f"fast/reference: {result.speedup:.2f}x | "
            f"sparse/reference: {result.sparse_speedup:.2f}x | "
            f"sparse/fast: {result.sparse_vs_fast:.2f}x\n"
            f"fast byte-identical to reference: {result.exact} | "
            f"sparse counts consistent: {result.sparse_consistent}")


@dataclass
class BackendSpeedup:
    """Engine-by-backend sweep throughput on one Source-LDA workload."""

    num_topics: int
    approximation_steps: int
    num_tokens: int
    engines: tuple[str, ...]
    #: engine -> backend -> best-sweep tokens/sec; ``None`` marks a
    #: backend that is not installed on this machine (recorded rather
    #: than dropped so the bench gate can skip it with a reason).
    tokens_per_second: dict[str, dict[str, float | None]]
    #: engine -> backend -> count-matrix consistency (``None`` when the
    #: backend was not timed).
    consistent: dict[str, dict[str, bool | None]]
    #: backend -> alias-engine MH acceptance rate (``None`` when the
    #: alias engine or the backend was not timed).
    acceptance_rate: dict[str, float | None]

    @property
    def compiled_vs_python(self) -> dict[str, float | None]:
        """Per-engine numba/python throughput ratio; ``None`` where a
        side was not timed (numba not installed, subset run)."""
        ratios: dict[str, float | None] = {}
        for engine in self.engines:
            series = self.tokens_per_second.get(engine, {})
            numba = series.get("numba")
            python = series.get("python")
            ratios[engine] = (numba / python
                              if numba and python else None)
        return ratios


def run_backend_speedup(num_topics: int = 2000,
                        approximation_steps: int = 16,
                        num_documents: int = 30,
                        document_length: int = 60,
                        vocab_size: int = 2000,
                        sweeps: int = 2,
                        seed: int = 0,
                        engines: tuple[str, ...] = ("fast", "sparse",
                                                    "alias"),
                        alpha: float | None = None,
                        backends: tuple[str, ...] = ("python", "numba")
                        ) -> BackendSpeedup:
    """Time sweep engines under every requested token-loop backend.

    The workload is the B=2000 Source-LDA configuration of
    :func:`run_engine_speedup`.  A backend in ``backends`` that is not
    registered in :mod:`repro.sampling.runtime` (numba not installed)
    records ``None`` for its series instead of dropping them — the
    bench JSON then carries an explicit "not measured here" marker that
    ``benchmarks/compare.py`` skips with a reason.  Backends sample the
    same chain-shape from identical seeds; the compiled lanes are
    distributional (not draw-for-draw) mirrors, so per-backend
    count-matrix consistency is recorded instead of assignment
    equality.  The alias engine's MH acceptance rate is stamped per
    backend (the source-mode alias lane stays interpreted under numba,
    so its two columns measure the same lane today).
    """
    from repro.sampling.runtime import available_backends
    if alpha is None:
        alpha = default_alpha(num_topics)
    available = available_backends()
    corpus, prior, grid, tables = _source_workload(
        num_topics, vocab_size, num_documents, document_length,
        approximation_steps, seed)
    throughput: dict[str, dict[str, float | None]] = {}
    consistent: dict[str, dict[str, bool | None]] = {}
    acceptance: dict[str, float | None] = {}
    for engine in engines:
        throughput[engine] = {}
        consistent[engine] = {}
        for backend in backends:
            if backend not in available:
                throughput[engine][backend] = None
                consistent[engine][backend] = None
                if engine == "alias":
                    acceptance[backend] = None
                continue
            tps, _final_z, ok, rate = _time_source_sweeps(
                corpus, prior, grid, tables, engine, alpha, seed,
                sweeps, backend=backend)
            throughput[engine][backend] = tps
            consistent[engine][backend] = ok
            if engine == "alias":
                acceptance[backend] = rate
    return BackendSpeedup(
        num_topics=num_topics,
        approximation_steps=approximation_steps,
        num_tokens=corpus.num_tokens,
        engines=tuple(engines),
        tokens_per_second=throughput,
        consistent=consistent,
        acceptance_rate=acceptance)


def format_backend_speedup(result: BackendSpeedup) -> str:
    rows = []
    for engine in result.engines:
        for backend, tps in sorted(
                result.tokens_per_second[engine].items()):
            rows.append([engine, backend,
                         "n/a" if tps is None else tps])
    table = format_table(
        ["engine", "backend", "tokens/sec"], rows,
        title=(f"Token-loop backends - Source-LDA, "
               f"B={result.num_topics}, "
               f"A={result.approximation_steps}, "
               f"{result.num_tokens} tokens"))
    ratios = result.compiled_vs_python
    if any(ratio is not None for ratio in ratios.values()):
        tail = " | ".join(
            f"{engine} numba/python: "
            + (f"{ratio:.2f}x" if ratio is not None else "n/a")
            for engine, ratio in ratios.items())
    else:
        tail = "numba backend not installed (python only)"
    rates = {backend: rate
             for backend, rate in result.acceptance_rate.items()
             if rate is not None}
    if rates:
        tail += "\nalias MH acceptance: " + ", ".join(
            f"{backend} {rate:.3f}"
            for backend, rate in sorted(rates.items()))
    return f"{table}\n{tail}"


@dataclass(frozen=True)
class SparseScalingRow:
    """Sparse/alias-vs-fast throughput at one source size ``B``."""

    num_topics: int
    fast_tokens_per_second: float
    sparse_tokens_per_second: float
    sparse_consistent: bool
    alias_tokens_per_second: float
    alias_consistent: bool
    alias_acceptance_rate: float | None
    alias_auto_tokens_per_second: float
    """Alias engine with ``rebuild_every="auto"`` — the table-rebuild
    cadence scaled to ``B`` by
    :func:`~repro.sampling.alias_engine.resolve_rebuild_every` instead
    of the fixed default."""
    alias_auto_consistent: bool

    @property
    def sparse_vs_fast(self) -> float:
        return (self.sparse_tokens_per_second
                / self.fast_tokens_per_second)

    @property
    def alias_vs_sparse(self) -> float:
        return (self.alias_tokens_per_second
                / self.sparse_tokens_per_second)

    @property
    def auto_vs_alias(self) -> float:
        return (self.alias_auto_tokens_per_second
                / self.alias_tokens_per_second)


@dataclass
class SparseScalingResult:
    rows: list[SparseScalingRow]
    approximation_steps: int
    num_tokens: int


def run_sparse_scaling(topic_grid: tuple[int, ...] = (500, 2000, 8000),
                       approximation_steps: int = 16,
                       num_documents: int = 20,
                       document_length: int = 50,
                       vocab_size: int = 1000,
                       sweeps: int = 2,
                       seed: int = 0) -> SparseScalingResult:
    """Sparse/alias-vs-fast tokens/sec across a grid of sizes ``B``.

    The fast engine's per-token cost is O(S) (weight pass plus a full
    cumulative sum); the sparse engine's bucket walks touch only the
    nonzero count topics, so its advantage should *grow* with ``B`` —
    the ROADMAP claim this bench pins down.  The alias engine's MH
    proposals are O(1) amortized per token, so *its* advantage over
    sparse should in turn grow with ``B`` (the stale word tables
    amortize their O(B) rebuild over ``rebuild_every`` draws while the
    sparse walk still scans the nonzero topics of every row).  The
    reference engine is omitted: at the top of the grid its O(S * A)
    per-token cost would dominate the bench for no extra information.
    """
    if len(topic_grid) < 2:
        raise ValueError(
            f"topic_grid needs at least two sizes, got {topic_grid}")
    rows = []
    num_tokens = 0
    for num_topics in topic_grid:
        alpha = default_alpha(num_topics)
        corpus, prior, grid, tables = _source_workload(
            num_topics, vocab_size, num_documents, document_length,
            approximation_steps, seed)
        num_tokens = corpus.num_tokens
        # Pinned to the python backend like run_engine_speedup: the
        # sparse/fast and alias/sparse ratios are engine comparisons,
        # and the compiled backend covers only part of the lanes today.
        fast_tps, _, _, _ = _time_source_sweeps(
            corpus, prior, grid, tables, "fast", alpha, seed, sweeps,
            backend="python")
        sparse_tps, _, sparse_ok, _ = _time_source_sweeps(
            corpus, prior, grid, tables, "sparse", alpha, seed, sweeps,
            backend="python")
        alias_tps, _, alias_ok, acceptance = _time_source_sweeps(
            corpus, prior, grid, tables, "alias", alpha, seed, sweeps,
            backend="python")
        # The same engine with rebuild_every="auto": the rebuild
        # cadence stretches with B (B // 64 past the default), so the
        # O(B) table rebuilds stay amortized at the top of the grid.
        auto_tps, _, auto_ok, _ = _time_source_sweeps(
            corpus, prior, grid, tables, "alias", alpha, seed, sweeps,
            backend="python", rebuild_every="auto")
        rows.append(SparseScalingRow(
            num_topics=num_topics,
            fast_tokens_per_second=fast_tps,
            sparse_tokens_per_second=sparse_tps,
            sparse_consistent=sparse_ok,
            alias_tokens_per_second=alias_tps,
            alias_consistent=alias_ok,
            alias_acceptance_rate=acceptance,
            alias_auto_tokens_per_second=auto_tps,
            alias_auto_consistent=auto_ok))
    return SparseScalingResult(rows=rows,
                               approximation_steps=approximation_steps,
                               num_tokens=num_tokens)


def format_sparse_scaling(result: SparseScalingResult) -> str:
    table = format_table(
        ["topics (B)", "fast tok/s", "sparse tok/s", "sparse/fast",
         "alias tok/s", "alias/sparse", "MH accept",
         "alias-auto tok/s", "auto/alias"],
        [[row.num_topics, row.fast_tokens_per_second,
          row.sparse_tokens_per_second, row.sparse_vs_fast,
          row.alias_tokens_per_second, row.alias_vs_sparse,
          "n/a" if row.alias_acceptance_rate is None
          else row.alias_acceptance_rate,
          row.alias_auto_tokens_per_second, row.auto_vs_alias]
         for row in result.rows],
        title=(f"Sparse/alias engine advantage vs B - "
               f"A={result.approximation_steps}, "
               f"{result.num_tokens} tokens"))
    consistent = all(row.sparse_consistent and row.alias_consistent
                     and row.alias_auto_consistent
                     for row in result.rows)
    return (f"{table}\nsparse+alias counts consistent at every B: "
            f"{consistent}")


@dataclass(frozen=True)
class ServingThroughputRow:
    """Fold-in serving throughput at one batch size."""

    batch_size: int
    docs_per_second: float
    tokens_per_second: float


@dataclass
class ServingThroughput:
    rows: list[ServingThroughputRow]
    num_topics: int
    num_query_documents: int
    query_document_length: int
    foldin_iterations: int
    mode: str
    model_class: str


def _serving_workload(num_source_topics: int, vocab_size: int,
                      num_train_documents: int,
                      train_document_length: int, train_iterations: int,
                      num_query_documents: int,
                      query_document_length: int, seed: int):
    """Fitted bijective Source-LDA model plus raw-text queries — the
    one workload every serving bench times, shared so their docs/sec
    figures stay comparable (the serving twin of the sweep benches'
    ``_source_workload``).

    Query text is drawn from the full Zipf lexicon: mostly
    in-vocabulary, with the tail words exercising the OOV-drop path.
    """
    source = random_topic_source(num_source_topics,
                                 vocab_size=vocab_size,
                                 article_length=80, seed=seed)
    vocabulary = source.vocabulary().freeze()
    rng = ensure_rng(seed)
    id_lists = [rng.integers(0, len(vocabulary),
                             size=train_document_length).tolist()
                for _ in range(num_train_documents)]
    corpus = Corpus.from_word_id_lists(id_lists, vocabulary)
    fitted = BijectiveSourceLDA(source, alpha=0.5).fit(
        corpus, iterations=train_iterations, seed=seed)
    lexicon = make_lexicon(vocab_size, seed=seed)
    pmf = zipf_probabilities(vocab_size)
    queries = [" ".join(
        lexicon[i] for i in rng.choice(vocab_size,
                                       size=query_document_length, p=pmf))
        for _ in range(num_query_documents)]
    return fitted, queries


def run_serving_throughput(num_source_topics: int = 40,
                           vocab_size: int = 300,
                           num_train_documents: int = 40,
                           train_document_length: int = 80,
                           train_iterations: int = 15,
                           num_query_documents: int = 48,
                           query_document_length: int = 40,
                           foldin_iterations: int = 20,
                           batch_sizes: tuple[int, ...] = (1, 8, 32),
                           mode: str = "sparse",
                           seed: int = 0) -> ServingThroughput:
    """Time the full save -> load -> serve path of ``repro.serving``.

    Fits a bijective Source-LDA model on a random-topic workload,
    persists it through :func:`repro.serving.save_model`, reloads it,
    and serves batches of raw-text query documents (drawn from the same
    Zipf lexicon, so a realistic fraction is in-vocabulary) through an
    :class:`~repro.serving.InferenceSession` at each batch size.
    """
    import tempfile

    from repro.serving import InferenceSession, load_model, save_model

    fitted, queries = _serving_workload(
        num_source_topics, vocab_size, num_train_documents,
        train_document_length, train_iterations, num_query_documents,
        query_document_length, seed)

    with tempfile.TemporaryDirectory() as tmp:
        save_model(fitted, f"{tmp}/model", model_class="BijectiveSourceLDA")
        loaded = load_model(f"{tmp}/model")
    rows = []
    for batch_size in batch_sizes:
        session = InferenceSession(loaded, iterations=foldin_iterations,
                                   mode=mode, batch_size=batch_size,
                                   seed=seed)
        session.theta(queries[:batch_size])  # warm-up: buffers, caches
        start = perf_counter()
        result = session.infer(queries)
        elapsed = perf_counter() - start
        rows.append(ServingThroughputRow(
            batch_size=batch_size,
            docs_per_second=num_query_documents / elapsed,
            tokens_per_second=float(result.num_tokens.sum()) / elapsed))
    return ServingThroughput(rows=rows,
                             num_topics=fitted.num_topics,
                             num_query_documents=num_query_documents,
                             query_document_length=query_document_length,
                             foldin_iterations=foldin_iterations,
                             mode=mode,
                             model_class="BijectiveSourceLDA")


@dataclass(frozen=True)
class ParallelServingRow:
    """Serving throughput at one worker count."""

    num_workers: int
    docs_per_second: float
    tokens_per_second: float
    #: Per-worker ``busy_seconds / wall`` over the timed batch, keyed by
    #: worker pid (the inline path reports the parent pid).  On a
    #: single-core host these sum to ~1 at every worker count — the
    #: machine-visible reason the docs/sec column is flat there.
    worker_utilization: dict[str, float]
    #: Mean of the per-worker fractions: busy / (wall * workers).
    pool_utilization: float


@dataclass
class ParallelServing:
    rows: list[ParallelServingRow]
    deterministic: bool
    """Same seed ⇒ bit-identical theta across every worker count AND
    across a v1 (in-memory) vs v2 (mmap) artifact load."""
    phi_mmapped: bool
    num_cores: int
    num_topics: int
    num_query_documents: int
    query_document_length: int
    foldin_iterations: int
    mode: str


def run_parallel_serving(num_source_topics: int = 40,
                         vocab_size: int = 300,
                         num_train_documents: int = 40,
                         train_document_length: int = 80,
                         train_iterations: int = 15,
                         num_query_documents: int = 64,
                         query_document_length: int = 40,
                         foldin_iterations: int = 20,
                         worker_counts: tuple[int, ...] = (1, 2, 4),
                         mode: str = "sparse",
                         seed: int = 0) -> ParallelServing:
    """Worker-sharded serving: docs/sec at several worker counts, plus
    the determinism contract of :mod:`repro.serving.parallel`.

    The model is persisted twice — a v1 artifact (phi inside the
    compressed npz) and a schema-v2 artifact whose uncompressed phi
    member is memory-mapped — and both must serve bit-identical theta
    on a fixed seed at *every* worker count (per-document RNG streams
    make shard boundaries invisible).  Throughput rows time the v2/mmap
    path end to end, worker pool spin-up excluded (a warm-up batch
    spawns it, as a long-lived server would), and carry each worker's
    ``busy_seconds / wall`` utilization from the telemetry recorder —
    on a one-core host the fractions sum to ~1 however many workers
    run, which is why the throughput column is flat there.
    """
    import tempfile

    from repro.serving import (InferenceSession, available_cpus,
                               load_model, save_model)
    from repro.telemetry import InMemoryRecorder

    fitted, queries = _serving_workload(
        num_source_topics, vocab_size, num_train_documents,
        train_document_length, train_iterations, num_query_documents,
        query_document_length, seed)

    rows = []
    deterministic = True
    reference_theta = None
    with tempfile.TemporaryDirectory() as tmp:
        save_model(fitted, f"{tmp}/v1", model_class="BijectiveSourceLDA")
        save_model(fitted, f"{tmp}/v2", model_class="BijectiveSourceLDA",
                   mmap_phi=True)
        loaded_v1 = load_model(f"{tmp}/v1")
        loaded_v2 = load_model(f"{tmp}/v2", mmap_phi=True)
        for workers in worker_counts:
            recorder = InMemoryRecorder()
            with InferenceSession(loaded_v2,
                                  iterations=foldin_iterations,
                                  mode=mode, seed=seed,
                                  num_workers=workers,
                                  recorder=recorder) as session:
                session.theta(queries[:4])  # warm-up: pool + buffers
                recorder.reset()  # utilization covers the timed batch
                start = perf_counter()
                result = session.infer(queries)
                elapsed = perf_counter() - start
            busy = recorder.counter_series(
                "serving.worker.busy_seconds")
            rows.append(ParallelServingRow(
                num_workers=workers,
                docs_per_second=num_query_documents / elapsed,
                tokens_per_second=float(result.num_tokens.sum())
                / elapsed,
                worker_utilization={
                    str(dict(labels).get("worker")): value / elapsed
                    for labels, value in sorted(busy.items())},
                pool_utilization=sum(busy.values())
                / (elapsed * workers)))
            # Determinism probe at this worker count: fixed seed 123,
            # both artifact flavors.
            for loaded in (loaded_v1, loaded_v2):
                with InferenceSession(loaded,
                                      iterations=foldin_iterations,
                                      mode=mode, seed=123,
                                      num_workers=workers) as probe:
                    theta = probe.theta(queries)
                if reference_theta is None:
                    reference_theta = theta
                elif not np.array_equal(reference_theta, theta):
                    deterministic = False
        phi_mmapped = loaded_v2.phi_mmapped
    return ParallelServing(rows=rows, deterministic=deterministic,
                           phi_mmapped=phi_mmapped,
                           num_cores=available_cpus(),
                           num_topics=fitted.num_topics,
                           num_query_documents=num_query_documents,
                           query_document_length=query_document_length,
                           foldin_iterations=foldin_iterations,
                           mode=mode)


@dataclass(frozen=True)
class ElasticServingRow:
    """Per-request latency percentiles for one hedging setting."""

    hedging: bool
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_seconds: float
    hedges_issued: int
    hedges_won: int
    wasted_tokens: int


@dataclass
class ElasticServing:
    rows: list[ElasticServingRow]
    """Exactly two rows: hedging off, then hedging on."""
    deterministic: bool
    """Hedged theta bit-identical to unhedged theta on every request."""
    p99_ratio: float
    """Hedged p99 / unhedged p99 — the tail-rescue factor."""
    elastic_deterministic: bool
    """Elastic-pool (min != max workers) theta bit-identical to the
    inline single-worker reference across a resize-forcing sequence."""
    pool_grown: int
    pool_shrunk: int
    straggler_sleep_seconds: float
    num_requests: int
    docs_per_request: int
    num_workers: int
    task_docs: int
    num_topics: int
    foldin_iterations: int
    mode: str


def _latency_percentile(latencies: list[float], q: float) -> float:
    """Exact nearest-rank percentile (matches the telemetry
    histograms' convention — no interpolation)."""
    data = sorted(latencies)
    return data[max(1, math.ceil(q * len(data))) - 1]


def run_elastic_serving(num_topics: int = 32,
                        vocab_size: int = 300,
                        num_requests: int = 16,
                        docs_per_request: int = 8,
                        foldin_iterations: int = 20,
                        num_workers: int = 4,
                        task_docs: int = 1,
                        straggler_sleep: float = 0.5,
                        mode: str = "sparse",
                        seed: int = 0) -> ElasticServing:
    """Tail latency under a reproducible straggler: hedging off vs on.

    One pool worker is made a deterministic straggler via the
    :class:`~repro.serving.parallel.WorkerFault` hook (it sleeps
    ``straggler_sleep`` seconds per task — a stall, not CPU work, so
    the measurement holds even on a one-core host).  Every request is
    a skewed batch (mostly short documents plus one heavy one), served
    twice with identical per-request seeds: once with hedging
    disabled, where each request's latency is pinned to the straggler,
    and once under an aggressive :class:`HedgePolicy`, where the
    dispatcher re-submits the stuck task to a healthy worker and the
    first result wins.  Theta must be bit-identical between the two
    runs (per-document RNG streams make the duplicate execution
    invisible), and the hedge counters price the rescue in wasted
    tokens.

    A third, fault-free pass drives an elastic pool
    (``min_workers=1 .. num_workers``) through a resize-forcing batch
    sequence and checks it against the inline single-worker reference.
    """
    from repro.serving import (FoldInEngine, HedgePolicy,
                               ParallelFoldIn, WorkerFault)
    from repro.telemetry import InMemoryRecorder

    rng = ensure_rng(seed)
    phi = rng.dirichlet(np.ones(vocab_size), size=num_topics)
    requests = []
    for _ in range(num_requests):
        lengths = rng.integers(8, 24, size=docs_per_request)
        lengths[int(rng.integers(docs_per_request))] = 120  # heavy doc
        requests.append([rng.integers(0, vocab_size, size=int(n))
                         for n in lengths])
    fault = WorkerFault(sleep_seconds=straggler_sleep, rank=0)
    # Anchor the hedge threshold to the *median* healthy-task latency.
    # Hedged wins are observed at threshold + rescue time; with one
    # straggler in ``docs_per_request`` tasks those slow observations
    # make up ~1/8 of the window, so a q90 nearest-rank cut can land on
    # them and escalate the threshold run over run.  The median cannot.
    policy = HedgePolicy(quantile=0.5, multiplier=3.0, min_wait=0.02,
                         max_hedges=2)

    def serve(hedge):
        engine = FoldInEngine(phi, 0.5, iterations=foldin_iterations,
                              mode=mode)
        recorder = InMemoryRecorder()
        thetas, latencies = [], []
        with ParallelFoldIn(engine, num_workers=num_workers,
                            recorder=recorder, task_docs=task_docs,
                            hedge=hedge, fault=fault) as foldin:
            foldin.warm_up()
            for index, docs in enumerate(requests):
                start = perf_counter()
                thetas.append(foldin.theta(
                    docs, seed=np.random.SeedSequence([seed, index])))
                latencies.append(perf_counter() - start)
        # Pool drained: the loser-side wasted_tokens counter is final.
        return thetas, latencies, recorder

    rows = []
    all_thetas = []
    for hedge in (None, policy):
        thetas, latencies, recorder = serve(hedge)
        all_thetas.append(thetas)
        rows.append(ElasticServingRow(
            hedging=hedge is not None,
            p50_seconds=_latency_percentile(latencies, 0.50),
            p95_seconds=_latency_percentile(latencies, 0.95),
            p99_seconds=_latency_percentile(latencies, 0.99),
            mean_seconds=sum(latencies) / len(latencies),
            hedges_issued=int(recorder.counter_total(
                "serving.hedge.issued")),
            hedges_won=int(recorder.counter_total(
                "serving.hedge.won")),
            wasted_tokens=int(recorder.counter_total(
                "serving.hedge.wasted_tokens"))))
    deterministic = all(
        np.array_equal(unhedged, hedged)
        for unhedged, hedged in zip(*all_thetas))

    # Elastic pool: no fault, batch sizes force a grow, a patient
    # shrink, and a regrow; theta must match the inline reference.
    engine = FoldInEngine(phi, 0.5, iterations=foldin_iterations,
                          mode=mode)
    reference = ParallelFoldIn(FoldInEngine(
        phi, 0.5, iterations=foldin_iterations, mode=mode))
    pattern = [requests[0], requests[1][:2], requests[2][:2],
               requests[3][:2], requests[0]]
    elastic_recorder = InMemoryRecorder()
    elastic_deterministic = True
    with ParallelFoldIn(engine, num_workers=1, min_workers=1,
                        max_workers=num_workers,
                        recorder=elastic_recorder,
                        task_docs=task_docs) as foldin:
        for index, docs in enumerate(pattern):
            call_seed = [seed, 7, index]
            got = foldin.theta(
                docs, seed=np.random.SeedSequence(call_seed))
            want = reference.theta(
                docs, seed=np.random.SeedSequence(call_seed))
            if not np.array_equal(got, want):
                elastic_deterministic = False

    return ElasticServing(
        rows=rows, deterministic=deterministic,
        p99_ratio=rows[1].p99_seconds / rows[0].p99_seconds,
        elastic_deterministic=elastic_deterministic,
        pool_grown=int(elastic_recorder.counter_total(
            "serving.pool.grown")),
        pool_shrunk=int(elastic_recorder.counter_total(
            "serving.pool.shrunk")),
        straggler_sleep_seconds=straggler_sleep,
        num_requests=num_requests,
        docs_per_request=docs_per_request,
        num_workers=num_workers, task_docs=task_docs,
        num_topics=num_topics,
        foldin_iterations=foldin_iterations, mode=mode)


@dataclass(frozen=True)
class ShardedServingRow:
    """Serving throughput + mapped-phi footprint at one shard layout."""

    target_shards: int
    num_shards: int
    shard_words: int
    docs_per_second: float
    tokens_per_second: float
    quartile_mapped_bytes: int
    quartile_mapped_fraction: float


@dataclass
class ShardedServing:
    rows: list[ShardedServingRow]
    baseline_docs_per_second: float
    """Unsharded (v1, in-memory phi) serving throughput — the parity
    reference for the single-shard fast path."""
    deterministic: bool
    """Same seed ⇒ bit-identical theta across the unsharded load and
    every shard layout."""
    phi_nbytes: int
    num_topics: int
    vocab_size: int
    num_query_documents: int
    query_document_length: int
    foldin_iterations: int
    mode: str


def run_sharded_serving(num_source_topics: int = 40,
                        vocab_size: int = 320,
                        num_train_documents: int = 40,
                        train_document_length: int = 80,
                        train_iterations: int = 15,
                        num_query_documents: int = 48,
                        query_document_length: int = 40,
                        foldin_iterations: int = 20,
                        shard_counts: tuple[int, ...] = (1, 4, 16),
                        mode: str = "sparse",
                        timing_repeats: int = 3,
                        seed: int = 0) -> ShardedServing:
    """Out-of-core serving: throughput and mapped-phi footprint vs
    shard count (schema v3, :mod:`repro.serving.sharding`).

    For each target shard count the model is persisted column-sharded
    (``shard_words = V // target``, so the leading ``target // 4``
    shards never exceed a quarter of the matrix), reloaded lazily, and
    serves the full raw-text query set through an
    :class:`~repro.serving.InferenceSession` — that times the
    end-to-end sharded path against the unsharded baseline.  A second,
    *fresh* (nothing mapped) load then folds in a batch confined to
    the first quarter of the shard layout and reports how many phi
    bytes actually mapped: the out-of-core claim is that the footprint
    tracks the batch's vocabulary, not the matrix (1/4-ish of phi at
    16 shards, all of it at 1).

    The determinism probe re-serves a fixed seed on every layout and
    on the unsharded artifact: sharding is storage, so theta must be
    bit-identical throughout.

    Each timing is the best of ``timing_repeats`` fresh sessions, and
    the repeats are **interleaved across layouts** (every pass serves
    the baseline and every shard count once): the workload is
    sub-second at bench scale, where host drift — frequency scaling,
    cache state — swings a measurement 20%+ between the start and end
    of the run, and the baseline-vs-shards=1 parity claim must compare
    layouts under the same drift, not whichever was timed last.
    """
    import tempfile

    from repro.serving import InferenceSession, load_model, save_model
    from repro.serving.foldin import FoldInEngine

    fitted, queries = _serving_workload(
        num_source_topics, vocab_size, num_train_documents,
        train_document_length, train_iterations, num_query_documents,
        query_document_length, seed)
    actual_vocab = fitted.vocab_size
    rng = ensure_rng(seed + 1)

    def serve_once(loaded):
        """One timed serve of the full query set in a fresh session."""
        with InferenceSession(loaded, iterations=foldin_iterations,
                              mode=mode, seed=seed) as session:
            session.theta(queries[:4])  # warm-up: buffers, tables
            start = perf_counter()
            result = session.infer(queries)
            return perf_counter() - start, result

    rows = []
    deterministic = True
    phi_nbytes = 0
    with tempfile.TemporaryDirectory() as tmp:
        save_model(fitted, f"{tmp}/plain",
                   model_class="BijectiveSourceLDA")
        loads: dict = {"baseline": load_model(f"{tmp}/plain")}
        shard_words_of = {}
        for target in shard_counts:
            shard_words_of[target] = max(1, actual_vocab // target)
            save_model(fitted, f"{tmp}/shards{target}",
                       model_class="BijectiveSourceLDA",
                       shard_words=shard_words_of[target])
            loads[target] = load_model(f"{tmp}/shards{target}")
        # Interleaved best-of timing (see docstring): each pass serves
        # every layout once, in a fixed order.
        best = {key: float("inf") for key in loads}
        served = {}
        for _ in range(max(1, timing_repeats)):
            for key, loaded in loads.items():
                elapsed, served[key] = serve_once(loaded)
                best[key] = min(best[key], elapsed)
        baseline_dps = num_query_documents / best["baseline"]
        with InferenceSession(loads["baseline"],
                              iterations=foldin_iterations,
                              mode=mode, seed=123) as probe:
            reference_theta = probe.theta(queries)
        loads["baseline"].close()
        for target in shard_counts:
            shard_words = shard_words_of[target]
            path = f"{tmp}/shards{target}"
            loaded = loads[target]
            phi_nbytes = loaded.model.phi.T.nbytes
            elapsed, result = best[target], served[target]
            with InferenceSession(loaded, iterations=foldin_iterations,
                                  mode=mode, seed=123) as probe:
                if not np.array_equal(reference_theta,
                                      probe.theta(queries)):
                    deterministic = False
            loaded.close()
            # Footprint probe on a fresh, unmapped load: a batch
            # confined to the words of the leading quarter of the
            # shard layout (the whole single shard at target=1).
            probe_loaded = load_model(path)
            sharded = probe_loaded.model.phi.T
            front = max(1, target // 4)
            stop_word = sharded.shard_ranges[front - 1][1]
            quartile_docs = [
                rng.integers(0, stop_word, size=query_document_length)
                for _ in range(max(1, num_query_documents // 4))]
            engine = FoldInEngine(probe_loaded.model.phi, 0.5,
                                  iterations=foldin_iterations,
                                  mode=mode)
            engine.theta(quartile_docs, rng=seed)
            mapped = sharded.mapped_bytes
            rows.append(ShardedServingRow(
                target_shards=target,
                num_shards=sharded.num_shards,
                shard_words=shard_words,
                docs_per_second=num_query_documents / elapsed,
                tokens_per_second=float(result.num_tokens.sum())
                / elapsed,
                quartile_mapped_bytes=mapped,
                quartile_mapped_fraction=mapped / sharded.nbytes))
            probe_loaded.close()
    return ShardedServing(rows=rows,
                          baseline_docs_per_second=baseline_dps,
                          deterministic=deterministic,
                          phi_nbytes=phi_nbytes,
                          num_topics=fitted.num_topics,
                          vocab_size=actual_vocab,
                          num_query_documents=num_query_documents,
                          query_document_length=query_document_length,
                          foldin_iterations=foldin_iterations,
                          mode=mode)


def format_sharded_serving(result: ShardedServing) -> str:
    table = format_table(
        ["shards", "shard words", "docs/sec", "tokens/sec",
         "1/4-batch mapped KiB", "mapped fraction"],
        [[row.num_shards, row.shard_words, row.docs_per_second,
          row.tokens_per_second, row.quartile_mapped_bytes / 1024,
          row.quartile_mapped_fraction]
         for row in result.rows],
        title=(f"Column-sharded serving - T={result.num_topics}, "
               f"V={result.vocab_size} "
               f"(phi {result.phi_nbytes / 1024:.0f} KiB), "
               f"{result.num_query_documents} query docs x "
               f"{result.query_document_length} tokens, "
               f"{result.foldin_iterations} fold-in sweeps, "
               f"mode={result.mode}"))
    return (f"{table}\n"
            f"unsharded baseline: "
            f"{result.baseline_docs_per_second:.1f} docs/sec\n"
            f"theta bit-identical across shard layouts: "
            f"{result.deterministic}")


def format_elastic_serving(result: ElasticServing) -> str:
    table = format_table(
        ["hedging", "p50 (s)", "p95 (s)", "p99 (s)", "mean (s)",
         "hedges", "won", "wasted tokens"],
        [[("on" if row.hedging else "off"), row.p50_seconds,
          row.p95_seconds, row.p99_seconds, row.mean_seconds,
          row.hedges_issued, row.hedges_won, row.wasted_tokens]
         for row in result.rows],
        title=(f"Elastic serving - {result.num_requests} requests x "
               f"{result.docs_per_request} docs, "
               f"{result.num_workers} workers, "
               f"task_docs={result.task_docs}, straggler sleeps "
               f"{result.straggler_sleep_seconds:.2f}s/task, "
               f"T={result.num_topics}, "
               f"{result.foldin_iterations} fold-in sweeps, "
               f"mode={result.mode}"))
    return (f"{table}\n"
            f"hedged p99 / unhedged p99: {result.p99_ratio:.3f}\n"
            f"theta bit-identical hedged vs unhedged: "
            f"{result.deterministic}\n"
            f"elastic pool: grew {result.pool_grown}x, shrank "
            f"{result.pool_shrunk}x, bit-identical vs inline: "
            f"{result.elastic_deterministic}")


def format_parallel_serving(result: ParallelServing) -> str:
    table = format_table(
        ["workers", "docs/sec", "tokens/sec", "pool util"],
        [[row.num_workers, row.docs_per_second, row.tokens_per_second,
          row.pool_utilization]
         for row in result.rows],
        title=(f"Parallel serving - T={result.num_topics}, "
               f"{result.num_query_documents} query docs x "
               f"{result.query_document_length} tokens, "
               f"{result.foldin_iterations} fold-in sweeps, "
               f"mode={result.mode}, {result.num_cores} core(s)"))
    return (f"{table}\n"
            f"theta bit-identical across workers and v1-vs-mmap-v2: "
            f"{result.deterministic}\n"
            f"v2 phi served from mmap: {result.phi_mmapped}")


def format_serving_throughput(result: ServingThroughput) -> str:
    table = format_table(
        ["batch size", "docs/sec", "tokens/sec"],
        [[row.batch_size, row.docs_per_second, row.tokens_per_second]
         for row in result.rows],
        title=(f"Serving throughput - {result.model_class}, "
               f"T={result.num_topics}, "
               f"{result.num_query_documents} query docs x "
               f"{result.query_document_length} tokens, "
               f"{result.foldin_iterations} fold-in sweeps, "
               f"mode={result.mode}"))
    return table


def format_scaling(result: ScalingResult) -> str:
    headers = (["topics (B)"]
               + [f"measured {t}t (s)" for t in result.thread_counts]
               + [f"modeled {t}t (s)" for t in result.thread_counts])
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [row.num_topics]
            + [row.measured_seconds[t] for t in result.thread_counts]
            + [row.modeled_seconds[t] for t in result.thread_counts])
    table = format_table(headers, table_rows,
                         title="Fig. 8(f) - average iteration time")
    verdict = (f"single-thread time linear in B: "
               f"{result.is_linear_in_topics()}")
    return table + "\n" + verdict


@dataclass
class TelemetryOverhead:
    """Recorder-on vs recorder-off fold-in throughput on one workload."""

    docs_per_second_off: float
    docs_per_second_on: float
    identical: bool
    """Bit-identical theta recorder-on vs off on the same seed."""
    snapshot: dict
    """The live recorder's final ``snapshot()`` (one timed run's worth
    of counters/histograms — stamped into the bench record)."""
    num_topics: int
    num_documents: int
    document_length: int
    foldin_iterations: int
    mode: str
    repeats: int

    @property
    def overhead_ratio(self) -> float:
        """``on / off`` throughput: 1.0 = recording is free, 0.95 =
        5% throughput lost to the live recorder."""
        return self.docs_per_second_on / self.docs_per_second_off


def run_telemetry_overhead(num_topics: int = 50,
                           vocab_size: int = 2000,
                           num_documents: int = 2000,
                           document_length: int = 40,
                           foldin_iterations: int = 5,
                           mode: str = "sparse",
                           repeats: int = 3,
                           seed: int = 0) -> TelemetryOverhead:
    """Measure what a live :class:`~repro.telemetry.InMemoryRecorder`
    costs on a batched fold-in workload.

    Two engines over the same random-Dirichlet phi — one with the
    default null recorder, one with a live in-memory recorder — fold in
    the same ``num_documents`` Zipf-drawn query documents on the same
    seed.  Runs are **interleaved best-of-``repeats``** (off, on, off,
    on, ...) so machine noise hits both sides alike, and the thetas are
    compared bit for bit: instrumentation must never touch the draw
    stream.  Fold-in instrumentation is per *batch*, so the measured
    overhead is a handful of recorder calls per ``batch_size``
    documents — the property the <= 5% gate in
    ``benchmarks/test_bench_telemetry_overhead.py`` enforces.
    """
    from repro.serving import FoldInEngine
    from repro.telemetry import InMemoryRecorder

    rng = ensure_rng(seed)
    phi = rng.dirichlet(np.full(vocab_size, 0.05), size=num_topics)
    pmf = zipf_probabilities(vocab_size)
    documents = [rng.choice(vocab_size, size=document_length, p=pmf)
                 .astype(np.int64) for _ in range(num_documents)]

    alpha = default_alpha(num_topics)
    engine_off = FoldInEngine(phi, alpha, iterations=foldin_iterations,
                              mode=mode, validate=False)
    recorder = InMemoryRecorder()
    engine_on = FoldInEngine(phi, alpha, iterations=foldin_iterations,
                             mode=mode, validate=False,
                             recorder=recorder)

    warm = documents[:64]
    theta_off = theta_on = None
    best_off = best_on = float("inf")
    for engine in (engine_off, engine_on):  # buffers, tables, caches
        engine.theta(warm, rng=ensure_rng(seed))
    for _ in range(repeats):
        recorder.reset()  # keep the snapshot to one timed run's worth
        start = perf_counter()
        theta_off = engine_off.theta(documents, rng=ensure_rng(seed))
        best_off = min(best_off, perf_counter() - start)
        start = perf_counter()
        theta_on = engine_on.theta(documents, rng=ensure_rng(seed))
        best_on = min(best_on, perf_counter() - start)

    return TelemetryOverhead(
        docs_per_second_off=num_documents / best_off,
        docs_per_second_on=num_documents / best_on,
        identical=bool(np.array_equal(theta_off, theta_on)),
        snapshot=recorder.snapshot(),
        num_topics=num_topics,
        num_documents=num_documents,
        document_length=document_length,
        foldin_iterations=foldin_iterations,
        mode=mode,
        repeats=repeats)


def format_telemetry_overhead(result: TelemetryOverhead) -> str:
    table = format_table(
        ["recorder", "docs/sec"],
        [["off (NullRecorder)", result.docs_per_second_off],
         ["on (InMemoryRecorder)", result.docs_per_second_on]],
        title=(f"Telemetry overhead - fold-in, T={result.num_topics}, "
               f"{result.num_documents} docs x "
               f"{result.document_length} tokens, "
               f"{result.foldin_iterations} sweeps, mode={result.mode}, "
               f"best of {result.repeats}"))
    verdict = (f"throughput ratio on/off: {result.overhead_ratio:.3f}  "
               f"bit-identical theta: {result.identical}")
    return table + "\n" + verdict
