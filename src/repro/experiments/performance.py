"""Performance benchmarking (Section IV.E, Fig. 8f).

The paper generates corpora over knowledge sources of ``B`` = 100 .. 10,000
topics and plots average Gibbs-iteration time for 1, 3 and 6 parallel
units, demonstrating (i) linear scaling in the number of topics and (ii)
speedup from the parallel sampling algorithms.

The authors' testbed ran native threads; our substrate is Python, where
per-token thread dispatch costs more than the arithmetic it parallelizes
for small ``B``.  We therefore report both:

* **measured** per-iteration wall-clock times with the real thread pool
  executing Algorithm 3's chunked scans, and
* **modeled** times from the algorithms' ``O(Max[T/P, P])`` critical path,
  anchored to the measured single-thread cost — the shape the paper's
  figure asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.bijective import BijectiveSourceLDA
from repro.experiments.config import LAPTOP, ExperimentScale
from repro.experiments.reporting import format_table
from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import make_lexicon, zipf_probabilities
from repro.sampling.parallel import WorkerPool
from repro.sampling.rng import ensure_rng
from repro.sampling.simple_parallel import SimpleParallelScan
from repro.text.corpus import Corpus


def random_topic_source(num_topics: int, vocab_size: int = 400,
                        article_length: int = 60,
                        seed: int = 0) -> KnowledgeSource:
    """Topics "generated randomly from a given vocabulary" (Section IV.E)."""
    if num_topics < 1:
        raise ValueError(f"num_topics must be >= 1, got {num_topics}")
    rng = ensure_rng(seed)
    lexicon = make_lexicon(vocab_size, seed=seed)
    pmf = zipf_probabilities(vocab_size)
    articles = {}
    for index in range(num_topics):
        order = rng.permutation(vocab_size)
        draws = rng.choice(vocab_size, size=article_length, p=pmf)
        articles[f"topic-{index:05d}"] = [lexicon[order[d]] for d in draws]
    return KnowledgeSource(articles)


@dataclass(frozen=True)
class ScalingRow:
    """One x position of Fig. 8(f)."""

    num_topics: int
    measured_seconds: dict[int, float]
    modeled_seconds: dict[int, float]


@dataclass
class ScalingResult:
    rows: list[ScalingRow]
    thread_counts: tuple[int, ...]

    def is_linear_in_topics(self, tolerance: float = 0.35) -> bool:
        """Does single-thread time grow linearly with B (Fig. 8f's
        claim)?  Checks the correlation of time against B."""
        if len(self.rows) < 3:
            return True
        topics = np.array([row.num_topics for row in self.rows],
                          dtype=np.float64)
        times = np.array([row.measured_seconds[1] for row in self.rows])
        correlation = np.corrcoef(topics, times)[0, 1]
        return bool(correlation > 1.0 - tolerance)


def _modeled_time(serial_seconds: float, num_topics: int,
                  threads: int) -> float:
    """Critical-path model: work shrinks to ``Max[T/P, P]`` per token."""
    critical = max(num_topics / threads, threads)
    return serial_seconds * critical / num_topics


def run_scaling(scale: ExperimentScale = LAPTOP,
                topic_counts: list[int] | None = None,
                thread_counts: tuple[int, ...] = (1, 3, 6),
                num_documents: int = 10,
                document_length: int = 40,
                iterations: int = 2,
                seed: int = 0) -> ScalingResult:
    """Measure average iteration time vs knowledge-source size."""
    if topic_counts is None:
        topic_counts = [100, 250, 500, 1000, 2000]
    rows = []
    rng = ensure_rng(seed)
    for num_topics in topic_counts:
        source = random_topic_source(num_topics, seed=seed)
        vocabulary = source.vocabulary().freeze()
        id_lists = [rng.integers(0, len(vocabulary),
                                 size=document_length).tolist()
                    for _ in range(num_documents)]
        corpus = Corpus.from_word_id_lists(id_lists, vocabulary)
        measured: dict[int, float] = {}
        modeled: dict[int, float] = {}
        for threads in thread_counts:
            with WorkerPool(threads) as pool:
                scan = SimpleParallelScan(blocks=max(threads, 1),
                                          pool=pool if threads > 1
                                          else None)
                model = BijectiveSourceLDA(source, alpha=0.5, scan=scan)
                start = perf_counter()
                fitted = model.fit(corpus, iterations=iterations,
                                   seed=seed)
                elapsed = perf_counter() - start
            iteration_seconds = fitted.metadata["iteration_seconds"]
            measured[threads] = float(np.mean(iteration_seconds)) \
                if iteration_seconds else elapsed / max(iterations, 1)
        serial = measured[thread_counts[0]]
        for threads in thread_counts:
            modeled[threads] = _modeled_time(serial, num_topics, threads)
        rows.append(ScalingRow(num_topics=num_topics, measured_seconds=dict(
            measured), modeled_seconds=modeled))
    return ScalingResult(rows=rows, thread_counts=thread_counts)


def format_scaling(result: ScalingResult) -> str:
    headers = (["topics (B)"]
               + [f"measured {t}t (s)" for t in result.thread_counts]
               + [f"modeled {t}t (s)" for t in result.thread_counts])
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [row.num_topics]
            + [row.measured_seconds[t] for t in result.thread_counts]
            + [row.modeled_seconds[t] for t in result.thread_counts])
    table = format_table(headers, table_rows,
                         title="Fig. 8(f) - average iteration time")
    verdict = (f"single-thread time linear in B: "
               f"{result.is_linear_in_topics()}")
    return table + "\n" + verdict
