"""Experiment drivers: one per table/figure of the paper's evaluation."""

from repro.experiments.case_study import (CaseStudyResult,
                                          case_study_corpus,
                                          case_study_source,
                                          format_case_study,
                                          run_case_study)
from repro.experiments.config import LAPTOP, PAPER, SMOKE, ExperimentScale
from repro.experiments.figures import (LambdaDivergenceResult, run_fig2,
                                       run_fig3, run_fig4)
from repro.experiments.graphical_example import (GraphicalExampleResult,
                                                 format_graphical_example,
                                                 run_graphical_example)
from repro.experiments.lambda_integration import (LambdaIntegrationResult,
                                                  format_lambda_integration,
                                                  run_lambda_integration)
from repro.experiments.performance import (ScalingResult, format_scaling,
                                           random_topic_source, run_scaling)
from repro.experiments.reporting import (BoxplotSummary, format_boxplots,
                                         format_series, format_table)
from repro.experiments.reuters_analysis import (ReutersResult,
                                                format_reuters,
                                                run_reuters_analysis)
from repro.experiments.wikipedia_corpus import (PmiSweepResult,
                                                WikipediaCorpusResult,
                                                format_condition,
                                                generate_experiment_corpus,
                                                make_medline_style_source,
                                                run_bijective_condition,
                                                run_mixed_condition,
                                                run_pmi_sweep)

__all__ = [
    "BoxplotSummary",
    "CaseStudyResult",
    "ExperimentScale",
    "GraphicalExampleResult",
    "LAPTOP",
    "LambdaDivergenceResult",
    "LambdaIntegrationResult",
    "PAPER",
    "PmiSweepResult",
    "ReutersResult",
    "SMOKE",
    "ScalingResult",
    "WikipediaCorpusResult",
    "case_study_corpus",
    "case_study_source",
    "format_boxplots",
    "format_case_study",
    "format_condition",
    "format_graphical_example",
    "format_lambda_integration",
    "format_reuters",
    "format_scaling",
    "format_series",
    "format_table",
    "generate_experiment_corpus",
    "make_medline_style_source",
    "random_topic_source",
    "run_bijective_condition",
    "run_case_study",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_graphical_example",
    "run_lambda_integration",
    "run_mixed_condition",
    "run_pmi_sweep",
    "run_reuters_analysis",
    "run_scaling",
]
