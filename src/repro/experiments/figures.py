"""Figures 2, 3 and 4: divergence behaviour of source-parameterized draws.

* **Fig. 2** — for each of 20 Reuters categories, the JS divergence between
  the source distribution and 1000 Dirichlet draws parameterized by the raw
  source hyperparameters (how much slack Definition 3 alone gives).
* **Fig. 3** — the same divergence as the hyperparameters are raised to
  ``lambda`` in {0, 0.1, ..., 1}: non-linear, saturating near ``ln 2`` at 0.
* **Fig. 4** — ``lambda`` first mapped through the calibrated ``g``:
  the divergence now falls linearly, which is what lets the Gaussian prior
  over lambda act on an interpretable scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lambda_calibration import (SmoothingFunction,
                                           calibrate_smoothing)
from repro.experiments.config import LAPTOP, ExperimentScale
from repro.experiments.reporting import BoxplotSummary
from repro.knowledge.distributions import (sample_topic_distribution,
                                           source_distribution,
                                           source_hyperparameters)
from repro.knowledge.reuters import FIGURE2_CATEGORIES
from repro.knowledge.wikipedia import SyntheticWikipedia
from repro.sampling.rng import ensure_rng

DEFAULT_LAMBDAS = np.round(np.arange(0.0, 1.01, 0.1), 2)


def _divergence_samples(hyper: np.ndarray, reference: np.ndarray,
                        draws: int, rng: np.random.Generator) -> np.ndarray:
    from repro.metrics.divergence import js_divergence
    values = np.empty(draws)
    for i in range(draws):
        sample = sample_topic_distribution(hyper, rng)
        values[i] = js_divergence(sample, reference)
    return values


def run_fig2(scale: ExperimentScale = LAPTOP,
             categories: tuple[str, ...] = FIGURE2_CATEGORIES,
             seed: int = 0) -> list[BoxplotSummary]:
    """Fig. 2: per-category JS divergence box plots of source draws."""
    rng = ensure_rng(seed)
    wikipedia = SyntheticWikipedia(list(categories),
                                   article_length=scale.article_length,
                                   seed=seed)
    source = wikipedia.knowledge_source()
    vocabulary = source.vocabulary()
    counts = source.count_matrix(vocabulary)
    hyper = source_hyperparameters(counts)
    references = source_distribution(counts)
    summaries = []
    for index, label in enumerate(categories):
        values = _divergence_samples(hyper[index], references[index],
                                     scale.divergence_draws, rng)
        summaries.append(BoxplotSummary.of(label, values))
    return summaries


@dataclass(frozen=True)
class LambdaDivergenceResult:
    """Per-lambda box summaries plus a linearity score of the medians."""

    lambdas: np.ndarray
    summaries: list[BoxplotSummary]
    median_linearity_r2: float
    smoothing: SmoothingFunction | None = None


def _lambda_sweep(hyper: np.ndarray, reference: np.ndarray,
                  exponents: np.ndarray, labels: list[str], draws: int,
                  rng: np.random.Generator) -> list[BoxplotSummary]:
    summaries = []
    for exponent, label in zip(exponents, labels):
        values = _divergence_samples(np.power(hyper, exponent), reference,
                                     draws, rng)
        summaries.append(BoxplotSummary.of(label, values))
    return summaries


def _linearity_r2(xs: np.ndarray, medians: np.ndarray) -> float:
    """R^2 of the best straight-line fit to the median curve."""
    slope, intercept = np.polyfit(xs, medians, 1)
    predicted = slope * xs + intercept
    residual = float(((medians - predicted) ** 2).sum())
    total = float(((medians - medians.mean()) ** 2).sum())
    if total == 0.0:
        return 1.0
    return 1.0 - residual / total


def _figure2_topic(scale: ExperimentScale,
                   seed: int) -> tuple[np.ndarray, np.ndarray]:
    wikipedia = SyntheticWikipedia(["Interest Rates"],
                                   article_length=scale.article_length,
                                   seed=seed)
    source = wikipedia.knowledge_source()
    vocabulary = source.vocabulary()
    counts = source.count_matrix(vocabulary)[0]
    return (source_hyperparameters(counts), source_distribution(counts))


def run_fig3(scale: ExperimentScale = LAPTOP,
             lambdas: np.ndarray = DEFAULT_LAMBDAS,
             seed: int = 0) -> LambdaDivergenceResult:
    """Fig. 3: JS divergence vs raw lambda (no smoothing)."""
    rng = ensure_rng(seed)
    hyper, reference = _figure2_topic(scale, seed)
    labels = [f"{lam:g}" for lam in lambdas]
    summaries = _lambda_sweep(hyper, reference, lambdas, labels,
                              scale.divergence_draws, rng)
    medians = np.array([s.median for s in summaries])
    return LambdaDivergenceResult(
        lambdas=np.asarray(lambdas), summaries=summaries,
        median_linearity_r2=_linearity_r2(np.asarray(lambdas), medians))


def run_fig4(scale: ExperimentScale = LAPTOP,
             lambdas: np.ndarray = DEFAULT_LAMBDAS,
             seed: int = 0) -> LambdaDivergenceResult:
    """Fig. 4: JS divergence vs ``g(lambda)`` — medians become linear."""
    rng = ensure_rng(seed)
    hyper, reference = _figure2_topic(scale, seed)
    smoothing = calibrate_smoothing(
        hyper, draws=max(4, scale.divergence_draws // 10), rng=rng)
    exponents = np.asarray(smoothing(np.asarray(lambdas)))
    labels = [f"g({lam:g})" for lam in lambdas]
    summaries = _lambda_sweep(hyper, reference, exponents, labels,
                              scale.divergence_draws, rng)
    medians = np.array([s.median for s in summaries])
    return LambdaDivergenceResult(
        lambdas=np.asarray(lambdas), summaries=summaries,
        median_linearity_r2=_linearity_r2(np.asarray(lambdas), medians),
        smoothing=smoothing)
