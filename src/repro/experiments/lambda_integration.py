"""The lambda-integration experiment (Section IV.B, Fig. 7).

A corpus is generated under the bijective Source-LDA process where every
topic draws its own lambda from ``N(0.5, 1.0)`` (bounded to [0, 1]) — i.e.
topics deviate from their sources *at different rates*.  Fitting with a
single fixed lambda misstates most topics, while integrating lambda over
its Gaussian prior ("dynamic lambda") adapts per token.  The experiment's
takeaway — demonstrated by the paper and reproduced here — is that
perplexity is an imperfect model-selection signal: the run with the best
perplexity is not the run with the best classification accuracy (see
EXPERIMENTS.md F7 for where the dynamic-vs-fixed accuracy ordering itself
differs between the paper's corpus and our synthetic regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bijective import BijectiveSourceLDA
from repro.datasets.synthetic import SyntheticCorpus, \
    generate_source_lda_corpus
from repro.experiments.config import LAPTOP, ExperimentScale
from repro.experiments.reporting import format_table
from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import SyntheticWikipedia
from repro.metrics.accuracy import token_accuracy
from repro.metrics.perplexity import perplexity_importance_sampling
from repro.models.base import FittedTopicModel
from repro.sampling.integration import LambdaGrid

DEFAULT_FIXED_LAMBDAS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class LambdaRunRow:
    """One bar pair of Fig. 7."""

    label: str
    classification_percent: float
    perplexity: float


@dataclass
class LambdaIntegrationResult:
    """Fig. 7's data: fixed-lambda rows plus the dynamic baseline."""

    baseline: LambdaRunRow
    fixed: list[LambdaRunRow]
    data: SyntheticCorpus

    def best_fixed_accuracy(self) -> float:
        return max(row.classification_percent for row in self.fixed)

    def dynamic_beats_all_fixed(self) -> bool:
        """The paper's strongest claim: "for all fixed lambda runs the
        baseline ... results in a higher classification accuracy"."""
        return (self.baseline.classification_percent
                > self.best_fixed_accuracy())

    def all_rows(self) -> list[LambdaRunRow]:
        return [*self.fixed, self.baseline]

    def perplexity_is_misleading(self) -> bool:
        """The experiment's actual takeaway (Section IV.B): "classification
        accuracy is not perfectly correlated with perplexity" — choosing
        the run with the best (lowest) perplexity does not choose the run
        with the best classification accuracy."""
        rows = self.all_rows()
        best_perplexity = min(rows, key=lambda r: r.perplexity)
        best_accuracy = max(rows, key=lambda r: r.classification_percent)
        return best_perplexity.label != best_accuracy.label


def _evaluate(model: FittedTopicModel, data: SyntheticCorpus,
              heldout_corpus, alpha: float, samples: int,
              seed: int) -> tuple[float, float]:
    accuracy = token_accuracy(model.flat_assignments(), data.token_topics)
    perplexity = perplexity_importance_sampling(
        model.phi, heldout_corpus, alpha, num_samples=samples, rng=seed)
    return 100.0 * accuracy, perplexity


def run_lambda_integration(scale: ExperimentScale = LAPTOP,
                           fixed_lambdas: tuple[float, ...]
                           = DEFAULT_FIXED_LAMBDAS,
                           source: KnowledgeSource | None = None,
                           mu: float = 0.5, sigma: float = 1.0,
                           alpha: float = 0.5,
                           seed: int = 0) -> LambdaIntegrationResult:
    """Reproduce Fig. 7 at the given scale."""
    if source is None:
        names = [f"Topic {i:03d}" for i in range(scale.generating_topics)]
        source = SyntheticWikipedia(
            names, article_length=scale.article_length,
            seed=seed).knowledge_source()
    data = generate_source_lda_corpus(
        source, num_topics=None,
        num_documents=scale.num_documents,
        avg_document_length=scale.avg_document_length,
        alpha=alpha, mu=mu, sigma=sigma, seed=seed)
    train = data.corpus
    # Perplexity is scored on a held-out corpus generated from the same
    # topic distributions.
    heldout = generate_source_lda_corpus(
        source, num_topics=None,
        num_documents=max(8, scale.num_documents // 5),
        avg_document_length=scale.avg_document_length,
        alpha=alpha, mu=mu, sigma=sigma, seed=seed + 1).corpus

    grid = LambdaGrid.from_prior(mu, sigma)
    baseline_model = BijectiveSourceLDA(
        source, alpha=alpha, lambda_grid=grid).fit(
        train, iterations=scale.iterations, seed=seed)
    baseline_accuracy, baseline_perplexity = _evaluate(
        baseline_model, data, heldout, alpha, scale.perplexity_samples,
        seed)
    baseline = LambdaRunRow(label=f"dynamic N({mu}, {sigma})",
                            classification_percent=baseline_accuracy,
                            perplexity=baseline_perplexity)

    rows = []
    for lam in fixed_lambdas:
        model = BijectiveSourceLDA(source, alpha=alpha, lambda_=lam).fit(
            train, iterations=scale.iterations, seed=seed)
        accuracy, perplexity = _evaluate(
            model, data, heldout, alpha, scale.perplexity_samples, seed)
        rows.append(LambdaRunRow(label=f"{lam:g}",
                                 classification_percent=accuracy,
                                 perplexity=perplexity))
    return LambdaIntegrationResult(baseline=baseline, fixed=rows, data=data)


def format_lambda_integration(result: LambdaIntegrationResult) -> str:
    headers = ["lambda", "classification %", "perplexity"]
    rows = [[row.label, row.classification_percent, row.perplexity]
            for row in result.fixed]
    rows.append([result.baseline.label,
                 result.baseline.classification_percent,
                 result.baseline.perplexity])
    table = format_table(headers, rows,
                         title="Fig. 7 - fixed lambda vs dynamic lambda")
    verdicts = [
        f"dynamic lambda beats every fixed lambda on accuracy: "
        f"{result.dynamic_beats_all_fixed()}",
        f"perplexity-optimal run differs from accuracy-optimal run "
        f"(perplexity is a misleading selector): "
        f"{result.perplexity_is_misleading()}",
    ]
    return table + "\n" + "\n".join(verdicts)
