"""Experiment scales.

Every driver takes an :class:`ExperimentScale` controlling corpus sizes and
iteration counts.  ``PAPER`` matches the publication's parameters;
``LAPTOP`` (the default everywhere) shrinks sizes so the full suite runs on
one machine in minutes while preserving every qualitative result;
``SMOKE`` is for tests.  EXPERIMENTS.md records which scale produced each
measured number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the experiment drivers."""

    name: str
    #: Gibbs sweeps per model fit.
    iterations: int
    #: Documents in generated corpora.
    num_documents: int
    #: Mean tokens per generated document.
    avg_document_length: float
    #: Dirichlet draws per estimate in the divergence figures.
    divergence_draws: int
    #: Knowledge-source article length (tokens).
    article_length: int
    #: Candidate superset size (B) for the Wikipedia-corpus experiments.
    superset_size: int
    #: Topics actually generating the corpus (K) in those experiments.
    generating_topics: int
    #: Held-out theta samples for importance-sampling perplexity.
    perplexity_samples: int

    def scaled(self, **overrides: object) -> "ExperimentScale":
        """A copy with selected fields overridden."""
        return replace(self, **overrides)  # type: ignore[arg-type]


#: The publication's parameters (hours of compute in pure Python).
PAPER = ExperimentScale(
    name="paper", iterations=1000, num_documents=2000,
    avg_document_length=500.0, divergence_draws=1000, article_length=3000,
    superset_size=578, generating_topics=100, perplexity_samples=64)

#: Laptop-scale defaults preserving the paper's qualitative shapes.
LAPTOP = ExperimentScale(
    name="laptop", iterations=60, num_documents=150,
    avg_document_length=60.0, divergence_draws=120, article_length=300,
    superset_size=40, generating_topics=12, perplexity_samples=24)

#: Minimal settings for the test suite.
SMOKE = ExperimentScale(
    name="smoke", iterations=8, num_documents=24,
    avg_document_length=20.0, divergence_draws=12, article_length=80,
    superset_size=8, generating_topics=4, perplexity_samples=6)
