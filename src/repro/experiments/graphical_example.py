"""The graphical example experiment (Section IV.A, Fig. 6).

A corpus is generated from *augmented* pixel topics; the models only see
the original topics as their knowledge source.  Source-LDA should recover
the augmented distributions (allowing variance from the source) while still
matching each to its original label; EDA cannot move off the originals at
all, and CTM cannot assign the swapped-in pixel (it is outside the concept
bag).  The paper reports average JS divergences of 0.012 / 0.138 / 0.43
for Source-LDA / EDA / CTM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.source_lda import SourceLDA
from repro.datasets.graphical import (GraphicalCorpus, NUM_TOPICS,
                                      generate_graphical_corpus,
                                      graphical_knowledge_source,
                                      render_topic_ascii)
from repro.experiments.config import LAPTOP, ExperimentScale
from repro.metrics.divergence import js_divergence
from repro.models.base import FittedTopicModel
from repro.models.ctm import CTM
from repro.models.eda import EDA


@dataclass
class GraphicalExampleResult:
    """Fig. 6's content: likelihood traces, snapshots, divergences."""

    data: GraphicalCorpus
    log_likelihood_runs: list[list[float]]
    snapshot_iterations: tuple[int, ...]
    snapshots: dict[int, np.ndarray]
    source_lda_model: FittedTopicModel
    avg_js_source_lda: float
    avg_js_eda: float
    avg_js_ctm: float


def _average_js_to_truth(model: FittedTopicModel,
                         truth: np.ndarray) -> float:
    """Mean JS divergence between recovered and generating topics.

    The knowledge-source order equals the generating-topic order in this
    experiment (augmentation preserves indices), so topics align by index.
    """
    values = [js_divergence(model.phi[t], truth[t])
              for t in range(truth.shape[0])]
    return float(np.mean(values))


def run_graphical_example(scale: ExperimentScale = LAPTOP,
                          num_runs: int = 4,
                          seed: int = 0) -> GraphicalExampleResult:
    """Run Source-LDA (x ``num_runs``), EDA and CTM on the pixel corpus."""
    data = generate_graphical_corpus(
        num_documents=scale.num_documents,
        words_per_document=25, alpha=1.0, seed=seed)
    # Article length controls prior strength (a real Wikipedia article has
    # thousands of tokens); 2000 reproduces Fig. 6's recovery with the
    # paper's random initialization.
    source = graphical_knowledge_source(tokens_per_article=2000)
    iterations = scale.iterations
    snapshot_points = tuple(sorted({0, 1,
                                    iterations // 4, iterations // 2,
                                    max(iterations - 1, 0)}))

    log_runs: list[list[float]] = []
    snapshots: dict[int, np.ndarray] = {}
    first_model: FittedTopicModel | None = None
    for run in range(num_runs):
        model = SourceLDA(source, num_unlabeled_topics=0, mu=0.7,
                          sigma=0.3, alpha=1.0, reduce_topics=False,
                          calibration_draws=4, init="random").fit(
            data.corpus, iterations=iterations, seed=seed + run,
            track_log_likelihood=True,
            snapshot_iterations=snapshot_points if run == 0 else ())
        log_runs.append(model.log_likelihoods)
        if run == 0:
            first_model = model
            snapshots = model.metadata["snapshots"]
    assert first_model is not None

    eda_model = EDA(source, alpha=1.0).fit(
        data.corpus, iterations=iterations, seed=seed)
    ctm_model = CTM(source, num_free_topics=0, top_n_words=25, alpha=1.0,
                    beta=0.1).fit(
        data.corpus, iterations=iterations, seed=seed)
    return GraphicalExampleResult(
        data=data,
        log_likelihood_runs=log_runs,
        snapshot_iterations=snapshot_points,
        snapshots=snapshots,
        source_lda_model=first_model,
        avg_js_source_lda=_average_js_to_truth(first_model,
                                               data.augmented_topics),
        avg_js_eda=_average_js_to_truth(eda_model, data.augmented_topics),
        avg_js_ctm=_average_js_to_truth(ctm_model, data.augmented_topics))


def format_graphical_example(result: GraphicalExampleResult) -> str:
    """Console rendering of Fig. 6: traces, a topic gallery, divergences."""
    lines = ["Log-likelihood traces (one row per run, first/mid/last):"]
    for run, trace in enumerate(result.log_likelihood_runs):
        picks = [trace[0], trace[len(trace) // 2], trace[-1]]
        lines.append(f"  run {run}: " + " -> ".join(f"{v:.1f}"
                                                    for v in picks))
    lines.append("")
    lines.append("Recovered vs generating topics (topic 0):")
    recovered = render_topic_ascii(
        result.source_lda_model.phi[0]).splitlines()
    truth = render_topic_ascii(
        result.data.augmented_topics[0]).splitlines()
    lines.extend(f"  {r}    {t}" for r, t in zip(recovered, truth))
    lines.append("")
    lines.append(
        f"Average JS divergence to augmented truth over {NUM_TOPICS} "
        f"topics (paper: 0.012 / 0.138 / 0.43):")
    lines.append(f"  Source-LDA: {result.avg_js_source_lda:.4f}")
    lines.append(f"  EDA:        {result.avg_js_eda:.4f}")
    lines.append(f"  CTM:        {result.avg_js_ctm:.4f}")
    return "\n".join(lines)
