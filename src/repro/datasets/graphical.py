"""The graphical 5x5 example (Section IV.A, Figs. 5 and 6).

Ten topics over the vocabulary of pixel positions in a 5x5 image: topics
0-4 put uniform mass on the five cells of one row, topics 5-9 on one
column.  The paper's twist on the classic Griffiths-Steyvers visualization:
the topics are *augmented* — each topic swaps one of its pixels with a
random other topic — a corpus is generated from the augmented topics, and
only the original topics are given to the models as the knowledge source.
A model reproduces the experiment when it recovers the augmented
distributions *and* matches them back to their unaugmented sources.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knowledge.source import KnowledgeSource
from repro.sampling.rng import ensure_rng
from repro.text.corpus import Corpus, Document
from repro.text.vocabulary import Vocabulary

GRID_SIZE = 5
NUM_TOPICS = 2 * GRID_SIZE


def pixel_vocabulary() -> Vocabulary:
    """The 25 pixel-position words ``"xy"`` with x, y in 0..4."""
    return Vocabulary(f"{x}{y}"
                      for x in range(GRID_SIZE)
                      for y in range(GRID_SIZE)).freeze()


def _pixel_id(x: int, y: int) -> int:
    return x * GRID_SIZE + y


def original_topics() -> np.ndarray:
    """The ten row/column topics of Fig. 5(a), shape ``(10, 25)``.

    Topic ``i < 5`` is uniform over row ``i``; topic ``i >= 5`` is uniform
    over column ``i - 5`` (the paper's ``T_i`` definition).
    """
    topics = np.zeros((NUM_TOPICS, GRID_SIZE * GRID_SIZE))
    for i in range(GRID_SIZE):
        for x in range(GRID_SIZE):
            topics[i, _pixel_id(x, i)] = 1.0          # row topic: y = i
            topics[GRID_SIZE + i, _pixel_id(i, x)] = 1.0   # column topic
    return topics / topics.sum(axis=1, keepdims=True)


def augment_topics(topics: np.ndarray,
                   rng: int | np.random.Generator | None = None,
                   ) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Fig. 5(b)'s augmentation: pairwise pixel swaps between topics.

    Each topic is paired with a random different topic and one assigned
    word (pixel) of each is swapped, "given that the swapped words do not
    belong to their original assignments" — i.e. topic A receives a pixel
    it did not already have, and vice versa.  With 5 pixels per topic one
    swap is the paper's 20% augmentation rate.

    Returns the augmented distributions and the list of ``(i, j)`` pairs.
    """
    rng = ensure_rng(rng)
    topics = np.asarray(topics, dtype=np.float64).copy()
    num_topics = topics.shape[0]
    unpaired = list(range(num_topics))
    pairs: list[tuple[int, int]] = []
    while len(unpaired) >= 2:
        first = unpaired.pop(int(rng.integers(len(unpaired))))
        second = unpaired.pop(int(rng.integers(len(unpaired))))
        pairs.append((first, second))
    for first, second in pairs:
        support_first = np.flatnonzero(topics[first] > 0)
        support_second = np.flatnonzero(topics[second] > 0)
        # Candidate pixels: assigned to one topic and absent from the other.
        give = [p for p in support_first if topics[second, p] == 0]
        take = [p for p in support_second if topics[first, p] == 0]
        if not give or not take:
            continue
        pixel_out = int(give[rng.integers(len(give))])
        pixel_in = int(take[rng.integers(len(take))])
        mass_out = topics[first, pixel_out]
        mass_in = topics[second, pixel_in]
        topics[first, pixel_out] = 0.0
        topics[first, pixel_in] = mass_out
        topics[second, pixel_in] = 0.0
        topics[second, pixel_out] = mass_in
    return (topics / topics.sum(axis=1, keepdims=True)), pairs


def topic_image(distribution: np.ndarray) -> np.ndarray:
    """Fig. 5's intensity rendering: ``I = max(5 * P(w|t), 1)`` scaled to
    a 5x5 array (values in [0.2, 1] after normalizing by 5)."""
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.shape != (GRID_SIZE * GRID_SIZE,):
        raise ValueError(
            f"expected shape ({GRID_SIZE * GRID_SIZE},), got "
            f"{distribution.shape}")
    intensity = np.maximum(GRID_SIZE * distribution, 1.0 / GRID_SIZE)
    return intensity.reshape(GRID_SIZE, GRID_SIZE)


def render_topic_ascii(distribution: np.ndarray) -> str:
    """Text rendering of one topic for console reports."""
    shades = " .:*#@"
    image = topic_image(distribution)
    scaled = np.clip((image / image.max()) * (len(shades) - 1), 0,
                     len(shades) - 1).astype(int)
    return "\n".join("".join(shades[v] for v in row) for row in scaled)


@dataclass(frozen=True)
class GraphicalCorpus:
    """The generated corpus with its evaluation-only answer key."""

    corpus: Corpus
    token_topics: np.ndarray
    document_theta: np.ndarray
    augmented_topics: np.ndarray
    original: np.ndarray
    pairs: list[tuple[int, int]]


def generate_graphical_corpus(num_documents: int = 2000,
                              words_per_document: int = 25,
                              alpha: float = 1.0,
                              seed: int | np.random.Generator | None = 0,
                              ) -> GraphicalCorpus:
    """Generate the Section IV.A corpus from augmented topics.

    2,000 documents of 25 words each (the paper's sizes), topics drawn from
    ``Dir(alpha=1)`` document mixtures over the augmented topics.
    """
    if num_documents < 1 or words_per_document < 1:
        raise ValueError("num_documents and words_per_document must be >= 1")
    rng = ensure_rng(seed)
    vocabulary = pixel_vocabulary()
    original = original_topics()
    augmented, pairs = augment_topics(original, rng)
    theta = rng.dirichlet(np.full(NUM_TOPICS, alpha), size=num_documents)
    documents = []
    token_topics = np.empty(num_documents * words_per_document,
                            dtype=np.int64)
    cursor = 0
    cumulative = np.cumsum(augmented, axis=1)
    for doc_index in range(num_documents):
        topics = rng.choice(NUM_TOPICS, size=words_per_document,
                            p=theta[doc_index])
        uniforms = rng.random(words_per_document)
        words = np.empty(words_per_document, dtype=np.int64)
        for position in range(words_per_document):
            words[position] = np.searchsorted(
                cumulative[topics[position]], uniforms[position],
                side="right")
        documents.append(Document(word_ids=words, doc_id=doc_index))
        token_topics[cursor:cursor + words_per_document] = topics
        cursor += words_per_document
    corpus = Corpus(documents, vocabulary)
    return GraphicalCorpus(corpus=corpus, token_topics=token_topics,
                           document_theta=theta,
                           augmented_topics=augmented, original=original,
                           pairs=pairs)


def graphical_knowledge_source(tokens_per_article: int = 100
                               ) -> KnowledgeSource:
    """The *original* (non-augmented) topics as a knowledge source.

    Each topic becomes an "article" repeating its assigned pixels in
    proportion to their probability — the exact count vector Definition 2
    would extract from a real article about the topic.
    """
    if tokens_per_article < NUM_TOPICS:
        raise ValueError(
            f"tokens_per_article must be >= {NUM_TOPICS}")
    vocabulary = pixel_vocabulary()
    topics = original_topics()
    articles: dict[str, list[str]] = {}
    for index in range(NUM_TOPICS):
        kind = "row" if index < GRID_SIZE else "column"
        label = f"{kind}-{index % GRID_SIZE}"
        tokens: list[str] = []
        for word_id in np.flatnonzero(topics[index] > 0):
            count = int(round(topics[index, word_id] * tokens_per_article))
            tokens.extend([vocabulary.word(int(word_id))] * max(count, 1))
        articles[label] = tokens
    return KnowledgeSource(articles)
