"""Dataset builders: the graphical example and generative corpora."""

from repro.datasets.graphical import (GraphicalCorpus, augment_topics,
                                      generate_graphical_corpus,
                                      graphical_knowledge_source,
                                      original_topics, pixel_vocabulary,
                                      render_topic_ascii, topic_image)
from repro.datasets.synthetic import (SyntheticCorpus,
                                      generate_source_lda_corpus,
                                      restrict_source_to_truth)

__all__ = [
    "GraphicalCorpus",
    "SyntheticCorpus",
    "augment_topics",
    "generate_graphical_corpus",
    "generate_source_lda_corpus",
    "graphical_knowledge_source",
    "original_topics",
    "pixel_vocabulary",
    "render_topic_ascii",
    "restrict_source_to_truth",
    "topic_image",
]
