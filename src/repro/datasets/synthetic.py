"""Generative-model corpus synthesis (Sections IV.B and IV.D setups).

The lambda-integration and Wikipedia-corpus experiments score models
against corpora generated *by the Source-LDA generative process itself*:

1. choose ``K`` topics from a ``B``-topic knowledge source (possibly all);
2. for each chosen topic draw ``lambda_t ~ N(mu, sigma)`` bounded to
   ``[0, 1]`` and a word distribution
   ``phi_t ~ Dir(X_t ^ lambda_t)``;
3. generate each document with ``theta_d ~ Dir(alpha)`` over the chosen
   topics and tokens from the usual two-step draw.

Because the generating topic of every token is recorded, classification
accuracy (Fig. 7, Fig. 8a/b) and theta divergence (Fig. 8d/e) can be
computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knowledge.distributions import (DEFAULT_EPSILON,
                                           powered_hyperparameters,
                                           sample_topic_distribution,
                                           source_hyperparameters)
from repro.knowledge.source import KnowledgeSource
from repro.sampling.rng import ensure_rng
from repro.text.corpus import Corpus, Document
from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class SyntheticCorpus:
    """A generated corpus plus its evaluation-only answer key.

    ``token_topics`` index into ``chosen_topics`` (i.e. values are in
    ``[0, K)``), whose entries are the knowledge-source labels actually
    used.
    """

    corpus: Corpus
    chosen_topics: tuple[str, ...]
    chosen_indices: np.ndarray
    token_topics: np.ndarray
    document_theta: np.ndarray
    topic_distributions: np.ndarray
    lambdas: np.ndarray

    @property
    def num_topics(self) -> int:
        return len(self.chosen_topics)

    def token_topics_by_document(self) -> list[np.ndarray]:
        """Ground-truth token topics split per document."""
        result = []
        cursor = 0
        for doc in self.corpus:
            result.append(self.token_topics[cursor:cursor + len(doc)])
            cursor += len(doc)
        return result


def generate_source_lda_corpus(
        source: KnowledgeSource,
        num_topics: int | None = None,
        num_documents: int = 500,
        avg_document_length: float = 100.0,
        alpha: float = 0.5,
        mu: float = 0.5,
        sigma: float = 1.0,
        epsilon: float = DEFAULT_EPSILON,
        vocabulary: Vocabulary | None = None,
        seed: int | np.random.Generator | None = None) -> SyntheticCorpus:
    """Generate a corpus by the Source-LDA generative process.

    Parameters
    ----------
    source:
        Knowledge source of ``B`` candidate topics.
    num_topics:
        ``K`` topics actually used (sampled without replacement from the
        source); ``None`` uses every topic — the bijective setting of the
        Fig. 7 experiment.
    avg_document_length:
        Poisson mean of tokens per document (``N_d ~ Poisson(xi)``).
    mu, sigma:
        Gaussian lambda prior; draws are bounded to ``[0, 1]`` "for
        comparative analysis" as in Section IV.B.
    vocabulary:
        Vocabulary to generate against; defaults to the source's own.
    """
    if num_documents < 1:
        raise ValueError(f"num_documents must be >= 1, got {num_documents}")
    if avg_document_length <= 0:
        raise ValueError(
            f"avg_document_length must be positive, got "
            f"{avg_document_length}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = ensure_rng(seed)
    vocab = vocabulary if vocabulary is not None else \
        source.vocabulary().freeze()
    counts = source.count_matrix(vocab)
    hyper = source_hyperparameters(counts, epsilon)
    total_topics = len(source)
    if num_topics is None:
        chosen = np.arange(total_topics)
    else:
        if not 1 <= num_topics <= total_topics:
            raise ValueError(
                f"num_topics must be in [1, {total_topics}], got "
                f"{num_topics}")
        chosen = np.sort(rng.choice(total_topics, size=num_topics,
                                    replace=False))
    k = chosen.shape[0]
    lambdas = np.clip(rng.normal(mu, sigma, size=k), 0.0, 1.0)
    distributions = np.empty((k, len(vocab)))
    for row, topic_index in enumerate(chosen):
        delta = powered_hyperparameters(hyper[topic_index], lambdas[row])
        distributions[row] = sample_topic_distribution(delta, rng)
    cumulative = np.cumsum(distributions, axis=1)

    theta = rng.dirichlet(np.full(k, alpha), size=num_documents)
    documents: list[Document] = []
    token_topic_chunks: list[np.ndarray] = []
    for doc_index in range(num_documents):
        length = max(1, int(rng.poisson(avg_document_length)))
        topics = rng.choice(k, size=length, p=theta[doc_index])
        uniforms = rng.random(length)
        words = np.empty(length, dtype=np.int64)
        for position in range(length):
            words[position] = np.searchsorted(
                cumulative[topics[position]], uniforms[position],
                side="right")
        documents.append(Document(word_ids=words, doc_id=doc_index))
        token_topic_chunks.append(topics.astype(np.int64))
    corpus = Corpus(documents, vocab)
    return SyntheticCorpus(
        corpus=corpus,
        chosen_topics=tuple(source.labels[int(i)] for i in chosen),
        chosen_indices=chosen,
        token_topics=np.concatenate(token_topic_chunks),
        document_theta=theta,
        topic_distributions=distributions,
        lambdas=lambdas)


def restrict_source_to_truth(source: KnowledgeSource,
                             synthetic: SyntheticCorpus) -> KnowledgeSource:
    """The knowledge source containing exactly the generating topics.

    This is the "Exact"/bijective evaluation condition of Fig. 8(b)/(e):
    models are told precisely which topics generated the corpus.
    """
    return source.subset(synthetic.chosen_topics)
