"""Superset topic reduction (Section III.C.3).

Source-LDA accepts a *superset* of candidate source topics so the user
never has to hand-pick which ones a corpus actually contains.  After
sampling, two reduction mechanisms select the surviving topics:

* a document-frequency threshold — "topics not appearing in a frequent
  enough of documents were eliminated";
* optional clustering of the remaining topic-word distributions (the paper
  suggests k-means under JS divergence) down to a target count.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.divergence import js_divergence_matrix
from repro.sampling.rng import ensure_rng


def topic_document_frequencies(theta: np.ndarray,
                               min_proportion: float = 0.05) -> np.ndarray:
    """How many documents give each topic at least ``min_proportion`` mass.

    ``theta`` is ``(D, T)``; returns an integer ``(T,)`` vector.
    """
    theta = np.asarray(theta, dtype=np.float64)
    if theta.ndim != 2:
        raise ValueError(f"theta must be 2-d, got shape {theta.shape}")
    if not 0.0 <= min_proportion <= 1.0:
        raise ValueError(
            f"min_proportion must be in [0, 1], got {min_proportion}")
    return (theta >= min_proportion).sum(axis=0).astype(np.int64)


def topic_document_frequencies_from_counts(nd: np.ndarray,
                                           doc_lengths: np.ndarray,
                                           min_proportion: float = 0.05
                                           ) -> np.ndarray:
    """Document frequencies from raw assignment counts.

    A topic "appears in" a document when it holds at least
    ``max(1, min_proportion * doc_length)`` of the document's tokens.
    Counts, unlike the smoothed ``theta``, are exactly zero for topics no
    token was assigned to — this is the paper's "eliminate topics which
    are not assigned to any documents" criterion.
    """
    nd = np.asarray(nd, dtype=np.float64)
    doc_lengths = np.asarray(doc_lengths, dtype=np.float64)
    if nd.ndim != 2:
        raise ValueError(f"nd must be 2-d, got shape {nd.shape}")
    if doc_lengths.shape != (nd.shape[0],):
        raise ValueError(
            f"doc_lengths must have shape ({nd.shape[0]},), got "
            f"{doc_lengths.shape}")
    if not 0.0 <= min_proportion <= 1.0:
        raise ValueError(
            f"min_proportion must be in [0, 1], got {min_proportion}")
    thresholds = np.maximum(1.0, min_proportion * doc_lengths)
    return (nd >= thresholds[:, np.newaxis]).sum(axis=0).astype(np.int64)


def reduce_by_count_frequency(nd: np.ndarray, doc_lengths: np.ndarray,
                              min_documents: int = 1,
                              min_proportion: float = 0.05) -> np.ndarray:
    """Count-based variant of :func:`reduce_by_document_frequency`."""
    if min_documents < 0:
        raise ValueError(f"min_documents must be >= 0, got {min_documents}")
    frequencies = topic_document_frequencies_from_counts(
        nd, doc_lengths, min_proportion)
    return np.flatnonzero(frequencies >= min_documents)


def reduce_by_document_frequency(theta: np.ndarray,
                                 min_documents: int = 1,
                                 min_proportion: float = 0.05
                                 ) -> np.ndarray:
    """Indices of topics that clear the document-frequency threshold."""
    if min_documents < 0:
        raise ValueError(
            f"min_documents must be >= 0, got {min_documents}")
    frequencies = topic_document_frequencies(theta, min_proportion)
    return np.flatnonzero(frequencies >= min_documents)


def cluster_topics_js(phi: np.ndarray, num_clusters: int,
                      iterations: int = 20,
                      seed: int | np.random.Generator | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """K-means over topic-word distributions with JS-divergence distance.

    Returns ``(labels, centroids)`` where ``labels[t]`` is the cluster of
    topic ``t`` and ``centroids`` is ``(num_clusters, V)`` (cluster means,
    renormalized).  Used to compress surviving superset topics to the
    requested ``K`` final topics.
    """
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError(f"phi must be 2-d, got shape {phi.shape}")
    num_topics = phi.shape[0]
    if not 1 <= num_clusters <= num_topics:
        raise ValueError(
            f"num_clusters must be in [1, {num_topics}], got {num_clusters}")
    rng = ensure_rng(seed)
    chosen = rng.choice(num_topics, size=num_clusters, replace=False)
    centroids = phi[chosen].copy()
    labels = np.full(num_topics, -1, dtype=np.int64)
    for _ in range(iterations):
        distances = js_divergence_matrix(phi, centroids)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for cluster in range(num_clusters):
            members = phi[labels == cluster]
            if members.shape[0] == 0:
                # Re-seed an empty cluster on the farthest topic.
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = phi[farthest]
            else:
                mean = members.mean(axis=0)
                centroids[cluster] = mean / mean.sum()
    return labels, centroids


def select_final_topics(theta: np.ndarray, phi: np.ndarray,
                        target_count: int,
                        min_documents: int = 1,
                        min_proportion: float = 0.05,
                        seed: int | np.random.Generator | None = None
                        ) -> np.ndarray:
    """The complete reduction pipeline: threshold, then cluster if needed.

    Returns the indices of at most ``target_count`` surviving topics.  When
    thresholding already leaves ``target_count`` or fewer topics, those are
    returned directly; otherwise the survivors are clustered under JS
    divergence and the most-used topic of each cluster is kept.
    """
    if target_count < 1:
        raise ValueError(f"target_count must be >= 1, got {target_count}")
    survivors = reduce_by_document_frequency(theta, min_documents,
                                             min_proportion)
    if survivors.size == 0:
        # Nothing cleared the bar; keep the most document-frequent topics.
        frequencies = topic_document_frequencies(theta, min_proportion)
        order = np.argsort(-frequencies, kind="stable")
        return np.sort(order[:target_count])
    if survivors.size <= target_count:
        return survivors
    labels, _ = cluster_topics_js(phi[survivors],
                                  num_clusters=target_count, seed=seed)
    usage = theta.sum(axis=0)[survivors]
    kept = []
    for cluster in range(target_count):
        members = np.flatnonzero(labels == cluster)
        if members.size == 0:
            continue
        best = members[np.argmax(usage[members])]
        kept.append(int(survivors[best]))
    return np.sort(np.asarray(kept, dtype=np.int64))
