"""The Source-LDA Gibbs kernel (Equations 2, 3 and 4).

One kernel covers the whole model family.  Topics are laid out as ``K``
unlabeled topics followed by ``S`` source topics:

* unlabeled topics use the symmetric-``beta`` term of Equation 2;
* source topics use the lambda-integrated term of Equation 3, approximated
  on a :class:`~repro.sampling.integration.LambdaGrid` — a single-node grid
  degenerates to the fixed-delta bijective/mixture models of
  Sections III.A/B.

``phi`` follows Equation 4, and the complete-data log-likelihood marginalizes
each source topic's lambda over the grid with log-sum-exp (topics draw
independent lambdas in the generative process, so the marginal factorizes
over topics).
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.core.priors import GridDeltaTables
from repro.sampling.gibbs import (TopicWeightKernel,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.integration import LambdaGrid
from repro.sampling.state import GibbsState


class SourceTopicsKernel(TopicWeightKernel):
    """Collapsed-Gibbs weights for ``K`` free + ``S`` source topics.

    Parameters
    ----------
    state:
        Gibbs state with ``K + S`` topics.
    num_free:
        ``K``, the number of unlabeled topics (may be 0 — the bijective
        layout).
    alpha, beta:
        Document-topic prior and the free topics' symmetric word prior.
    tables:
        Powered-delta lookup tables for the source topics (already
        incorporating the smoothing function ``g``).
    grid:
        Quadrature nodes/weights of the lambda prior.
    """

    def __init__(self, state: GibbsState, num_free: int, alpha: float,
                 beta: float, tables: GridDeltaTables,
                 grid: LambdaGrid) -> None:
        super().__init__(state)
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}")
        num_source = state.num_topics - num_free
        if num_free < 0 or num_source < 1:
            raise ValueError(
                f"invalid split: {num_free} free of {state.num_topics} "
                f"total topics")
        if tables.num_topics != num_source:
            raise ValueError(
                f"tables cover {tables.num_topics} source topics, state "
                f"expects {num_source}")
        if tables.num_nodes != len(grid):
            raise ValueError(
                f"tables were built for {tables.num_nodes} nodes, grid has "
                f"{len(grid)}")
        self.alpha = alpha
        self.beta = beta
        self.num_free = num_free
        self.num_source = num_source
        self.tables = tables
        self.grid = grid
        self._beta_sum = beta * state.vocab_size
        self._omega = grid.weights

    def weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = np.empty(state.num_topics, dtype=np.float64)
        if k:
            out[:k] = ((state.nw[word, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum))
        delta_word = self.tables.delta_for_word(word)          # (S, A)
        numerator = state.nw[word, k:, np.newaxis] + delta_word
        denominator = state.nt[k:, np.newaxis] + self.tables.sum_delta
        out[k:] = (numerator / denominator) @ self._omega
        out *= state.nd[doc] + self.alpha
        return out

    def phi(self, chunk_size: int = 512) -> np.ndarray:
        """Equation 4: symmetric rows for free topics, integrated rows for
        source topics."""
        state = self.state
        k = self.num_free
        phi = np.empty((state.num_topics, state.vocab_size))
        if k:
            phi[:k] = ((state.nw[:, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum)).T
        denominator = state.nt[k:, np.newaxis] + self.tables.sum_delta
        for start in range(0, state.vocab_size, chunk_size):
            stop = min(start + chunk_size, state.vocab_size)
            words = np.arange(start, stop)
            delta = self.tables.delta_for_words(words)         # (W, S, A)
            numerator = state.nw[start:stop, k:, np.newaxis] + delta
            ratios = numerator / denominator[np.newaxis, :, :]
            phi[k:, start:stop] = (ratios @ self._omega).T
        return phi

    def log_likelihood(self) -> float:
        state = self.state
        k = self.num_free
        total = 0.0
        if k:
            total += symmetric_dirichlet_log_likelihood(
                state.nw[:, :k], state.nt[:k], self.beta)
        total += self._source_log_likelihood()
        return float(total)

    def _source_log_likelihood(self) -> float:
        """Per source topic: ``logsumexp_a [log w_a + log P(w | z, d_ta)]``.

        ``log P(w | z, delta)`` is the Dirichlet-multinomial closed form.
        Evaluated lazily (only when likelihood tracking is requested)
        because it costs ``O(S * A * V)`` gammaln calls.
        """
        state = self.state
        k = self.num_free
        tables = self.tables
        counts = state.nw[:, k:].T                              # (S, V)
        log_node = np.empty((self.num_source, tables.num_nodes))
        for node in range(tables.num_nodes):
            # Reconstruct delta for this node from the power table by
            # gathering all words once (chunked to bound memory).
            per_topic = np.zeros(self.num_source)
            sum_gamma_delta = np.zeros(self.num_source)
            chunk = 2048
            for start in range(0, state.vocab_size, chunk):
                stop = min(start + chunk, state.vocab_size)
                words = np.arange(start, stop)
                delta_chunk = tables.delta_for_words(words)[:, :, node]
                per_topic += gammaln(
                    counts[:, start:stop].T + delta_chunk).sum(axis=0)
                sum_gamma_delta += gammaln(delta_chunk).sum(axis=0)
            sums = tables.sum_delta[:, node]
            log_node[:, node] = (gammaln(sums) - sum_gamma_delta
                                 + per_topic
                                 - gammaln(state.nt[k:] + sums))
        log_weights = np.log(self.grid.weights)
        return float(logsumexp(log_node + log_weights[np.newaxis, :],
                               axis=1).sum())
