"""The Source-LDA Gibbs kernel (Equations 2, 3 and 4).

One kernel covers the whole model family.  Topics are laid out as ``K``
unlabeled topics followed by ``S`` source topics:

* unlabeled topics use the symmetric-``beta`` term of Equation 2;
* source topics use the lambda-integrated term of Equation 3, approximated
  on a :class:`~repro.sampling.integration.LambdaGrid` — a single-node grid
  degenerates to the fixed-delta bijective/mixture models of
  Sections III.A/B.

``phi`` follows Equation 4, and the complete-data log-likelihood marginalizes
each source topic's lambda over the grid with log-sum-exp (topics draw
independent lambdas in the generative process, so the marginal factorizes
over topics).

Fast-path algebra
-----------------
The per-token integrated source weight of Equation 3,

    w_t  =  sum_a omega_a * (nw[w,t] + delta[t,w,a]) / (nt[t] + sd[t,a]),

(``sd = sum_delta``) costs ``O(S * A)`` per token when evaluated directly.
It decomposes into ``w_t = nw[w,t] * C[t] + D[w,t]`` with

    C[t]    = sum_a omega_a / (nt[t] + sd[t,a])
    D[w,t]  = sum_a omega_a * delta[t,w,a] / (nt[t] + sd[t,a]),

both pure functions of ``nt[t]`` — and a Gibbs step changes ``nt`` for at
most two topics.  Because ``delta[t,w,a]`` takes values from the tiny
``(U, S, A)`` unique-value table of :class:`GridDeltaTables`, ``D`` is
representable as ``E[u, t]`` with ``u = inverse[t, w]``: refreshing one
topic's column after its ``nt`` changes costs ``O(U * A)``, and the
per-token evaluation is an ``O(S)`` gather plus multiply-add.
:class:`SourceTopicsFastPath` implements exactly this for the fast sweep
engine (:mod:`repro.sampling.fast_engine`).
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.core.priors import GridDeltaTables
from repro.sampling.fast_engine import FastKernelPath
from repro.sampling.gibbs import (TopicWeightKernel,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.integration import LambdaGrid
from repro.sampling.state import GibbsState


class SourceTopicsKernel(TopicWeightKernel):
    """Collapsed-Gibbs weights for ``K`` free + ``S`` source topics.

    Parameters
    ----------
    state:
        Gibbs state with ``K + S`` topics.
    num_free:
        ``K``, the number of unlabeled topics (may be 0 — the bijective
        layout).
    alpha, beta:
        Document-topic prior and the free topics' symmetric word prior.
    tables:
        Powered-delta lookup tables for the source topics (already
        incorporating the smoothing function ``g``).
    grid:
        Quadrature nodes/weights of the lambda prior.
    """

    def __init__(self, state: GibbsState, num_free: int, alpha: float,
                 beta: float, tables: GridDeltaTables,
                 grid: LambdaGrid) -> None:
        super().__init__(state)
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}")
        num_source = state.num_topics - num_free
        if num_free < 0 or num_source < 1:
            raise ValueError(
                f"invalid split: {num_free} free of {state.num_topics} "
                f"total topics")
        if tables.num_topics != num_source:
            raise ValueError(
                f"tables cover {tables.num_topics} source topics, state "
                f"expects {num_source}")
        if tables.num_nodes != len(grid):
            raise ValueError(
                f"tables were built for {tables.num_nodes} nodes, grid has "
                f"{len(grid)}")
        self.alpha = alpha
        self.beta = beta
        self.num_free = num_free
        self.num_source = num_source
        self.tables = tables
        self.grid = grid
        self._beta_sum = beta * state.vocab_size
        self._omega = grid.weights

    def weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = np.empty(state.num_topics, dtype=np.float64)
        if k:
            out[:k] = ((state.nw[word, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum))
        delta_word = self.tables.delta_for_word(word)          # (S, A)
        numerator = state.nw[word, k:, np.newaxis] + delta_word
        denominator = state.nt[k:, np.newaxis] + self.tables.sum_delta
        out[k:] = (numerator / denominator) @ self._omega
        out *= state.nd[doc] + self.alpha
        return out

    def phi(self, chunk_size: int = 512) -> np.ndarray:
        """Equation 4: symmetric rows for free topics, integrated rows for
        source topics."""
        state = self.state
        k = self.num_free
        phi = np.empty((state.num_topics, state.vocab_size))
        if k:
            phi[:k] = ((state.nw[:, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum)).T
        denominator = state.nt[k:, np.newaxis] + self.tables.sum_delta
        for start in range(0, state.vocab_size, chunk_size):
            stop = min(start + chunk_size, state.vocab_size)
            words = np.arange(start, stop)
            delta = self.tables.delta_for_words(words)         # (W, S, A)
            numerator = state.nw[start:stop, k:, np.newaxis] + delta
            ratios = numerator / denominator[np.newaxis, :, :]
            phi[k:, start:stop] = (ratios @ self._omega).T
        return phi

    def log_likelihood(self) -> float:
        state = self.state
        k = self.num_free
        total = 0.0
        if k:
            total += symmetric_dirichlet_log_likelihood(
                state.nw[:, :k], state.nt[:k], self.beta)
        total += self._source_log_likelihood()
        return float(total)

    def _source_log_likelihood(self, chunk: int = 65536) -> float:
        """Per source topic: ``logsumexp_a [log w_a + log P(w | z, d_ta)]``.

        ``log P(w | z, delta)`` is the Dirichlet-multinomial closed form

            gammaln(sd) - gammaln(nt + sd)
            + sum_w [gammaln(nw + delta) - gammaln(delta)],

        where the per-word bracket vanishes for every word with a zero
        count — so only the nonzero entries of the ``(S, V)`` count
        matrix contribute.  This pass gathers those entries once (their
        ``gammaln(delta)`` comes from the cached unique-value table) and
        scatter-adds the brackets per topic: ``O(nnz * A)`` gammaln calls
        instead of the ``O(S * A * V)`` of a dense per-node evaluation.
        ``chunk`` bounds the temporary ``(chunk, A)`` gather buffers.
        """
        state = self.state
        k = self.num_free
        tables = self.tables
        counts = state.nw[:, k:].T                              # (S, V)
        topic_idx, word_idx = np.nonzero(counts)
        bracket = np.zeros((self.num_source, tables.num_nodes))
        for start in range(0, topic_idx.shape[0], chunk):
            topics = topic_idx[start:start + chunk]
            words = word_idx[start:start + chunk]
            delta = tables.delta_for_pairs(topics, words)       # (n, A)
            contrib = (gammaln(counts[topics, words][:, np.newaxis]
                               + delta)
                       - tables.log_gamma_for_pairs(topics, words))
            np.add.at(bracket, topics, contrib)
        log_node = (gammaln(tables.sum_delta) + bracket
                    - gammaln(state.nt[k:, np.newaxis]
                              + tables.sum_delta))
        log_weights = np.log(self.grid.weights)
        return float(logsumexp(log_node + log_weights[np.newaxis, :],
                               axis=1).sum())

    def fast_path(self) -> "SourceTopicsFastPath":
        return SourceTopicsFastPath(self)


class SourceTopicsFastPath(FastKernelPath):
    """Incremental ``nw * C + D`` evaluation of Equation 3.

    See the module docstring for the algebra.  ``C`` and ``E`` are fused
    into one cache by prepending a *unit row* to the powered-value
    table: ``1 ** exp = 1``, so integrating the augmented table against
    ``omega / (nt + sd)`` yields ``C[t]`` in row 0 and ``E[u, t]`` in the
    remaining rows with a single matrix product.  Caches:

    ``_E``
        ``(U + 1, S)`` C-contiguous — row 0 is ``C``, row ``u + 1`` is
        ``E`` for unique value ``u``; ``D[w, t] = E[inverse[t, w] + 1, t]``.
    ``_flat``
        ``(V, S)`` — per-word flattened gather indices into ``_E`` so a
        token's ``D`` row is a single ``take``.
    ``_nt_free``
        ``(K,)`` — the free topics' ``nt + V * beta`` denominators.

    Only the entries keyed on a changed ``nt[topic]`` are refreshed per
    token (``O(U * A)`` for a source topic, ``O(1)`` for a free topic).
    """

    def __init__(self, kernel: SourceTopicsKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self.num_free = kernel.num_free
        self._beta_sum = kernel._beta_sum
        self._omega = kernel._omega                       # (A,)
        tables = kernel.tables
        self._sum_delta = tables.sum_delta                # (S, A)
        num_source = kernel.num_source
        num_unique = tables.power_table.shape[0]
        # (S, U + 1, A): per-topic contiguous augmented tables, unit row
        # first so one ``aug[t] @ ratio`` refreshes C and E together.
        aug = np.empty((num_source, num_unique + 1, tables.num_nodes))
        aug[:, 0, :] = 1.0
        aug[:, 1:, :] = tables.power_table.transpose(1, 0, 2)
        self._aug = aug
        inverse = tables.inverse                          # (S, V)
        self._flat = np.ascontiguousarray(
            (inverse.T.astype(np.int64) + 1) * num_source
            + np.arange(num_source, dtype=np.int64)[np.newaxis, :])
        self._E = np.empty((num_unique + 1, num_source))
        self._E_flat = self._E.reshape(-1)
        self._C = self._E[0]
        self._nt_free = np.empty(self.num_free)
        self._dbuf = np.empty(num_source)
        self._out = np.empty(kernel.state.num_topics)

    def begin_sweep(self) -> None:
        state = self.state
        k = self.num_free
        np.add(state.nt[:k], self._beta_sum, out=self._nt_free)
        # Refresh every column through topic_changed rather than one
        # batched einsum: the per-column matmul and a batched contraction
        # are not guaranteed to round identically, and a cache entry must
        # not depend on which refresh path last wrote it (a sweep
        # boundary would otherwise perturb weights with no count change).
        for topic in range(k, state.num_topics):
            self.topic_changed(topic)

    def topic_changed(self, topic: int) -> None:
        k = self.num_free
        if topic < k:
            self._nt_free[topic] = self.state.nt[topic] + self._beta_sum
            return
        t = topic - k
        ratio = self._omega / (self.state.nt[topic] + self._sum_delta[t])
        self._E[:, t] = self._aug[t] @ ratio

    def weights(self, word: int, doc_row: np.ndarray) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = self._out
        self._E_flat.take(self._flat[word], out=self._dbuf)
        if k:
            np.divide(state.nw[word, :k] + self.beta, self._nt_free,
                      out=out[:k])
            np.multiply(state.nw[word, k:], self._C, out=out[k:])
            out[k:] += self._dbuf
        else:
            np.multiply(state.nw[word], self._C, out=out)
            out += self._dbuf
        out *= doc_row
        return out
