"""The Source-LDA Gibbs kernel (Equations 2, 3 and 4).

One kernel covers the whole model family.  Topics are laid out as ``K``
unlabeled topics followed by ``S`` source topics:

* unlabeled topics use the symmetric-``beta`` term of Equation 2;
* source topics use the lambda-integrated term of Equation 3, approximated
  on a :class:`~repro.sampling.integration.LambdaGrid` — a single-node grid
  degenerates to the fixed-delta bijective/mixture models of
  Sections III.A/B.

``phi`` follows Equation 4, and the complete-data log-likelihood marginalizes
each source topic's lambda over the grid with log-sum-exp (topics draw
independent lambdas in the generative process, so the marginal factorizes
over topics).

Fast-path algebra
-----------------
The per-token integrated source weight of Equation 3,

    w_t  =  sum_a omega_a * (nw[w,t] + delta[t,w,a]) / (nt[t] + sd[t,a]),

(``sd = sum_delta``) costs ``O(S * A)`` per token when evaluated directly.
It decomposes into ``w_t = nw[w,t] * C[t] + D[w,t]`` with

    C[t]    = sum_a omega_a / (nt[t] + sd[t,a])
    D[w,t]  = sum_a omega_a * delta[t,w,a] / (nt[t] + sd[t,a]),

both pure functions of ``nt[t]`` — and a Gibbs step changes ``nt`` for at
most two topics.  Because ``delta[t,w,a]`` takes values from the tiny
``(U, S, A)`` unique-value table of :class:`GridDeltaTables`, ``D`` is
representable as ``E[u, t]`` with ``u = inverse[t, w]``: refreshing one
topic's column after its ``nt`` changes costs ``O(U * A)``, and the
per-token evaluation is an ``O(S)`` gather plus multiply-add.
:class:`SourceTopicsFastPath` implements exactly this for the fast sweep
engine (:mod:`repro.sampling.fast_engine`).
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.core.priors import GridDeltaTables
from repro.sampling.alias_engine import AliasKernelPath
from repro.sampling.fast_engine import FastKernelPath
from repro.sampling.gibbs import (TopicWeightKernel,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.integration import LambdaGrid
from repro.sampling.runtime import (BLOCK_SHIFT, BLOCK_SIZE, AliasMHTable,
                                    SourceBijectiveTable, SourceDenseTable,
                                    TopicSet, WordTopicLists,
                                    rebuild_alias_dense,
                                    run_source_bijective_chunk)
from repro.sampling.scans import last_positive_index
from repro.sampling.sparse_engine import SparseKernelPath
from repro.sampling.state import GibbsState


class SourceTopicsKernel(TopicWeightKernel):
    """Collapsed-Gibbs weights for ``K`` free + ``S`` source topics.

    Parameters
    ----------
    state:
        Gibbs state with ``K + S`` topics.
    num_free:
        ``K``, the number of unlabeled topics (may be 0 — the bijective
        layout).
    alpha, beta:
        Document-topic prior and the free topics' symmetric word prior.
    tables:
        Powered-delta lookup tables for the source topics (already
        incorporating the smoothing function ``g``).
    grid:
        Quadrature nodes/weights of the lambda prior.
    """

    def __init__(self, state: GibbsState, num_free: int, alpha: float,
                 beta: float, tables: GridDeltaTables,
                 grid: LambdaGrid) -> None:
        super().__init__(state)
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}")
        num_source = state.num_topics - num_free
        if num_free < 0 or num_source < 1:
            raise ValueError(
                f"invalid split: {num_free} free of {state.num_topics} "
                f"total topics")
        if tables.num_topics != num_source:
            raise ValueError(
                f"tables cover {tables.num_topics} source topics, state "
                f"expects {num_source}")
        if tables.num_nodes != len(grid):
            raise ValueError(
                f"tables were built for {tables.num_nodes} nodes, grid has "
                f"{len(grid)}")
        self.alpha = alpha
        self.beta = beta
        self.num_free = num_free
        self.num_source = num_source
        self.tables = tables
        self.grid = grid
        self._beta_sum = beta * state.vocab_size
        self._omega = grid.weights

    def weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = np.empty(state.num_topics, dtype=np.float64)
        if k:
            out[:k] = ((state.nw[word, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum))
        delta_word = self.tables.delta_for_word(word)          # (S, A)
        numerator = state.nw[word, k:, np.newaxis] + delta_word
        denominator = state.nt[k:, np.newaxis] + self.tables.sum_delta
        out[k:] = (numerator / denominator) @ self._omega
        out *= state.nd[doc] + self.alpha
        return out

    def phi(self) -> np.ndarray:
        """Equation 4: symmetric rows for free topics, integrated rows for
        source topics.

        The source block uses the ``nw * C + D`` decomposition of the
        module docstring: the lambda integral is evaluated once per
        *unique* hyperparameter value (``O(U * S * A)``), the dense
        ``D`` block is a gather through the inverse table, and the
        count-dependent ``nw * C`` part is scatter-added over the
        nonzero word-topic counts — ``O(U * S * A + S * V + nnz)``
        instead of the dense ``O(V * S * A)`` walk.
        """
        state = self.state
        k = self.num_free
        tables = self.tables
        phi = np.empty((state.num_topics, state.vocab_size))
        if k:
            phi[:k] = ((state.nw[:, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum)).T
        # ratio[t, a] = omega_a / (nt[t] + sum_delta[t, a])
        ratio = self._omega / (state.nt[k:, np.newaxis] + tables.sum_delta)
        # integrated[u, t] = sum_a unique_u^exp[t,a] * ratio[t, a]
        integrated = np.einsum("uta,ta->ut", tables.power_table, ratio)
        phi[k:] = integrated[tables.inverse,
                             np.arange(self.num_source)[:, np.newaxis]]
        counts = state.nw[:, k:]
        word_idx, topic_idx = np.nonzero(counts)
        if word_idx.size:
            c_per_topic = ratio.sum(axis=1)                    # C[t]
            phi[k + topic_idx, word_idx] += (counts[word_idx, topic_idx]
                                             * c_per_topic[topic_idx])
        return phi

    def log_likelihood(self) -> float:
        state = self.state
        k = self.num_free
        total = 0.0
        if k:
            total += symmetric_dirichlet_log_likelihood(
                state.nw[:, :k], state.nt[:k], self.beta)
        total += self._source_log_likelihood()
        return float(total)

    def _source_log_likelihood(self, chunk: int = 65536) -> float:
        """Per source topic: ``logsumexp_a [log w_a + log P(w | z, d_ta)]``.

        ``log P(w | z, delta)`` is the Dirichlet-multinomial closed form

            gammaln(sd) - gammaln(nt + sd)
            + sum_w [gammaln(nw + delta) - gammaln(delta)],

        where the per-word bracket vanishes for every word with a zero
        count — so only the nonzero entries of the ``(S, V)`` count
        matrix contribute.  This pass gathers those entries once (their
        ``gammaln(delta)`` comes from the cached unique-value table) and
        scatter-adds the brackets per topic: ``O(nnz * A)`` gammaln calls
        instead of the ``O(S * A * V)`` of a dense per-node evaluation.
        ``chunk`` bounds the temporary ``(chunk, A)`` gather buffers.
        """
        state = self.state
        k = self.num_free
        tables = self.tables
        counts = state.nw[:, k:].T                              # (S, V)
        topic_idx, word_idx = np.nonzero(counts)
        bracket = np.zeros((self.num_source, tables.num_nodes))
        for start in range(0, topic_idx.shape[0], chunk):
            topics = topic_idx[start:start + chunk]
            words = word_idx[start:start + chunk]
            delta = tables.delta_for_pairs(topics, words)       # (n, A)
            contrib = (gammaln(counts[topics, words][:, np.newaxis]
                               + delta)
                       - tables.log_gamma_for_pairs(topics, words))
            np.add.at(bracket, topics, contrib)
        log_node = (gammaln(tables.sum_delta) + bracket
                    - gammaln(state.nt[k:, np.newaxis]
                              + tables.sum_delta))
        log_weights = np.log(self.grid.weights)
        return float(logsumexp(log_node + log_weights[np.newaxis, :],
                               axis=1).sum())

    def fast_path(self) -> "SourceTopicsFastPath":
        return SourceTopicsFastPath(self)

    def sparse_path(self) -> "SourceTopicsSparsePath":
        return SourceTopicsSparsePath(self)

    def alias_path(self) -> "SourceTopicsAliasPath | None":
        # The alias lane covers the bijective configuration (all-source
        # layouts with non-negative quadrature exponents — what the
        # sparse engine's table lane covers); mixed layouts return None
        # and fall back to the sparse engine.
        if self.num_free != 0 or not bool(
                np.all(self.tables.exponents >= 0)):
            return None
        return SourceTopicsAliasPath(self)


class SourceTopicsFastPath(FastKernelPath):
    """Incremental ``nw * C + D`` evaluation of Equation 3.

    See the module docstring for the algebra.  ``C`` and ``E`` are fused
    into one cache by prepending a *unit row* to the powered-value
    table: ``1 ** exp = 1``, so integrating the augmented table against
    ``omega / (nt + sd)`` yields ``C[t]`` in row 0 and ``E[u, t]`` in the
    remaining rows with a single matrix product.  Caches:

    ``_E``
        ``(U + 1, S)`` C-contiguous — row 0 is ``C``, row ``u + 1`` is
        ``E`` for unique value ``u``; ``D[w, t] = E[inverse[t, w] + 1, t]``.
    ``_flat``
        ``(V, S)`` — per-word flattened gather indices into ``_E`` so a
        token's ``D`` row is a single ``take``.
    ``_nt_free``
        ``(K,)`` — the free topics' ``nt + V * beta`` denominators.

    Only the entries keyed on a changed ``nt[topic]`` are refreshed per
    token (``O(U * A)`` for a source topic, ``O(1)`` for a free topic).
    """

    def __init__(self, kernel: SourceTopicsKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self.num_free = kernel.num_free
        self._beta_sum = kernel._beta_sum
        self._omega = kernel._omega                       # (A,)
        tables = kernel.tables
        self._sum_delta = tables.sum_delta                # (S, A)
        num_source = kernel.num_source
        num_unique = tables.power_table.shape[0]
        # (S, U + 1, A): per-topic contiguous augmented tables, unit row
        # first so one ``aug[t] @ ratio`` refreshes C and E together.
        aug = np.empty((num_source, num_unique + 1, tables.num_nodes))
        aug[:, 0, :] = 1.0
        aug[:, 1:, :] = tables.power_table.transpose(1, 0, 2)
        self._aug = aug
        inverse = tables.inverse                          # (S, V)
        # (V, S) unique-value row indices shifted past the unit row:
        # D[w, s] = E[inverse_plus[w, s], s].  The flattened form adds
        # the column offset so a word's D row is one 1-d take.
        self._inverse_plus = np.ascontiguousarray(
            inverse.T.astype(np.int64) + 1)
        self._flat = np.ascontiguousarray(
            self._inverse_plus * num_source
            + np.arange(num_source, dtype=np.int64)[np.newaxis, :])
        self._E = np.empty((num_unique + 1, num_source))
        self._E_flat = self._E.reshape(-1)
        self._C = self._E[0]
        self._nt_free = np.empty(self.num_free)
        self._dbuf = np.empty(num_source)
        self._out = np.empty(kernel.state.num_topics)
        self._ratio_buf = np.empty(tables.num_nodes)
        self._column_buf = np.empty(num_unique + 1)

    def begin_sweep(self) -> None:
        state = self.state
        k = self.num_free
        np.add(state.nt[:k], self._beta_sum, out=self._nt_free)
        # Refresh every column through topic_changed rather than one
        # batched einsum: the per-column matmul and a batched contraction
        # are not guaranteed to round identically, and a cache entry must
        # not depend on which refresh path last wrote it (a sweep
        # boundary would otherwise perturb weights with no count change).
        for topic in range(k, state.num_topics):
            self.topic_changed(topic)

    def topic_changed(self, topic: int) -> None:
        k = self.num_free
        if topic < k:
            self._nt_free[topic] = self.state.nt[topic] + self._beta_sum
            return
        t = topic - k
        # Buffered form of ``E[:, t] = aug[t] @ (omega / (nt + sd[t]))``
        # — same operations and operand order (bit-identical results),
        # without the two temporary allocations.
        ratio = self._ratio_buf
        np.add(self.state.nt[topic], self._sum_delta[t], out=ratio)
        np.divide(self._omega, ratio, out=ratio)
        np.matmul(self._aug[t], ratio, out=self._column_buf)
        self._E[:, t] = self._column_buf

    def weights(self, word: int, doc_row: np.ndarray) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = self._out
        self._E_flat.take(self._flat[word], out=self._dbuf)
        if k:
            np.divide(state.nw[word, :k] + self.beta, self._nt_free,
                      out=out[:k])
            np.multiply(state.nw[word, k:], self._C, out=out[k:])
            out[k:] += self._dbuf
        else:
            np.multiply(state.nw[word], self._C, out=out)
            out += self._dbuf
        out *= doc_row
        return out

    def table(self) -> SourceDenseTable:
        """The ``nw * C + D`` caches as a flat runtime kernel table; the
        array fields alias this path's live buffers, so
        :meth:`begin_sweep`/:meth:`topic_changed` and the runtime's
        inlined refresh write the same memory."""
        return SourceDenseTable(
            alpha=self.alpha, beta=self.beta, beta_sum=self._beta_sum,
            num_free=self.num_free, omega=self._omega,
            sum_delta=self._sum_delta, aug=self._aug, E=self._E,
            E_flat=self._E_flat, C=self._C, flat=self._flat,
            inverse_plus=self._inverse_plus,
            nt_free=self._nt_free, dbuf=self._dbuf,
            ratio_buf=self._ratio_buf, column_buf=self._column_buf,
            out=self._out)


class SourceTopicsSparsePath(SparseKernelPath):
    """Bucketed Source-LDA draws folding the lambda caches into buckets.

    The integrated weight ``(nw * C + D) * (nd + alpha)`` of the fast
    path (PR 1's ``nw * C + D`` lambda-integration decomposition) splits
    into three non-negative buckets per source topic::

        q   nw * C * (nd + alpha)     word bucket: nonzero nw[w] topics
        r   D * nd                    document bucket: nonzero nd[d]
        s   alpha * D                 prior bucket: all source topics

    plus the LDA-style ``s + r + q`` of
    :class:`~repro.models.lda.LdaSparsePath` for the ``K`` free topics.

    Two lanes implement the partition:

    * **bijective lane** (``K == 0`` with non-negative quadrature
      exponents — the paper-scale configuration).  The document bucket
      is walked over the document's *token slice* (one entry of weight
      ``D[z_j]`` per other token ``j`` of the document — an exact
      reweighting of ``D * nd`` over the nonzero topics that needs no
      membership bookkeeping, just one position write per step).  The
      prior bucket uses the unique-value structure: every word absent
      from topic ``t``'s article shares the epsilon-floor
      hyperparameter, so ``D[w, t] = E1[t] + corr[w, t]`` with ``corr``
      nonzero only inside article vocabularies.  The floor mass
      ``alpha * sum E1`` is one contiguous vector sum, the correction
      mass an O(|articles containing w|) gather, and the rare floor
      walk the only O(S) scan left in a draw.  Non-negative exponents
      keep the powered values ordered like the raw ones, hence every
      correction non-negative.  The whole lane is *data*: the bucket
      arrays compile into a
      :class:`~repro.sampling.runtime.SourceBijectiveTable` and the
      chunk loop itself runs in the sampling runtime
      (:func:`~repro.sampling.runtime.run_source_bijective_chunk`).
    * **general lane** (mixed free/source layouts).  Nonzero topic sets
      are tracked explicitly.  With non-negative exponents the prior
      bucket takes the same epsilon-floor/correction split as the
      bijective lane (the floor mass is one contiguous sum, the rare
      floor draw a two-level block walk), so no token reads the full
      ``D`` row; with negative exponents — where corrections are not
      sign-definite — it falls back to one O(S) gather of the ``D``
      row out of the shared ``E`` cache.

    Bucket masses are recomputed from the live caches on every token,
    so the partition carries no incremental drift at all.
    """

    def __init__(self, kernel: SourceTopicsKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self.num_free = kernel.num_free
        self._beta_sum = kernel._beta_sum
        self._ab = kernel.alpha * kernel.beta
        self._fast = SourceTopicsFastPath(kernel)
        num_source = kernel.num_source
        num_topics = kernel.state.num_topics
        self._num_source = num_source
        k = self.num_free
        # Non-negative exponents keep powered values ordered like the
        # raw ones, so every floor correction is non-negative and the
        # epsilon-floor/correction prior split is valid — on both lanes.
        self._has_floor = bool(np.all(kernel.tables.exponents >= 0))
        self._bijective = (k == 0 and self._has_floor)
        self._doc_free = TopicSet(0, k)
        self._doc_src = TopicSet(k, num_topics)
        self._inv_free = np.empty(k)
        self._words: WordTopicLists | None = None
        self._word_lists: list[list[int]] | None = None
        self._nd_row: np.ndarray | None = None
        self._E1 = self._fast._E[1]                        # (S,) view
        # Reusable per-token gather buffers (sized to the worst case).
        self._rel_buf = np.empty(num_source, dtype=np.int64)
        self._flatidx_buf = np.empty(num_source, dtype=np.int64)
        self._d_row = np.empty(num_source)
        self._nd_buf = np.empty(num_source)
        self._d_buf = np.empty(num_source)
        self._table: SourceBijectiveTable | None = None
        if self._has_floor:
            # CSR (by word) of the correction entries: (t, w) pairs whose
            # hyperparameter sits above the epsilon floor.
            inverse = kernel.tables.inverse                # (S, V)
            topic_idx, word_idx = np.nonzero(inverse)
            order = np.argsort(word_idx, kind="stable")
            self._corr_ptr = np.searchsorted(
                word_idx[order],
                np.arange(kernel.state.vocab_size + 1)).tolist()
            topics = topic_idx[order].astype(np.int64)
            self._corr_topics = topics                     # source-relative
            self._corr_flat = ((inverse[topic_idx, word_idx][order]
                                .astype(np.int64) + 1) * num_source
                               + topics)
            max_corr = (int(np.diff(self._corr_ptr).max())
                        if topics.size else 1)
            self._corr_buf = np.empty(max(max_corr, 1))
            self._corr_cum_buf = np.empty_like(self._corr_buf)
            # Two-level floor walk: block sums computed fresh on the
            # (minority of) draws that land in the floor bucket.
            self._block_starts = np.arange(0, num_source, BLOCK_SIZE)
            self._blocks = np.empty(self._block_starts.shape[0])
        if self._bijective:
            # Document token slice: topic of every token in the current
            # document, current position first.
            lengths = kernel.state.doc_lengths.astype(np.int64)
            doc_starts = np.concatenate(
                ([0], np.cumsum(lengths))).tolist()
            max_len = int(lengths.max()) if lengths.size else 1
            fast = self._fast
            self._table = SourceBijectiveTable(
                alpha=self.alpha, num_source=num_source,
                E=fast._E, E_flat=fast._E_flat, E1=self._E1,
                C=fast._C, aug=fast._aug, omega=fast._omega,
                sum_delta=fast._sum_delta, flat=fast._flat,
                ratio_buf=fast._ratio_buf, column_buf=fast._column_buf,
                corr_ptr=self._corr_ptr, corr_flat=self._corr_flat,
                corr_topics=self._corr_topics, corr_buf=self._corr_buf,
                corr_cum_buf=self._corr_cum_buf,
                block_starts=self._block_starts, blocks=self._blocks,
                doc_starts=doc_starts,
                doc_lengths=lengths.tolist(),
                doc_z=np.empty(max(max_len, 1), dtype=np.int64),
                token_idx=np.empty(max(max_len, 1), dtype=np.int64),
                token_d=np.empty(max(max_len, 1)),
                token_cum=np.empty(max(max_len, 1)))

    def begin_sweep(self) -> None:
        self._fast.begin_sweep()
        state = self.state
        self._words = WordTopicLists(state.words, state.z,
                                     state.vocab_size)
        self._word_lists = self._words.lists
        if self._table is not None:
            # The word lists are rebuilt per sweep; rebind them on the
            # table and force a document (re)entry on the first token —
            # the runtime chunk loop's position counter must restart
            # even when the corpus has a single document.
            self._table.word_lists = self._word_lists
            self._table.current_doc = -1

    def sparse_table(self) -> SourceBijectiveTable | None:
        """The bijective lane's bucket structure as a flat runtime
        table (``None`` routes mixed layouts to the per-token
        :meth:`step` lane)."""
        return self._table

    def begin_document(self, doc: int) -> None:
        """General-lane document entry.  The bijective lane's document
        bookkeeping (token slice + position cursor) lives on its
        :class:`~repro.sampling.runtime.SourceBijectiveTable` and is
        handled inside the runtime chunk loop, which never calls this."""
        state = self.state
        k = self.num_free
        if k:
            np.add(state.nt[:k], self._beta_sum, out=self._inv_free)
            np.reciprocal(self._inv_free, out=self._inv_free)
        self._nd_row = state.nd[doc]
        self._doc_free.begin(self._nd_row)
        self._doc_src.begin(self._nd_row)

    def _topic_changed(self, topic: int) -> None:
        if topic < self.num_free:
            self._inv_free[topic] = 1.0 / (self.state.nt[topic]
                                           + self._beta_sum)
        else:
            self._fast.topic_changed(topic)

    def removed(self, word: int, doc: int, topic: int) -> None:
        self._topic_changed(topic)
        if not self._bijective:
            if self._nd_row[topic] == 0.0:
                if topic < self.num_free:
                    self._doc_free.discard(topic)
                else:
                    self._doc_src.discard(topic)
        if self.state.nw[word, topic] == 0.0:
            self._word_lists[word].remove(topic)

    def added(self, word: int, doc: int, topic: int) -> None:
        self._topic_changed(topic)
        if not self._bijective:
            if self._nd_row[topic] == 1.0:
                if topic < self.num_free:
                    self._doc_free.add(topic)
                else:
                    self._doc_src.add(topic)
        if self.state.nw[word, topic] == 1.0:
            self._word_lists[word].append(topic)

    def step(self, word: int, doc: int, old: int, u: float) -> int:
        if self._table is not None:
            out: list[int] = []
            run_source_bijective_chunk(self.state, self._table,
                                       [word], [doc], [old], [u], out,
                                       self._inclusive_scan)
            return out[0]
        # General lane: the base-class step composes removed / draw /
        # added (no fused fast lane — mixed layouts are not the
        # benchmarked configuration).
        return SparseKernelPath.step(self, word, doc, old, u)

    # ------------------------------------------------------------------
    def draw(self, word: int, doc: int, u: float) -> int:
        """Bucket draw for the already-decremented token (general lane;
        the bijective lane fuses its draw into :meth:`step`)."""
        if self._bijective:
            raise NotImplementedError(
                "the bijective lane draws inside step(); use step() or "
                "dense_weights()")
        return self._draw_general(word, self.state.nw[word], self._nd_row,
                                  self._word_lists[word], u)

    def _draw_general(self, word: int, nw_row: np.ndarray,
                      nd_row: np.ndarray, word_list: list,
                      u: float) -> int:
        k = self.num_free
        alpha = self.alpha
        fast = self._fast
        c_per_topic = fast._C
        e_flat = fast._E_flat
        flat_word = fast._flat[word]
        has_floor = self._has_floor
        if has_floor:
            # Epsilon-floor/correction split: no token reads the full
            # D row; per-topic D values are gathered only where needed.
            d_row = None
        else:
            # Negative exponents — corrections are not sign-definite,
            # so the prior bucket reads the full D row out of the
            # shared E cache: one O(S) gather, no per-node arithmetic.
            d_row = self._d_row
            e_flat.take(flat_word, out=d_row)
        inv_free = self._inv_free
        # q: word bucket (free and source topics mixed).
        q_weights: list[float] = []
        q_mass = 0.0
        for t in word_list:
            if t < k:
                weight = nw_row[t] * (nd_row[t] + alpha) * inv_free[t]
            else:
                weight = nw_row[t] * c_per_topic[t - k] \
                    * (nd_row[t] + alpha)
            q_weights.append(weight)
            q_mass += weight
        # r (free): beta * nd / (nt + V * beta).
        if k and self._doc_free._n:
            free_topics = self._doc_free.array()
            rf_weights = (nd_row.take(free_topics)
                          * inv_free.take(free_topics))
            rf_weights *= self.beta
            rf_mass = float(rf_weights.sum())
        else:
            rf_weights = None
            rf_mass = 0.0
        # r (source): D * nd over the document's source topics.
        doc_src = self._doc_src
        num_src_doc = doc_src._n
        if num_src_doc:
            src_topics = doc_src._buf[:num_src_doc]
            d_values = self._d_buf[:num_src_doc]
            rs_weights = self._nd_buf[:num_src_doc]
            relative = self._rel_buf[:num_src_doc]
            np.subtract(src_topics, k, out=relative)
            if d_row is not None:
                d_row.take(relative, out=d_values)
            else:
                flat_idx = self._flatidx_buf[:num_src_doc]
                flat_word.take(relative, out=flat_idx)
                e_flat.take(flat_idx, out=d_values)
            nd_row.take(src_topics, out=rs_weights)
            np.multiply(rs_weights, d_values, out=rs_weights)
            rs_mass = float(rs_weights.sum())
        else:
            rs_mass = 0.0
        # s (free): alpha * beta / (nt + V * beta), scalar mass.
        sf_mass = self._ab * float(inv_free.sum()) if k else 0.0
        # s (source prior): alpha * D over every source topic, split as
        # floor + correction when the exponents allow it.
        e1 = self._E1
        if has_floor:
            lo = self._corr_ptr[word]
            hi = self._corr_ptr[word + 1]
            if hi > lo:
                corr_weights = self._corr_buf[:hi - lo]
                corr_cum = self._corr_cum_buf[:hi - lo]
                e_flat.take(self._corr_flat[lo:hi], out=corr_weights)
                corr_weights -= e1.take(self._corr_topics[lo:hi])
                corr_weights.cumsum(out=corr_cum)
                sc_mass = alpha * float(corr_cum[-1])
            else:
                corr_cum = None
                sc_mass = 0.0
            sfl_mass = alpha * float(e1.sum())
            s_mass = sc_mass + sfl_mass
        else:
            s_mass = alpha * float(d_row.sum())
        total = q_mass + rf_mass + rs_mass + sf_mass + s_mass
        if not (0.0 < total < np.inf):
            raise ValueError(
                f"topic weights must have positive finite mass, got "
                f"total={total!r}")
        x = u * total
        if x < q_mass:
            acc = 0.0
            for weight, t in zip(q_weights, word_list):
                acc += weight
                if x < acc:
                    return t
        x -= q_mass
        if rf_weights is not None and x < rf_mass:
            cumulative = rf_weights.cumsum()
            index = int(cumulative.searchsorted(x, side="right"))
            if index >= cumulative.shape[0]:
                index = cumulative.shape[0] - 1  # weights all positive
            return int(free_topics[index])
        x -= rf_mass
        if num_src_doc and x < rs_mass:
            cumulative = rs_weights.cumsum()
            index = int(cumulative.searchsorted(x, side="right"))
            if index >= num_src_doc:
                index = num_src_doc - 1  # D and nd are positive here
            return int(src_topics[index])
        x -= rs_mass
        if k and x < sf_mass:
            cumulative = inv_free.cumsum()
            index = int(cumulative.searchsorted(x / self._ab,
                                                side="right"))
            if index >= k:
                index = k - 1  # inv_free is all positive
            return index
        x -= sf_mass
        if not has_floor:
            # s (source prior): D is strictly positive everywhere.
            cumulative = self._inclusive_scan(d_row)
            index = int(cumulative.searchsorted(x / alpha, side="right"))
            if index >= self._num_source:
                index = self._num_source - 1
            return index + k
        # s (correction): alpha * (D - E1) over this word's articles.
        if corr_cum is not None and x < sc_mass:
            index = int(corr_cum.searchsorted(x / alpha, side="right"))
            if index >= corr_cum.shape[0]:
                # Corrections may include zeros (repeated floor
                # values); clamp to the last positive one.
                index = last_positive_index(corr_cum)
            return int(self._corr_topics[lo + index]) + k
        x -= sc_mass
        # s (floor): E1 is strictly positive.  Two-level walk: fresh
        # block sums pick a segment, one segment scan picks the topic.
        target = x / alpha
        blocks = self._blocks
        np.add.reduceat(e1, self._block_starts, out=blocks)
        block_cum = blocks.cumsum()
        block = int(block_cum.searchsorted(target, side="right"))
        if block >= blocks.shape[0]:
            block = blocks.shape[0] - 1
        if block:
            target -= block_cum[block - 1]
        lo_t = block << BLOCK_SHIFT
        segment = e1[lo_t:lo_t + BLOCK_SIZE]
        cumulative = self._inclusive_scan(segment)
        index = int(cumulative.searchsorted(target, side="right"))
        if index >= segment.shape[0]:
            index = segment.shape[0] - 1
        return lo_t + index + k

    def dense_weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        k = self.num_free
        alpha = self.alpha
        nd_row = state.nd[doc]
        fast = self._fast
        out = np.empty(state.num_topics)
        if k:
            inv = 1.0 / (state.nt[:k] + self._beta_sum)
            out[:k] = (state.nw[word, :k] * (nd_row[:k] + alpha)
                       + self.beta * nd_row[:k] + self._ab) * inv
        d_values = fast._E_flat.take(fast._flat[word])
        source_nd = nd_row[k:]
        out[k:] = (state.nw[word, k:] * fast._C * (source_nd + alpha)
                   + d_values * source_nd + alpha * d_values)
        return out


class SourceTopicsAliasPath(AliasKernelPath):
    """Alias/MH Source-LDA draws over the lambda-integration caches.

    Bijective lane only (``K == 0`` with non-negative quadrature
    exponents — the paper-scale configuration; mixed layouts fall back
    to the sparse engine).  The word-dependent factor ``nw * C + D``
    splits into the stale mixture::

        nw * C + (D - E1)   [per-word sparse component over the nonzero
                             nw[w] topics plus the word's article-
                             correction topics, frozen at its own
                             rebuild; D - E1 is exactly zero off the
                             corrections]
      + E1                  [shared dense component: the epsilon-floor
                             prior, frozen per sweep into one Walker
                             alias table]

    The MH tests evaluate the exact live conditional through the same
    shared ``E`` cache the fast/sparse lanes maintain (refreshed inline
    on both count changes of every token), so acceptance is computed
    against current counts no matter how stale the proposal is.  Unlike
    the sparse lane's O(nnz + corr) bucket walk with its per-token
    ``E1`` floor sum, the per-token cost here is O(1) in both the
    source count ``S`` and the article vocabularies — the engine whose
    advantage *grows* without bound along the Fig. 8f topic axis.
    """

    def __init__(self, kernel: SourceTopicsKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        # Borrow the sparse path's shared machinery: the fast-path E/C
        # caches the MH tests read, and the correction CSR the rebuilds
        # union into the sparse-component support.
        self._sparse = SourceTopicsSparsePath(kernel)
        self._fast = self._sparse._fast
        self._table: AliasMHTable | None = None

    def alias_table(self) -> AliasMHTable:
        if self._table is None:
            state = self.state
            sparse = self._sparse
            fast = self._fast
            vocab_size = state.vocab_size
            lengths = state.doc_lengths.astype(np.int64)
            max_len = int(lengths.max()) if lengths.shape[0] else 0
            self._table = AliasMHTable(
                mode="source_bijective",
                alpha=self.alpha,
                num_topics=state.num_topics,
                rebuild_every=self.rebuild_every,
                mh_counts=np.zeros(2, dtype=np.int64),
                doc_starts=np.concatenate(
                    ([0], np.cumsum(lengths))).tolist(),
                doc_lengths=lengths.tolist(),
                doc_z=np.empty(max(max_len, 1), dtype=np.int64),
                word_topics=[None] * vocab_size,
                word_vals=[None] * vocab_size,
                word_cum=[None] * vocab_size,
                word_mass=[0.0] * vocab_size,
                # Start saturated so every word builds its sparse
                # component on first touch.
                draws_since=[self.rebuild_every] * vocab_size,
                E=fast._E, E_flat=fast._E_flat, E1=sparse._E1,
                C=fast._C, aug=fast._aug, omega=fast._omega,
                sum_delta=fast._sum_delta, flat=fast._flat,
                ratio_buf=fast._ratio_buf,
                column_buf=fast._column_buf,
                corr_ptr=sparse._corr_ptr,
                corr_flat=sparse._corr_flat,
                corr_topics=sparse._corr_topics)
        return self._table

    def begin_sweep(self) -> None:
        # Refresh the shared E cache from the live counts *before*
        # snapshotting the dense proposal component off its E1 row.
        self._fast.begin_sweep()
        table = self.alias_table()
        rebuild_alias_dense(table, self.state)
        table.current_doc = -1
