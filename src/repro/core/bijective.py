"""The bijective-mapping model (Section III.A).

The simplest Source-LDA variant: a 1-to-1 mapping between knowledge-source
topics and corpus topics is assumed, so *every* topic's Dirichlet prior is
the source hyperparameter vector ``delta_k = (X_k1, ..., X_kV)``.  The Gibbs
update is Equation 2's source-topic case.

Two extensions from Section III.C are exposed because the paper's Fig. 7
experiment runs them under the bijective layout:

* a fixed exponent ``lambda`` applied to the hyperparameters
  (``delta = X^lambda``);
* full lambda integration over a Gaussian prior (``lambda_grid``), the
  "dynamic lambda" baseline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kernels import SourceTopicsKernel
from repro.core.lambda_calibration import SmoothingFunction
from repro.core.priors import SourcePrior, informed_word_topic_probs
from repro.knowledge.distributions import DEFAULT_EPSILON
from repro.knowledge.source import KnowledgeSource
from repro.models.base import FittedTopicModel, TopicModel
from repro.models.lda import posterior_theta
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.integration import LambdaGrid
from repro.sampling.rng import ensure_rng
from repro.sampling.scans import ScanStrategy
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


class BijectiveSourceLDA(TopicModel):
    """Source-LDA under the bijective mapping of Section III.A.

    Parameters
    ----------
    source:
        Knowledge source; one topic per article, all assumed present.
    alpha:
        Symmetric document-topic prior.
    lambda_:
        Fixed exponent on the source hyperparameters (1.0 reproduces the
        plain bijective model).  Ignored when ``lambda_grid`` is given.
    lambda_grid:
        Optional quadrature of a lambda prior — the Fig. 7 "dynamic
        lambda" baseline under the bijective layout.
    smoothing:
        Optional ``g`` applied to the grid nodes (Section III.C.2).
    init:
        ``"informed"`` (default) seeds each token's topic from the source
        distributions; ``"random"`` is the uniform initialization of
        Algorithm 1.
    engine:
        ``"fast"`` (default, draw-identical to the reference),
        ``"sparse"`` (bucketed O(nnz) draws, statistically equivalent),
        ``"alias"`` (stale-alias/MH proposals, amortized O(1) per
        token, distributionally equivalent) or ``"reference"``; see
        :class:`~repro.sampling.gibbs.CollapsedGibbsSampler`.
    backend:
        Token-loop backend: ``"auto"`` (default), ``"python"`` or
        ``"numba"``; see :mod:`repro.sampling.runtime`.
    """

    def __init__(self, source: KnowledgeSource, alpha: float = 0.5,
                 lambda_: float = 1.0,
                 lambda_grid: LambdaGrid | None = None,
                 smoothing: SmoothingFunction | None = None,
                 epsilon: float = DEFAULT_EPSILON,
                 init: str = "informed",
                 scan: ScanStrategy | None = None,
                 engine: str = "fast",
                 backend: str = "auto") -> None:
        if not 0.0 <= lambda_ <= 1.0:
            raise ValueError(f"lambda_ must be in [0, 1], got {lambda_}")
        if init not in ("informed", "random"):
            raise ValueError(
                f"init must be 'informed' or 'random', got {init!r}")
        self.source = source
        self.alpha = alpha
        self.lambda_ = lambda_
        self.lambda_grid = lambda_grid
        self.smoothing = smoothing
        self.epsilon = epsilon
        self.init = init
        self._scan = scan
        self.engine = engine
        self.backend = backend

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        prior = SourcePrior(self.source, corpus.vocabulary, self.epsilon)
        grid = self.lambda_grid or LambdaGrid.fixed(self.lambda_)
        exponents = (self.smoothing(grid.nodes) if self.smoothing
                     else grid.nodes)
        tables = prior.grid_tables(np.asarray(exponents))
        state = GibbsState(corpus, prior.num_topics)
        if self.init == "informed":
            state.initialize_informed(
                informed_word_topic_probs(prior, num_free=0), rng)
        else:
            state.initialize_random(rng)
        kernel = SourceTopicsKernel(state, num_free=0, alpha=self.alpha,
                                    beta=1.0, tables=tables, grid=grid)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine,
                                        backend=self.backend)
        snapshots: dict[int, np.ndarray] = {}
        wanted = set(int(i) for i in snapshot_iterations)

        def _snapshot(iteration: int, _state: GibbsState) -> None:
            if iteration in wanted:
                snapshots[iteration] = kernel.phi()

        log_likelihoods = sampler.run(
            iterations,
            callback=_snapshot if wanted else None,
            track_log_likelihood=track_log_likelihood)
        return FittedTopicModel(
            phi=kernel.phi(),
            theta=posterior_theta(state, self.alpha),
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            topic_labels=prior.labels,
            log_likelihoods=log_likelihoods,
            metadata={"snapshots": snapshots,
                      "source_word_counts": state.nw.T.copy(),
                      "iteration_seconds": sampler.timings.seconds,
                      "alpha": self.alpha, "lambda": self.lambda_,
                      "grid_nodes": grid.nodes,
                      "epsilon": self.epsilon})
