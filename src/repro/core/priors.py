"""Source priors: delta construction and fast lambda-grid evaluation.

The Source-LDA Gibbs kernel (Equation 3) needs, for every token, the values
``delta_t^{g(lambda_a)}[w]`` for all source topics ``t`` and quadrature
nodes ``a``.  Raising the ``(S, V)`` hyperparameter matrix to ``A`` powers
per token would dominate the running time, so :class:`SourcePrior` exploits
the fact that hyperparameters are *counts plus epsilon*: the number of
distinct values ``U`` is tiny (bounded by the largest article count).  A
``(U, S, A)`` power table is built once per fit; per-token evaluation is a
single fancy-indexed gather.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.knowledge.distributions import (DEFAULT_EPSILON,
                                           source_hyperparameters)
from repro.knowledge.source import KnowledgeSource
from repro.text.vocabulary import Vocabulary


class SourcePrior:
    """Per-topic Dirichlet hyperparameters derived from a knowledge source.

    Parameters
    ----------
    source:
        The knowledge source (one article per topic).
    vocabulary:
        Corpus vocabulary; hyperparameters are indexed by it
        (Definition 3).
    epsilon:
        Smoothing constant added to the counts.
    """

    def __init__(self, source: KnowledgeSource, vocabulary: Vocabulary,
                 epsilon: float = DEFAULT_EPSILON) -> None:
        counts = source.count_matrix(vocabulary)
        self.labels = source.labels
        self.epsilon = epsilon
        self.hyperparameters = source_hyperparameters(counts, epsilon)
        self.vocab_size = len(vocabulary)
        unique, inverse = np.unique(self.hyperparameters,
                                    return_inverse=True)
        self._unique = unique
        self._inverse = inverse.reshape(self.hyperparameters.shape) \
            .astype(np.int32)

    @property
    def num_topics(self) -> int:
        return int(self.hyperparameters.shape[0])

    @property
    def num_unique_values(self) -> int:
        return int(self._unique.shape[0])

    def source_distributions(self) -> np.ndarray:
        """Normalized source distributions (Definition 2), ``(S, V)``."""
        return self.hyperparameters / self.hyperparameters.sum(
            axis=1, keepdims=True)

    def delta(self, exponent: float | np.ndarray = 1.0) -> np.ndarray:
        """The prior matrix ``X ** exponent``, shape ``(S, V)``.

        ``exponent`` may be scalar or per-topic ``(S,)``.
        """
        exponent = np.asarray(exponent, dtype=np.float64)
        if exponent.ndim == 0:
            return np.power(self.hyperparameters, exponent)
        if exponent.shape != (self.num_topics,):
            raise ValueError(
                f"per-topic exponent must have shape ({self.num_topics},), "
                f"got {exponent.shape}")
        return np.power(self.hyperparameters, exponent[:, np.newaxis])

    def grid_tables(self, exponents: np.ndarray) -> "GridDeltaTables":
        """Precompute powered-delta lookups for quadrature exponents.

        ``exponents`` is ``(A,)`` for a shared smoothing function or
        ``(S, A)`` for per-topic smoothing (``g_t`` of Algorithm 1).
        """
        exponents = np.asarray(exponents, dtype=np.float64)
        if exponents.ndim == 1:
            exponents = np.broadcast_to(
                exponents, (self.num_topics, exponents.shape[0]))
        if exponents.ndim != 2 or exponents.shape[0] != self.num_topics:
            raise ValueError(
                f"exponents must be (A,) or ({self.num_topics}, A), got "
                f"{exponents.shape}")
        return GridDeltaTables(self._unique, self._inverse, exponents)


def informed_word_topic_probs(prior: SourcePrior,
                              num_free: int) -> np.ndarray:
    """Initialization affinities: uniform free topics + source rows.

    Used with :meth:`GibbsState.initialize_informed` so every source topic
    starts the chain anchored on its own article vocabulary instead of a
    uniform share of everything.  The source rows are the (epsilon-
    smoothed) source distributions, so every word has positive mass under
    every topic and the initializer is always well-defined.
    """
    if num_free < 0:
        raise ValueError(f"num_free must be >= 0, got {num_free}")
    source_rows = prior.source_distributions()
    if num_free == 0:
        return source_rows
    free_rows = np.full((num_free, prior.vocab_size),
                        1.0 / prior.vocab_size)
    return np.vstack([free_rows, source_rows])


class GridDeltaTables:
    """Powered source hyperparameters evaluated at quadrature nodes.

    Holds ``table[u, t, a] = unique_value_u ** exponent[t, a]`` plus the
    per-topic totals ``sum_delta[t, a] = sum_w delta_t^{exp[t,a]}[w]``, the
    denominator of Equation 3.
    """

    def __init__(self, unique: np.ndarray, inverse: np.ndarray,
                 exponents: np.ndarray) -> None:
        num_topics, vocab_size = inverse.shape
        self.num_topics = num_topics
        self.vocab_size = vocab_size
        self.num_nodes = int(exponents.shape[1])
        self.exponents = exponents
        # (U, S, A): distinct-hyperparameter-value ** per-topic exponents.
        self._table = np.power(unique[:, np.newaxis, np.newaxis],
                               exponents[np.newaxis, :, :])
        self._inverse = inverse
        self._topic_range = np.arange(num_topics)
        # Count how often each distinct value occurs in each topic row,
        # then total the powered values: sum_delta[t, a].
        value_counts = np.zeros((num_topics, unique.shape[0]))
        for topic in range(num_topics):
            value_counts[topic] = np.bincount(
                inverse[topic], minlength=unique.shape[0])
        self.sum_delta = np.einsum("tu,uta->ta", value_counts, self._table)
        self._log_gamma_table: np.ndarray | None = None

    @property
    def power_table(self) -> np.ndarray:
        """The ``(U, S, A)`` powered unique-value table."""
        return self._table

    @property
    def inverse(self) -> np.ndarray:
        """``(S, V)`` indices of each word's unique value per topic."""
        return self._inverse

    @property
    def log_gamma_table(self) -> np.ndarray:
        """``gammaln`` of the power table, computed once and cached.

        The likelihood evaluation needs ``gammaln(delta)`` for every
        (word, topic, node) triple; since delta values come from the tiny
        unique table this reduces to ``U * S * A`` gammaln calls total.
        """
        if self._log_gamma_table is None:
            self._log_gamma_table = gammaln(self._table)
        return self._log_gamma_table

    def delta_for_word(self, word: int) -> np.ndarray:
        """``delta_t^{exp[t,a]}[word]`` for all topics/nodes, ``(S, A)``."""
        return self._table[self._inverse[:, word], self._topic_range, :]

    def delta_for_words(self, words: np.ndarray) -> np.ndarray:
        """Batch variant: shape ``(len(words), S, A)``."""
        words = np.asarray(words, dtype=np.int64)
        return self._table[self._inverse[:, words].T[:, :, np.newaxis],
                           self._topic_range[np.newaxis, :, np.newaxis],
                           np.arange(self.num_nodes)[np.newaxis,
                                                     np.newaxis, :]]

    def delta_for_pairs(self, topics: np.ndarray,
                        words: np.ndarray) -> np.ndarray:
        """``delta_t^{exp[t,a]}[w]`` for parallel (topic, word) arrays.

        Returns shape ``(len(topics), A)`` — the sparse gather the
        vectorized likelihood uses for nonzero word-topic counts.
        """
        return self._table[self._inverse[topics, words], topics, :]

    def log_gamma_for_pairs(self, topics: np.ndarray,
                            words: np.ndarray) -> np.ndarray:
        """``gammaln(delta)`` for parallel (topic, word) arrays, from the
        cached table; shape ``(len(topics), A)``."""
        return self.log_gamma_table[self._inverse[topics, words],
                                    topics, :]
