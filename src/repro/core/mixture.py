"""The known-mixture model (Section III.B).

A corpus is assumed to contain a *known* number of unknown topics alongside
the knowledge-source topics: the first ``K`` topics carry the symmetric
``Dir(beta)`` prior of plain LDA, the remaining ``S`` carry the fixed source
hyperparameters.  Equation 2 gives both Gibbs cases.  This fixes the
bijective model's inability to absorb content that matches no known topic,
while still binding source topics tightly to their articles.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kernels import SourceTopicsKernel
from repro.core.priors import SourcePrior, informed_word_topic_probs
from repro.knowledge.distributions import DEFAULT_EPSILON
from repro.knowledge.source import KnowledgeSource
from repro.models.base import FittedTopicModel, TopicModel
from repro.models.lda import posterior_theta
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.integration import LambdaGrid
from repro.sampling.rng import ensure_rng
from repro.sampling.scans import ScanStrategy
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


class MixtureSourceLDA(TopicModel):
    """Known mixture of ``num_free_topics`` unknown + source topics.

    Parameters
    ----------
    source:
        Knowledge source supplying the known topics.
    num_free_topics:
        ``T`` in the paper's Section III.B notation — how many unknown
        (symmetric-prior) topics to allocate.
    alpha, beta:
        Document-topic prior and the unknown topics' word prior.
    lambda_:
        Fixed exponent on source hyperparameters (1.0 = raw counts).
    engine:
        ``"fast"`` (default, draw-identical to the reference),
        ``"sparse"`` (bucketed O(nnz) draws, statistically equivalent),
        ``"alias"`` (stale-alias/MH proposals, amortized O(1) per
        token, distributionally equivalent) or ``"reference"``; see
        :class:`~repro.sampling.gibbs.CollapsedGibbsSampler`.
    backend:
        Token-loop backend: ``"auto"`` (default), ``"python"`` or
        ``"numba"``; see :mod:`repro.sampling.runtime`.
    """

    def __init__(self, source: KnowledgeSource, num_free_topics: int,
                 alpha: float = 0.5, beta: float = 0.1,
                 lambda_: float = 1.0,
                 epsilon: float = DEFAULT_EPSILON,
                 init: str = "informed",
                 scan: ScanStrategy | None = None,
                 engine: str = "fast",
                 backend: str = "auto") -> None:
        if num_free_topics < 1:
            raise ValueError(
                f"num_free_topics must be >= 1, got {num_free_topics}; "
                "use BijectiveSourceLDA when no unknown topics are wanted")
        if not 0.0 <= lambda_ <= 1.0:
            raise ValueError(f"lambda_ must be in [0, 1], got {lambda_}")
        if init not in ("informed", "random"):
            raise ValueError(
                f"init must be 'informed' or 'random', got {init!r}")
        self.init = init
        self.source = source
        self.num_free_topics = num_free_topics
        self.alpha = alpha
        self.beta = beta
        self.lambda_ = lambda_
        self.epsilon = epsilon
        self._scan = scan
        self.engine = engine
        self.backend = backend

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        prior = SourcePrior(self.source, corpus.vocabulary, self.epsilon)
        grid = LambdaGrid.fixed(self.lambda_)
        tables = prior.grid_tables(grid.nodes)
        num_topics = self.num_free_topics + prior.num_topics
        state = GibbsState(corpus, num_topics)
        if self.init == "informed":
            state.initialize_informed(
                informed_word_topic_probs(prior, self.num_free_topics), rng)
        else:
            state.initialize_random(rng)
        kernel = SourceTopicsKernel(state, num_free=self.num_free_topics,
                                    alpha=self.alpha, beta=self.beta,
                                    tables=tables, grid=grid)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine,
                                        backend=self.backend)
        log_likelihoods = sampler.run(
            iterations, track_log_likelihood=track_log_likelihood)
        labels = ((None,) * self.num_free_topics) + prior.labels
        return FittedTopicModel(
            phi=kernel.phi(),
            theta=posterior_theta(state, self.alpha),
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            topic_labels=labels,
            log_likelihoods=log_likelihoods,
            metadata={"source_word_counts": state.nw.T.copy(),
                      "iteration_seconds": sampler.timings.seconds,
                      "alpha": self.alpha, "beta": self.beta,
                      "lambda": self.lambda_, "epsilon": self.epsilon})
