"""Source-LDA — the paper's full model (Section III.C, Algorithm 1).

The complete generative story: ``K`` unlabeled topics draw their word
distributions from a symmetric ``Dir(beta)``; every knowledge-source topic
``t`` draws ``lambda_t ~ N(mu, sigma)``, maps it through the linear-
smoothing function ``g`` (Section III.C.2), raises its source
hyperparameters to ``g(lambda_t)`` and draws its word distribution from the
resulting Dirichlet.  Inference integrates lambda out numerically on a
:class:`LambdaGrid` (Equation 3), and superset topic reduction
(Section III.C.3) selects which candidate source topics actually live in
the corpus.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.kernels import SourceTopicsKernel
from repro.core.lambda_calibration import (SmoothingFunction,
                                           calibrate_smoothing)
from repro.core.priors import SourcePrior, informed_word_topic_probs
from repro.core.superset import (cluster_topics_js,
                                 reduce_by_count_frequency,
                                 topic_document_frequencies_from_counts)
from repro.knowledge.distributions import DEFAULT_EPSILON
from repro.knowledge.source import KnowledgeSource
from repro.models.base import FittedTopicModel, TopicModel
from repro.models.lda import posterior_theta
from repro.sampling.gibbs import CollapsedGibbsSampler
from repro.sampling.integration import DEFAULT_STEPS, LambdaGrid
from repro.sampling.rng import ensure_rng
from repro.sampling.scans import ScanStrategy
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


class SourceLDA(TopicModel):
    """The full Source-LDA model.

    Parameters
    ----------
    source:
        The candidate topic superset (Wikipedia-style articles).
    num_unlabeled_topics:
        ``K`` — unlabeled topics mixed in alongside the source topics.
    mu, sigma:
        Gaussian prior on each source topic's lambda.
    approximation_steps:
        ``A`` — quadrature nodes for the lambda integral.
    alpha, beta:
        Document-topic prior and the unlabeled topics' word prior.
    calibrate:
        Whether to fit the smoothing function ``g`` from the source
        hyperparameters (Fig. 4 behaviour); ``False`` uses the identity
        map (Fig. 3 behaviour).  A pre-built :class:`SmoothingFunction`
        may also be supplied via ``smoothing``.
    reduce_topics:
        Apply superset reduction after sampling; surviving topic indices
        are reported in ``metadata['active_topics']``.
    min_documents, min_proportion:
        Document-frequency threshold for reduction: a topic survives when
        at least ``min_documents`` documents give it ``min_proportion`` of
        their mass.
    final_topics:
        Optional hard cap: cluster survivors down to this many topics
        (``select_final_topics``).
    epsilon:
        Smoothing constant of Definition 3.
    init:
        ``"informed"`` (default) seeds token topics from the source
        distributions; ``"random"`` matches Algorithm 1's uniform
        initialization.
    scan:
        Optional parallel scan strategy (Algorithms 2/3).
    engine:
        Sweep engine: ``"fast"`` (default) uses the incremental
        lambda-integration caches of
        :class:`~repro.core.kernels.SourceTopicsFastPath` (O(S) per
        token, draw-identical to the reference); ``"sparse"`` uses the
        bucketed :class:`~repro.core.kernels.SourceTopicsSparsePath`
        (O(nnz) per token, statistically equivalent); ``"alias"`` uses
        the stale-alias/MH proposals of
        :class:`~repro.core.kernels.SourceTopicsAliasPath` (amortized
        O(1) per token, distributionally equivalent); ``"reference"``
        runs the literal Algorithm 1 loop (O(S * A) per token), kept as
        the exactness oracle.
    backend:
        Token-loop backend for the fast/sparse/alias engines:
        ``"auto"`` (default), ``"python"`` or ``"numba"``; see
        :mod:`repro.sampling.runtime`.
    """

    def __init__(self, source: KnowledgeSource,
                 num_unlabeled_topics: int = 0,
                 mu: float = 0.7, sigma: float = 0.3,
                 approximation_steps: int = DEFAULT_STEPS,
                 alpha: float = 0.5, beta: float = 0.1,
                 calibrate: bool = True,
                 smoothing: SmoothingFunction | None = None,
                 calibration_draws: int = 10,
                 reduce_topics: bool = True,
                 min_documents: int = 2,
                 min_proportion: float = 0.05,
                 final_topics: int | None = None,
                 epsilon: float = DEFAULT_EPSILON,
                 init: str = "informed",
                 scan: ScanStrategy | None = None,
                 engine: str = "fast",
                 backend: str = "auto") -> None:
        if num_unlabeled_topics < 0:
            raise ValueError(
                f"num_unlabeled_topics must be >= 0, got "
                f"{num_unlabeled_topics}")
        if init not in ("informed", "random"):
            raise ValueError(
                f"init must be 'informed' or 'random', got {init!r}")
        self.init = init
        self.source = source
        self.num_unlabeled_topics = num_unlabeled_topics
        self.mu = mu
        self.sigma = sigma
        self.approximation_steps = approximation_steps
        self.alpha = alpha
        self.beta = beta
        self.calibrate = calibrate
        self.smoothing = smoothing
        self.calibration_draws = calibration_draws
        self.reduce_topics = reduce_topics
        self.min_documents = min_documents
        self.min_proportion = min_proportion
        self.final_topics = final_topics
        self.epsilon = epsilon
        self._scan = scan
        self.engine = engine
        self.backend = backend

    # ------------------------------------------------------------------
    def _smoothing_function(self, prior: SourcePrior,
                            rng: np.random.Generator) -> SmoothingFunction:
        if self.smoothing is not None:
            return self.smoothing
        if not self.calibrate:
            return SmoothingFunction.identity()
        return calibrate_smoothing(prior.hyperparameters,
                                   draws=self.calibration_draws, rng=rng)

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        prior = SourcePrior(self.source, corpus.vocabulary, self.epsilon)
        smoothing = self._smoothing_function(prior, rng)
        grid = LambdaGrid.from_prior(self.mu, self.sigma,
                                     self.approximation_steps)
        exponents = np.asarray(smoothing(grid.nodes))
        tables = prior.grid_tables(exponents)
        num_topics = self.num_unlabeled_topics + prior.num_topics
        state = GibbsState(corpus, num_topics)
        if self.init == "informed":
            state.initialize_informed(
                informed_word_topic_probs(prior,
                                          self.num_unlabeled_topics), rng)
        else:
            state.initialize_random(rng)
        kernel = SourceTopicsKernel(
            state, num_free=self.num_unlabeled_topics, alpha=self.alpha,
            beta=self.beta, tables=tables, grid=grid)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine,
                                        backend=self.backend)
        snapshots: dict[int, np.ndarray] = {}
        wanted = set(int(i) for i in snapshot_iterations)

        def _snapshot(iteration: int, _state: GibbsState) -> None:
            if iteration in wanted:
                snapshots[iteration] = kernel.phi()

        log_likelihoods = sampler.run(
            iterations,
            callback=_snapshot if wanted else None,
            track_log_likelihood=track_log_likelihood)

        phi = kernel.phi()
        theta = posterior_theta(state, self.alpha)
        labels = ((None,) * self.num_unlabeled_topics) + prior.labels
        metadata: dict[str, object] = {
            "snapshots": snapshots,
            "source_word_counts": state.nw.T.copy(),
            "iteration_seconds": sampler.timings.seconds,
            "alpha": self.alpha, "beta": self.beta,
            "mu": self.mu, "sigma": self.sigma,
            "grid_nodes": grid.nodes, "grid_weights": grid.weights,
            "smoothing_xs": smoothing.xs, "smoothing_ys": smoothing.ys,
            "epsilon": self.epsilon,
        }
        if self.reduce_topics:
            frequencies = topic_document_frequencies_from_counts(
                state.nd_view, state.doc_lengths, self.min_proportion)
            metadata["document_frequencies"] = frequencies
            active = reduce_by_count_frequency(
                state.nd_view, state.doc_lengths, self.min_documents,
                self.min_proportion)
            if self.final_topics is not None and \
                    active.size > self.final_topics:
                cluster_labels, _ = cluster_topics_js(
                    phi[active], num_clusters=self.final_topics, seed=rng)
                usage = state.nd.sum(axis=0)[active]
                kept = []
                for cluster in range(self.final_topics):
                    members = np.flatnonzero(cluster_labels == cluster)
                    if members.size:
                        kept.append(int(
                            active[members[np.argmax(usage[members])]]))
                active = np.sort(np.asarray(kept, dtype=np.int64))
            metadata["active_topics"] = active
            metadata["active_labels"] = tuple(
                labels[int(t)] for t in active)
        return FittedTopicModel(
            phi=phi,
            theta=theta,
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            topic_labels=labels,
            log_likelihoods=log_likelihoods,
            metadata=metadata)
