"""Estimating per-topic lambda from data (the paper's open question).

Section III.C.5a leaves "whether or not the parameters can be learned a
priori from the data" as an open research area.  This module provides the
natural estimator the model structure suggests: with lambda discretized on
the quadrature grid, each source topic's posterior over grid nodes is

    P(lambda_a | w, z)  ∝  omega_a · P(w_t | z, delta_t^{g(lambda_a)})

where the likelihood term is the Dirichlet-multinomial closed form over
the topic's word counts.  The posterior mean gives a per-topic lambda
estimate — i.e. *how far each topic actually drifted from its source* —
useful diagnostically (which knowledge-source articles are stale for this
corpus?) and for setting ``mu``/``sigma`` on re-runs.

The core models record the final word-topic counts under
``metadata["source_word_counts"]``, which is all this estimator needs.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.core.priors import SourcePrior
from repro.models.base import FittedTopicModel
from repro.sampling.integration import LambdaGrid


def lambda_log_likelihoods(counts: np.ndarray, prior: SourcePrior,
                           exponents: np.ndarray) -> np.ndarray:
    """Log ``P(counts_t | delta_t^{e_a})`` for every topic/node, ``(S, A)``.

    ``counts`` is the ``(S, V)`` word-count matrix of the source topics;
    ``exponents`` are the (already ``g``-mapped) grid exponents, ``(A,)``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    exponents = np.asarray(exponents, dtype=np.float64)
    if counts.shape != (prior.num_topics, prior.vocab_size):
        raise ValueError(
            f"counts must have shape ({prior.num_topics}, "
            f"{prior.vocab_size}), got {counts.shape}")
    totals = counts.sum(axis=1)
    out = np.empty((prior.num_topics, exponents.shape[0]))
    for node, exponent in enumerate(exponents):
        delta = prior.delta(float(exponent))
        sums = delta.sum(axis=1)
        out[:, node] = (gammaln(sums)
                        - gammaln(delta).sum(axis=1)
                        + gammaln(counts + delta).sum(axis=1)
                        - gammaln(totals + sums))
    return out


def estimate_lambda_posterior(model: FittedTopicModel,
                              prior: SourcePrior,
                              grid: LambdaGrid,
                              exponents: np.ndarray | None = None,
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Per-source-topic posterior over lambda grid nodes.

    Parameters
    ----------
    model:
        A fitted :mod:`repro.core` model (its last ``S`` topics are the
        source topics and ``metadata['source_word_counts']`` holds the
        final word-topic counts).
    prior:
        The source prior used during fitting.
    grid:
        The lambda quadrature (prior weights ``omega_a``).
    exponents:
        The ``g``-mapped exponents actually used; defaults to the raw
        grid nodes.

    Returns
    -------
    (posterior, mean):
        ``posterior`` is ``(S, A)`` with rows summing to 1; ``mean`` is
        the ``(S,)`` posterior-mean lambda per source topic.
    """
    exponents = grid.nodes if exponents is None else \
        np.asarray(exponents, dtype=np.float64)
    if exponents.shape != grid.nodes.shape:
        raise ValueError(
            f"exponents must match the grid ({grid.nodes.shape}), got "
            f"{exponents.shape}")
    all_counts = model.metadata.get("source_word_counts")
    if all_counts is None:
        raise ValueError(
            "model.metadata['source_word_counts'] is missing; fit with a "
            "repro.core model or store the (T, V) word-topic count matrix")
    all_counts = np.asarray(all_counts, dtype=np.float64)
    num_source = prior.num_topics
    if all_counts.shape[0] < num_source:
        raise ValueError(
            f"counts cover {all_counts.shape[0]} topics but the prior has "
            f"{num_source} source topics")
    counts = all_counts[all_counts.shape[0] - num_source:]
    log_like = lambda_log_likelihoods(counts, prior, exponents)
    log_posterior = log_like + np.log(grid.weights)[np.newaxis, :]
    log_posterior -= logsumexp(log_posterior, axis=1, keepdims=True)
    posterior = np.exp(log_posterior)
    return posterior, posterior @ grid.nodes
