"""Approximating the linear-smoothing function ``g`` (Section III.C.2).

Raising source hyperparameters to ``lambda`` does not move the resulting
Dirichlet draws away from the source distribution at a uniform rate: the JS
divergence curve of Fig. 3 is flat near 1 and steep near 0.  A Gaussian
prior over ``lambda`` therefore spends most of its mass where little
changes.  The paper fixes this by remapping ``lambda`` through a function
``g`` chosen so that the expected JS divergence is *linear* in the input
(Fig. 4): "the approach taken to approximate g(x) is by linear interpolation
of an aggregated large number of samples for each point taken in the range
0 to 1".

:func:`calibrate_smoothing` reproduces that procedure: sample the JS curve
``J(lambda)`` on a grid, enforce monotonicity, and invert it so that
``J(g(x))`` interpolates linearly between ``J(0)`` and ``J(1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knowledge.distributions import sample_topic_distribution
from repro.metrics.divergence import js_divergence
from repro.sampling.rng import ensure_rng


@dataclass(frozen=True)
class SmoothingFunction:
    """A monotone map ``g: [0, 1] -> [0, 1]`` applied to lambda.

    Stored as interpolation knots; calling the object evaluates
    ``np.interp`` (scalars or arrays).
    """

    xs: np.ndarray
    ys: np.ndarray

    def __post_init__(self) -> None:
        xs = np.asarray(self.xs, dtype=np.float64)
        ys = np.asarray(self.ys, dtype=np.float64)
        if xs.ndim != 1 or xs.shape != ys.shape or xs.size < 2:
            raise ValueError("xs and ys must be 1-d, equal length, >= 2")
        if np.any(np.diff(xs) <= 0):
            raise ValueError("xs must be strictly increasing")
        if np.any(np.diff(ys) < 0):
            raise ValueError("ys must be non-decreasing")
        object.__setattr__(self, "xs", xs)
        object.__setattr__(self, "ys", ys)

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        result = np.interp(x, self.xs, self.ys)
        return float(result) if np.ndim(x) == 0 else result

    @classmethod
    def identity(cls) -> "SmoothingFunction":
        """``g(x) = x`` — i.e. no smoothing (the Fig. 3 behaviour)."""
        return cls(xs=np.array([0.0, 1.0]), ys=np.array([0.0, 1.0]))


def mean_js_curve(hyperparameters: np.ndarray,
                  lambdas: np.ndarray,
                  draws: int = 20,
                  rng: int | np.random.Generator | None = None
                  ) -> np.ndarray:
    """Estimate ``J(lambda)`` = E[JS(Dir(X^lambda) draw, source dist)].

    ``hyperparameters`` is one topic's ``(V,)`` vector (or ``(S, V)``; rows
    are aggregated, matching the paper's "aggregated large number of
    samples").  Returns the mean JS divergence at each grid lambda — this
    is exactly the quantity box-plotted in Figs. 3 and 4.
    """
    rng = ensure_rng(rng)
    hyper = np.atleast_2d(np.asarray(hyperparameters, dtype=np.float64))
    if np.any(hyper <= 0):
        raise ValueError("hyperparameters must be strictly positive")
    if draws < 1:
        raise ValueError(f"draws must be >= 1, got {draws}")
    lambdas = np.asarray(lambdas, dtype=np.float64)
    sources = hyper / hyper.sum(axis=1, keepdims=True)
    curve = np.empty(lambdas.shape[0])
    for index, lam in enumerate(lambdas):
        powered = np.power(hyper, lam)
        total = 0.0
        for row in range(hyper.shape[0]):
            for _ in range(draws):
                sample = sample_topic_distribution(powered[row], rng)
                total += js_divergence(sample, sources[row])
        curve[index] = total / (draws * hyper.shape[0])
    return curve


def calibrate_smoothing(hyperparameters: np.ndarray,
                        grid_points: int = 11,
                        draws: int = 20,
                        max_topics: int = 8,
                        rng: int | np.random.Generator | None = None
                        ) -> SmoothingFunction:
    """Build ``g`` so the expected JS divergence is linear in the input.

    Parameters
    ----------
    hyperparameters:
        ``(V,)`` or ``(S, V)`` source hyperparameters.  With multiple
        topics, at most ``max_topics`` rows (evenly spaced) are aggregated
        — the calibration cost is independent of the knowledge-source size.
    grid_points:
        Number of lambda samples of the JS curve.
    draws:
        Dirichlet draws per (topic, lambda) pair.

    Returns
    -------
    SmoothingFunction
        With ``g(0) = 0`` and ``g(1) = 1`` by construction.
    """
    if grid_points < 3:
        raise ValueError(f"grid_points must be >= 3, got {grid_points}")
    rng = ensure_rng(rng)
    hyper = np.atleast_2d(np.asarray(hyperparameters, dtype=np.float64))
    if hyper.shape[0] > max_topics:
        chosen = np.linspace(0, hyper.shape[0] - 1, max_topics).astype(int)
        hyper = hyper[chosen]
    lambdas = np.linspace(0.0, 1.0, grid_points)
    curve = mean_js_curve(hyper, lambdas, draws=draws, rng=rng)
    # J(lambda) decreases as lambda grows (tighter binding to the source).
    # Enforce strict monotonicity so it is invertible despite sampling
    # noise.
    decreasing = np.minimum.accumulate(curve)
    jitter = 1e-12 * np.arange(grid_points)[::-1]
    decreasing = decreasing + jitter
    # Target: J(g(x)) should fall linearly from J(0) to J(1).
    targets = decreasing[0] + (decreasing[-1] - decreasing[0]) * lambdas
    # Invert by interpolating on the reversed (now increasing) curve.
    g_values = np.interp(targets[::-1], decreasing[::-1],
                         lambdas[::-1])[::-1].copy()
    g_values[0], g_values[-1] = 0.0, 1.0
    g_values = np.maximum.accumulate(g_values)
    return SmoothingFunction(xs=lambdas, ys=g_values)
