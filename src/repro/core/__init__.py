"""The paper's core contribution: the Source-LDA model family."""

from repro.core.bijective import BijectiveSourceLDA
from repro.core.kernels import SourceTopicsKernel
from repro.core.lambda_calibration import (SmoothingFunction,
                                           calibrate_smoothing,
                                           mean_js_curve)
from repro.core.mixture import MixtureSourceLDA
from repro.core.priors import GridDeltaTables, SourcePrior
from repro.core.source_lda import SourceLDA
from repro.core.superset import (cluster_topics_js,
                                 reduce_by_document_frequency,
                                 select_final_topics,
                                 topic_document_frequencies)

__all__ = [
    "BijectiveSourceLDA",
    "GridDeltaTables",
    "MixtureSourceLDA",
    "SmoothingFunction",
    "SourceLDA",
    "SourcePrior",
    "SourceTopicsKernel",
    "calibrate_smoothing",
    "cluster_topics_js",
    "mean_js_curve",
    "reduce_by_document_frequency",
    "select_final_topics",
    "topic_document_frequencies",
]

from repro.core.priors import informed_word_topic_probs
from repro.core.superset import (reduce_by_count_frequency,
                                 topic_document_frequencies_from_counts)

__all__ += [
    "informed_word_topic_probs",
    "reduce_by_count_frequency",
    "topic_document_frequencies_from_counts",
]

from repro.core.lambda_estimation import (estimate_lambda_posterior,
                                          lambda_log_likelihoods)

__all__ += ["estimate_lambda_posterior", "lambda_log_likelihoods"]
