"""Synthetic Wikipedia: a deterministic stand-in for crawled articles.

The paper builds its knowledge sources by crawling the Wikipedia article for
each topic label and counting its words.  This environment is offline, so we
synthesize articles with the statistical properties the model actually
depends on:

* each topic has a *core vocabulary* whose words are strongly over-
  represented in its article (this is what makes δ informative);
* all articles share a *background vocabulary* of common words (this is what
  makes topics confusable and labeling non-trivial);
* word frequencies are heavy-tailed (Zipfian), like natural language.

Articles are deterministic functions of ``(topic names, seed)``, so every
experiment is reproducible.  Curated word lists can be supplied for topics
that must be human-readable (the Table I Reuters categories, the intro case
study's "School Supplies" and "Baseball").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.knowledge.source import KnowledgeSource

_ONSETS = ("b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h",
           "j", "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh",
           "sl", "st", "t", "th", "tr", "v", "w", "z")
_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "io", "ou")
_CODAS = ("", "b", "ck", "d", "g", "l", "m", "n", "nd", "ng", "nt", "p", "r",
          "rd", "rn", "s", "st", "t", "x")


def _syllable(rng: np.random.Generator) -> str:
    return (_ONSETS[rng.integers(len(_ONSETS))]
            + _NUCLEI[rng.integers(len(_NUCLEI))]
            + _CODAS[rng.integers(len(_CODAS))])


def make_lexicon(size: int, seed: int = 0,
                 prefix: str = "") -> tuple[str, ...]:
    """Generate ``size`` unique pronounceable pseudo-words.

    The same ``(size, seed, prefix)`` always yields the same lexicon.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    # Function-local import: repro.knowledge initializes before the
    # sampling package (repro.core.priors pulls it in mid-import).
    from repro.sampling.rng import ensure_rng
    rng = ensure_rng(seed)
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < size:
        syllables = 2 if rng.random() < 0.7 else 3
        word = prefix + "".join(_syllable(rng) for _ in range(syllables))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return tuple(words)


def zipf_probabilities(size: int, exponent: float = 1.07) -> np.ndarray:
    """Rank-frequency PMF ``p(r) ∝ 1 / r^exponent`` over ``size`` ranks."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class ArticleSpec:
    """Generation profile for one synthetic article."""

    name: str
    core_words: tuple[str, ...]
    length: int
    core_weight: float


class SyntheticWikipedia:
    """Deterministic generator of topic-describing articles.

    Parameters
    ----------
    topic_names:
        Labels of the topics to describe (one article per label).
    article_length:
        Tokens per article (paper articles are full Wikipedia pages; the
        default 400 preserves heavy-tailed count vectors at laptop scale).
    core_vocab_size:
        Topic-specific words per topic (used when no curated list exists).
    background_vocab_size:
        Shared vocabulary size across all articles.
    core_weight:
        Probability that a token is drawn from the topic's core vocabulary
        rather than the shared background.
    curated_vocabularies:
        Optional ``label -> word list`` overrides for human-readable topics.
    seed:
        Seed for the whole generator; all articles derive from it.

    Examples
    --------
    >>> wiki = SyntheticWikipedia(["Baseball", "Chess"], seed=7)
    >>> source = wiki.knowledge_source()
    >>> source.labels
    ('Baseball', 'Chess')
    """

    def __init__(self,
                 topic_names: Sequence[str],
                 article_length: int = 400,
                 core_vocab_size: int = 40,
                 background_vocab_size: int = 200,
                 core_weight: float = 0.7,
                 curated_vocabularies: Mapping[str, Sequence[str]] | None
                 = None,
                 seed: int = 0) -> None:
        names = [str(n) for n in topic_names]
        if len(set(names)) != len(names):
            raise ValueError("topic names must be unique")
        if not names:
            raise ValueError("at least one topic name is required")
        if not 0.0 < core_weight < 1.0:
            raise ValueError(
                f"core_weight must be in (0, 1), got {core_weight}")
        if article_length < 1:
            raise ValueError("article_length must be >= 1")
        self._names = names
        self._article_length = article_length
        self._core_weight = core_weight
        self._seed = seed
        self._background = make_lexicon(background_vocab_size, seed=seed,
                                        prefix="")
        self._background_pmf = zipf_probabilities(background_vocab_size)
        curated = dict(curated_vocabularies or {})
        self._specs: dict[str, ArticleSpec] = {}
        for index, name in enumerate(names):
            if name in curated:
                core = tuple(str(w) for w in curated[name])
                if not core:
                    raise ValueError(
                        f"curated vocabulary for {name!r} is empty")
            else:
                core = make_lexicon(
                    core_vocab_size,
                    seed=_stable_topic_seed(seed, name),
                    prefix=_topic_prefix(index))
            self._specs[name] = ArticleSpec(
                name=name, core_words=core, length=article_length,
                core_weight=core_weight)

    @property
    def topic_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    @property
    def background_words(self) -> tuple[str, ...]:
        return self._background

    def core_words(self, name: str) -> tuple[str, ...]:
        """The topic-specific vocabulary of ``name``."""
        return self._specs[name].core_words

    def article(self, name: str) -> list[str]:
        """Generate the (deterministic) article token stream for ``name``."""
        spec = self._specs[name]
        from repro.sampling.rng import ensure_rng
        rng = ensure_rng(_stable_topic_seed(self._seed + 1, name))
        core_pmf = zipf_probabilities(len(spec.core_words))
        # Shuffle which core word is most frequent so topics with curated
        # alphabetical lists do not all peak on their first entry.
        core_order = rng.permutation(len(spec.core_words))
        tokens: list[str] = []
        from_core = rng.random(spec.length) < spec.core_weight
        core_draws = rng.choice(len(spec.core_words), size=spec.length,
                                p=core_pmf)
        background_draws = rng.choice(len(self._background),
                                      size=spec.length,
                                      p=self._background_pmf)
        for position in range(spec.length):
            if from_core[position]:
                tokens.append(
                    spec.core_words[core_order[core_draws[position]]])
            else:
                tokens.append(self._background[background_draws[position]])
        return tokens

    def knowledge_source(self) -> KnowledgeSource:
        """All articles bundled as a :class:`KnowledgeSource`."""
        return KnowledgeSource(
            {name: self.article(name) for name in self._names})


def _topic_prefix(index: int) -> str:
    """A short per-topic prefix keeping generated core lexicons disjoint."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    first, second = divmod(index, len(letters))
    return letters[first % len(letters)] + letters[second] + "q"


def _stable_topic_seed(seed: int, name: str) -> int:
    """Deterministic per-topic seed independent of Python's hash seed."""
    accumulator = np.uint64(1469598103934665603)
    prime = np.uint64(1099511628211)
    with np.errstate(over="ignore"):
        for byte in name.encode("utf-8"):
            accumulator = (accumulator ^ np.uint64(byte)) * prime
        accumulator ^= np.uint64(seed & 0xFFFFFFFF)
    return int(accumulator % np.uint64(2**63 - 1))
