"""Synthetic Reuters-21578 newswire.

Section IV.C of the paper runs Source-LDA on 2,000 documents of the
Reuters-21578 collection, using the dataset's category tags to select the
Wikipedia knowledge source: 80 categories are crawled, of which 49 actually
occur in the document subset.  The collection is not redistributable in this
offline environment, so this module synthesizes a corpus with the same
structure:

* the paper's category inventory — all 20 categories shown in Fig. 2 plus 60
  more covering the Reuters commodity / finance category space;
* curated topical vocabularies for the Table I categories (Inventories,
  Natural Gas, Balance of Payments) and a handful of others, so that
  reproduced top-word tables are human-readable;
* documents generated as sparse category mixtures whose per-category word
  distributions are Dirichlet perturbations of the knowledge-source counts —
  i.e. the regime Source-LDA is designed for: most tokens come from a known
  topic superset, but topic usage deviates from the source articles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knowledge.distributions import (powered_hyperparameters,
                                           sample_topic_distribution,
                                           source_hyperparameters)
from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import SyntheticWikipedia
from repro.text.corpus import Corpus, Document

#: The 20 categories whose source-divergence box plots appear in Fig. 2.
FIGURE2_CATEGORIES: tuple[str, ...] = (
    "Money Supply", "Unemployment", "Balance of Payments",
    "Consumer Price Index", "Canadian Dollar", "Hong Kong Dollar",
    "Inventories", "Japanese Yen", "Australian Dollar", "Interest Rates",
    "Swiss Franc", "Singapore Dollar", "Wholesale Price Index",
    "New Zealand Dollar", "Retail Sales", "Capacity Utilisation", "Trade",
    "Industrial Production Index", "Housing Starts", "Personal Income",
)

_EXTRA_CATEGORIES: tuple[str, ...] = (
    "Natural Gas", "Crude Oil", "Gold", "Silver", "Copper", "Zinc",
    "Aluminium", "Iron Ore", "Coffee", "Cocoa", "Sugar", "Grain", "Wheat",
    "Corn", "Soybeans", "Rice", "Cotton", "Rubber", "Palm Oil", "Livestock",
    "Shipping", "Acquisitions", "Earnings", "Mergers", "Stock Market",
    "Bonds", "Foreign Exchange", "Gross National Product",
    "Gross Domestic Product", "Budget Deficit", "Taxation", "Tariffs",
    "Exports", "Imports", "Petrochemicals", "Banking", "Insurance",
    "Airlines", "Automobiles", "Steel", "Lumber", "Paper", "Textiles",
    "Electronics", "Computers", "Telecommunications", "Pharmaceuticals",
    "Agriculture", "Fisheries", "Mining", "Construction", "Real Estate",
    "Nuclear Energy", "Utilities", "Railroads", "Tourism", "Wages",
    "Inflation", "Leading Indicators", "Debt Markets",
)

#: All 80 knowledge-source categories of the Section IV.C experiment.
REUTERS_CATEGORIES: tuple[str, ...] = FIGURE2_CATEGORIES + _EXTRA_CATEGORIES

#: Hand-curated topical vocabularies keeping Table I human-readable.  The
#: Table I topics mirror the paper's Source-LDA word columns.
CURATED_CATEGORY_WORDS: dict[str, tuple[str, ...]] = {
    "Inventories": (
        "inventory", "cost", "stock", "accounting", "goods", "management",
        "time", "costs", "financial", "process", "warehouse", "supply",
        "demand", "storage", "turnover", "valuation", "materials", "retail",
        "shelf", "audit", "balance", "ledger", "order", "stocktaking",
    ),
    "Natural Gas": (
        "gas", "natural", "used", "water", "oil", "carbon", "cubic",
        "energy", "fuel", "million", "pipeline", "methane", "drilling",
        "wells", "reserves", "liquefied", "production", "heating",
        "petroleum", "extraction", "shale", "feet", "supply", "field",
    ),
    "Balance of Payments": (
        "account", "surplus", "deficit", "current", "balance", "currency",
        "trade", "exchange", "capital", "foreign", "payments", "reserves",
        "imports", "exports", "flows", "transactions", "transfers",
        "investment", "financial", "country", "economy", "monetary",
        "credit", "debit",
    ),
    "Interest Rates": (
        "rate", "interest", "rates", "central", "bank", "monetary",
        "policy", "lending", "borrowing", "discount", "federal", "funds",
        "yield", "basis", "points", "credit", "loans", "deposits",
        "inflation", "tightening",
    ),
    "Money Supply": (
        "money", "supply", "monetary", "aggregate", "currency", "deposits",
        "bank", "central", "circulation", "liquidity", "reserves", "growth",
        "measure", "billion", "narrow", "broad", "base", "velocity",
    ),
    "Trade": (
        "trade", "exports", "imports", "goods", "tariff", "agreement",
        "countries", "surplus", "deficit", "bilateral", "negotiations",
        "barriers", "commerce", "partners", "international", "protectionism",
    ),
    "Crude Oil": (
        "oil", "crude", "barrel", "barrels", "opec", "petroleum", "prices",
        "output", "production", "refinery", "exploration", "drilling",
        "wells", "saudi", "exporting", "supply",
    ),
    "Gold": (
        "gold", "ounce", "bullion", "mining", "metal", "precious", "troy",
        "reserves", "mines", "karat", "futures", "hedge", "jewelry",
        "dealers",
    ),
    "Coffee": (
        "coffee", "beans", "arabica", "robusta", "harvest", "export",
        "quota", "growers", "brazil", "colombia", "roasting", "crop",
        "bags", "producers",
    ),
    "Unemployment": (
        "unemployment", "jobless", "labor", "workers", "employment",
        "claims", "workforce", "payrolls", "layoffs", "rate", "jobs",
        "seasonally", "adjusted", "benefits",
    ),
}


@dataclass(frozen=True)
class ReutersGroundTruth:
    """What the generator actually used — the evaluation-only answer key."""

    present_categories: tuple[str, ...]
    document_categories: tuple[tuple[str, ...], ...]
    token_categories: tuple[np.ndarray, ...]
    category_distributions: np.ndarray
    lambdas: np.ndarray


class SyntheticReuters:
    """Generator for the Section IV.C newswire corpus.

    Parameters
    ----------
    num_documents:
        Corpus size (the paper uses a 2,000-document subset).
    num_present_categories:
        How many of the 80 knowledge-source categories actually generate
        tokens (49 in the paper).
    document_length_mean:
        Poisson mean of tokens per document.
    lambda_mean, lambda_std:
        Gaussian prior on per-category deviation from the source
        distribution, matching the Source-LDA generative process (values
        drawn are clipped to [0, 1]).
    article_length:
        Length of each synthetic knowledge-source article.
    seed:
        Seed controlling articles, category selection, and documents.
    """

    def __init__(self,
                 num_documents: int = 2000,
                 num_present_categories: int = 49,
                 document_length_mean: float = 80.0,
                 lambda_mean: float = 0.7,
                 lambda_std: float = 0.3,
                 article_length: int = 400,
                 categories: tuple[str, ...] = REUTERS_CATEGORIES,
                 seed: int = 0) -> None:
        if num_present_categories > len(categories):
            raise ValueError(
                f"cannot mark {num_present_categories} categories present "
                f"out of {len(categories)}")
        if num_documents < 1:
            raise ValueError("num_documents must be >= 1")
        self._num_documents = num_documents
        self._num_present = num_present_categories
        self._doc_length_mean = document_length_mean
        self._lambda_mean = lambda_mean
        self._lambda_std = lambda_std
        self._seed = seed
        self._categories = tuple(categories)
        self._wikipedia = SyntheticWikipedia(
            list(self._categories),
            article_length=article_length,
            curated_vocabularies={k: v
                                  for k, v in CURATED_CATEGORY_WORDS.items()
                                  if k in self._categories},
            seed=seed)
        self._source = self._wikipedia.knowledge_source()
        self._corpus: Corpus | None = None
        self._truth: ReutersGroundTruth | None = None

    @property
    def categories(self) -> tuple[str, ...]:
        """The full 80-category superset handed to the models."""
        return self._categories

    def knowledge_source(self) -> KnowledgeSource:
        """The synthetic Wikipedia articles for all categories."""
        return self._source

    def corpus(self) -> Corpus:
        """The generated newswire corpus (built once, then cached)."""
        if self._corpus is None:
            self._generate()
        assert self._corpus is not None
        return self._corpus

    def ground_truth(self) -> ReutersGroundTruth:
        """Generation answer key for evaluation."""
        if self._truth is None:
            self._generate()
        assert self._truth is not None
        return self._truth

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        # Function-local import: repro.knowledge initializes before
        # the sampling package (repro.core.priors pulls it in
        # mid-import).
        from repro.sampling.rng import ensure_rng
        rng = ensure_rng(self._seed + 1000)
        vocabulary = self._source.vocabulary().freeze()
        counts = self._source.count_matrix(vocabulary)
        hyper = source_hyperparameters(counts)

        present_idx = np.sort(rng.choice(len(self._categories),
                                         size=self._num_present,
                                         replace=False))
        present = tuple(self._categories[i] for i in present_idx)
        lambdas = np.clip(rng.normal(self._lambda_mean, self._lambda_std,
                                     size=self._num_present), 0.0, 1.0)
        distributions = np.empty((self._num_present, len(vocabulary)))
        for row, category_index in enumerate(present_idx):
            delta = powered_hyperparameters(hyper[category_index],
                                            lambdas[row])
            distributions[row] = sample_topic_distribution(delta, rng)

        # News articles are category-sparse: mostly one category, sometimes
        # two or three.
        mixture_sizes = rng.choice([1, 2, 3], size=self._num_documents,
                                   p=[0.6, 0.3, 0.1])
        documents: list[Document] = []
        doc_categories: list[tuple[str, ...]] = []
        token_categories: list[np.ndarray] = []
        for doc_index in range(self._num_documents):
            active = rng.choice(self._num_present,
                                size=int(mixture_sizes[doc_index]),
                                replace=False)
            weights = rng.dirichlet(np.ones(len(active)))
            length = max(5, int(rng.poisson(self._doc_length_mean)))
            which = rng.choice(len(active), size=length, p=weights)
            words = np.empty(length, dtype=np.int64)
            for position in range(length):
                pmf = distributions[active[which[position]]]
                words[position] = rng.choice(len(vocabulary), p=pmf)
            main = present[int(active[np.argmax(weights)])]
            documents.append(Document(
                word_ids=words,
                title=f"{main} wire {doc_index:04d}",
                labels=tuple(present[int(a)] for a in active)))
            doc_categories.append(tuple(present[int(a)] for a in active))
            token_categories.append(active[which].astype(np.int64))
        self._corpus = Corpus(documents, vocabulary)
        self._truth = ReutersGroundTruth(
            present_categories=present,
            document_categories=tuple(doc_categories),
            token_categories=tuple(token_categories),
            category_distributions=distributions,
            lambdas=lambdas)
