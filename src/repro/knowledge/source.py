"""Knowledge sources (Definition 1 of the paper).

A *knowledge source* is a collection of labeled documents, each describing
one concept — in the paper, Wikipedia articles describing Reuters categories
or MedlinePlus topics.  Models never see the articles directly; they consume
per-label word-count vectors over the *corpus* vocabulary, from which source
distributions (Definition 2) and source hyperparameters (Definition 3) are
derived in :mod:`repro.knowledge.distributions`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary


class KnowledgeSource:
    """A labeled collection of concept-describing token streams.

    Parameters
    ----------
    articles:
        Mapping from topic label to the token list of the document that
        describes the topic.  Insertion order defines the topic index order,
        so a knowledge source built the same way is always identical.

    Examples
    --------
    >>> source = KnowledgeSource({"Baseball": ["bat", "ball", "ball"]})
    >>> source.labels
    ('Baseball',)
    >>> source.tokens("Baseball")
    ['bat', 'ball', 'ball']
    """

    def __init__(self, articles: Mapping[str, Sequence[str]]) -> None:
        if not articles:
            raise ValueError("a knowledge source needs at least one article")
        self._articles: dict[str, list[str]] = {}
        for label, tokens in articles.items():
            token_list = [str(t) for t in tokens]
            if not token_list:
                raise ValueError(f"article for label {label!r} is empty")
            self._articles[str(label)] = token_list

    @classmethod
    def from_texts(cls, texts: Mapping[str, str],
                   tokenizer: Tokenizer | None = None) -> "KnowledgeSource":
        """Build a source from raw article texts, tokenizing each."""
        tok = tokenizer or Tokenizer()
        return cls({label: tok.tokenize(text)
                    for label, text in texts.items()})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """Topic labels in index order."""
        return tuple(self._articles)

    def tokens(self, label: str) -> list[str]:
        """The token stream of the article describing ``label``."""
        return list(self._articles[label])

    def __len__(self) -> int:
        return len(self._articles)

    def __contains__(self, label: object) -> bool:
        return label in self._articles

    def __iter__(self) -> Iterator[str]:
        return iter(self._articles)

    def __repr__(self) -> str:
        return f"KnowledgeSource(topics={len(self)})"

    # ------------------------------------------------------------------
    # Derived count structures
    # ------------------------------------------------------------------
    def vocabulary(self) -> Vocabulary:
        """A vocabulary containing every word used by any article."""
        return Vocabulary.from_documents(self._articles.values())

    def count_matrix(self, vocabulary: Vocabulary) -> np.ndarray:
        """Per-label word counts restricted to ``vocabulary``.

        Returns an ``(S, V)`` float matrix where row ``s`` counts how often
        each corpus-vocabulary word appears in article ``s``.  Words of the
        article outside the corpus vocabulary are ignored, exactly as in
        Definition 3 where the hyperparameter vector is indexed by the
        corpus vocabulary.
        """
        matrix = np.zeros((len(self), len(vocabulary)), dtype=np.float64)
        for row, tokens in enumerate(self._articles.values()):
            matrix[row] = vocabulary.count_vector(tokens)
        return matrix

    def subset(self, labels: Iterable[str]) -> "KnowledgeSource":
        """A new source restricted to ``labels`` (kept in the given order)."""
        labels = list(labels)
        missing = [label for label in labels if label not in self._articles]
        if missing:
            raise KeyError(f"labels not in knowledge source: {missing}")
        return KnowledgeSource(
            {label: self._articles[label] for label in labels})

    def merged_with(self, other: "KnowledgeSource") -> "KnowledgeSource":
        """Union of two sources; duplicate labels must not occur."""
        overlap = set(self.labels) & set(other.labels)
        if overlap:
            raise ValueError(f"duplicate labels in merge: {sorted(overlap)}")
        combined = {label: self.tokens(label) for label in self.labels}
        combined.update({label: other.tokens(label)
                         for label in other.labels})
        return KnowledgeSource(combined)
