"""Synthetic MedlinePlus topic collection.

Section IV.D evaluates Source-LDA on corpora generated from the Wikipedia
articles of 578 MedlinePlus health-topic labels.  MedlinePlus itself is just
a *label inventory* in the paper's pipeline — the articles come from
Wikipedia.  We reproduce that inventory deterministically: a curated base of
real MedlinePlus-style health topics, extended with qualifier combinations
until the requested count (578 by default) is reached, then paired with
synthetic Wikipedia articles.
"""

from __future__ import annotations

from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import SyntheticWikipedia

#: Number of MedlinePlus topics used in the paper's Section IV.D.
MEDLINE_TOPIC_COUNT = 578

_BASE_TOPICS: tuple[str, ...] = (
    "Asthma", "Diabetes", "Hypertension", "Anemia", "Arthritis", "Migraine",
    "Pneumonia", "Influenza", "Bronchitis", "Epilepsy", "Stroke",
    "Heart Failure", "Coronary Artery Disease", "Atrial Fibrillation",
    "Osteoporosis", "Obesity", "Depression", "Anxiety Disorders",
    "Bipolar Disorder", "Schizophrenia", "Autism Spectrum Disorder",
    "Alzheimer Disease", "Parkinson Disease", "Multiple Sclerosis",
    "Lupus", "Psoriasis", "Eczema", "Acne", "Melanoma", "Breast Cancer",
    "Lung Cancer", "Prostate Cancer", "Colorectal Cancer", "Leukemia",
    "Lymphoma", "Cervical Cancer", "Ovarian Cancer", "Pancreatic Cancer",
    "Kidney Stones", "Kidney Failure", "Urinary Tract Infections",
    "Hepatitis", "Cirrhosis", "Gallstones", "Pancreatitis", "Appendicitis",
    "Celiac Disease", "Crohn Disease", "Ulcerative Colitis",
    "Irritable Bowel Syndrome", "Gastroesophageal Reflux", "Peptic Ulcer",
    "Food Poisoning", "Malnutrition", "Vitamin D Deficiency",
    "Iron Deficiency", "Thyroid Diseases", "Hypothyroidism",
    "Hyperthyroidism", "Cushing Syndrome", "Addison Disease", "Gout",
    "Fibromyalgia", "Chronic Fatigue Syndrome", "Sleep Apnea", "Insomnia",
    "Glaucoma", "Cataract", "Macular Degeneration", "Conjunctivitis",
    "Hearing Loss", "Tinnitus", "Vertigo", "Sinusitis", "Tonsillitis",
    "Laryngitis", "Allergy", "Hay Fever", "Anaphylaxis", "Sepsis",
    "Meningitis", "Encephalitis", "Tuberculosis", "Malaria", "Measles",
    "Mumps", "Rubella", "Chickenpox", "Shingles", "Tetanus", "Rabies",
    "Lyme Disease", "Dengue", "Cholera", "Typhoid Fever", "HIV",
    "Herpes Simplex", "Human Papillomavirus", "Syphilis", "Gonorrhea",
    "Chlamydia", "Endometriosis", "Polycystic Ovary Syndrome",
    "Menopause", "Infertility", "Preeclampsia", "Gestational Diabetes",
    "Miscarriage", "Premature Birth", "Birth Defects", "Cerebral Palsy",
    "Down Syndrome", "Cystic Fibrosis", "Sickle Cell Disease", "Hemophilia",
    "Muscular Dystrophy", "Scoliosis", "Osteoarthritis",
    "Rheumatoid Arthritis", "Carpal Tunnel Syndrome", "Tendinitis",
    "Sciatica", "Herniated Disk", "Whiplash", "Concussion",
    "Traumatic Brain Injury", "Spinal Cord Injury", "Burns", "Frostbite",
    "Heat Stroke", "Dehydration", "Smoking", "Alcoholism", "Drug Abuse",
    "Opioid Misuse", "Lead Poisoning", "Carbon Monoxide Poisoning",
    "Asbestosis", "Silicosis", "Occupational Health", "Air Pollution",
    "Water Pollution", "Radiation Exposure", "Sunburn", "Skin Infections",
    "Wound Care", "First Aid", "Vaccination", "Antibiotic Resistance",
    "Organ Transplantation", "Blood Transfusion", "Dialysis", "Anesthesia",
    "Palliative Care", "Nutrition", "Exercise", "Child Development",
    "Aging", "Men Health", "Women Health", "Dental Health", "Oral Cancer",
    "Gum Disease", "Tooth Decay",
)

_QUALIFIERS: tuple[str, ...] = (
    "Pediatric", "Chronic", "Acute", "Genetic", "Screening for",
    "Prevention of", "Management of", "Rehabilitation after",
    "Living with", "Medicines for", "Surgery for", "Diagnosis of",
)


def medlineplus_topics(count: int = MEDLINE_TOPIC_COUNT) -> tuple[str, ...]:
    """The first ``count`` MedlinePlus-style topic labels.

    Deterministic: the curated base topics come first, followed by
    qualifier-extended variants in a fixed order.  Raises ``ValueError`` if
    more labels are requested than the inventory can produce.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    labels: list[str] = list(_BASE_TOPICS)
    for qualifier in _QUALIFIERS:
        if len(labels) >= count:
            break
        for base in _BASE_TOPICS:
            labels.append(f"{qualifier} {base}")
            if len(labels) >= count + 0 and len(labels) >= count:
                break
    if len(labels) < count:
        raise ValueError(
            f"topic inventory exhausted at {len(labels)} labels; "
            f"{count} requested")
    return tuple(labels[:count])


def medline_knowledge_source(num_topics: int = MEDLINE_TOPIC_COUNT,
                             article_length: int = 200,
                             core_vocab_size: int = 30,
                             background_vocab_size: int = 300,
                             seed: int = 0) -> KnowledgeSource:
    """Synthetic Wikipedia articles for the MedlinePlus topic labels.

    This is the knowledge source of the Section IV.D experiments: one
    article per health topic, counted against whatever corpus vocabulary
    the caller is modeling.
    """
    labels = medlineplus_topics(num_topics)
    wikipedia = SyntheticWikipedia(
        list(labels),
        article_length=article_length,
        core_vocab_size=core_vocab_size,
        background_vocab_size=background_vocab_size,
        seed=seed)
    return wikipedia.knowledge_source()
