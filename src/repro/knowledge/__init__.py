"""Knowledge substrate: labeled prior-knowledge sources and their priors."""

from repro.knowledge.distributions import (DEFAULT_EPSILON,
                                           powered_hyperparameters,
                                           sample_topic_distribution,
                                           source_distribution,
                                           source_hyperparameters)
from repro.knowledge.medline import (MEDLINE_TOPIC_COUNT,
                                     medline_knowledge_source,
                                     medlineplus_topics)
from repro.knowledge.reuters import (CURATED_CATEGORY_WORDS,
                                     FIGURE2_CATEGORIES, REUTERS_CATEGORIES,
                                     SyntheticReuters)
from repro.knowledge.source import KnowledgeSource
from repro.knowledge.wikipedia import (SyntheticWikipedia, make_lexicon,
                                       zipf_probabilities)

__all__ = [
    "CURATED_CATEGORY_WORDS",
    "DEFAULT_EPSILON",
    "FIGURE2_CATEGORIES",
    "KnowledgeSource",
    "MEDLINE_TOPIC_COUNT",
    "REUTERS_CATEGORIES",
    "SyntheticReuters",
    "SyntheticWikipedia",
    "make_lexicon",
    "medline_knowledge_source",
    "medlineplus_topics",
    "powered_hyperparameters",
    "sample_topic_distribution",
    "source_distribution",
    "source_hyperparameters",
    "zipf_probabilities",
]
