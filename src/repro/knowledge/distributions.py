"""Source distributions and source hyperparameters (Definitions 2 and 3).

Given a knowledge-source article counted against the corpus vocabulary:

* the *source distribution* is the normalized word-frequency PMF
  ``f(w_i) = n_wi / sum_j n_wj`` (Definition 2);
* the *source hyperparameters* are ``X_i = n_wi + eps`` where ``eps`` is a
  very small positive number making every Dirichlet draw strictly positive
  (Definition 3).  The Source-LDA model (Section III.C) raises these to the
  power ``g(lambda)`` to control how tightly a topic is bound to its source.
"""

from __future__ import annotations

import numpy as np

#: Default smoothing constant for source hyperparameters.  "A very small
#: positive number" per Definition 3; 0.01 keeps draws for unseen words rare
#: without degenerating the Dirichlet.
DEFAULT_EPSILON = 0.01


def source_distribution(counts: np.ndarray) -> np.ndarray:
    """Normalize word counts into the source distribution of Definition 2.

    Accepts a length-V vector or an (S, V) matrix; rows are normalized
    independently.  Raises ``ValueError`` on rows with no mass, because a
    knowledge-source article with no in-vocabulary words cannot define a
    distribution.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if np.any(counts < 0):
        raise ValueError("word counts must be non-negative")
    totals = counts.sum(axis=-1, keepdims=True)
    if np.any(totals == 0):
        raise ValueError("cannot normalize an all-zero count vector; the "
                         "article shares no words with the vocabulary")
    return counts / totals


def source_hyperparameters(counts: np.ndarray,
                           epsilon: float = DEFAULT_EPSILON) -> np.ndarray:
    """Smooth counts into Dirichlet hyperparameters per Definition 3.

    ``X_i = n_wi + epsilon`` — every vocabulary word gets strictly positive
    prior mass so Dirichlet draws can place (tiny) probability on words the
    source article never uses.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if np.any(counts < 0):
        raise ValueError("word counts must be non-negative")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return counts + epsilon


def powered_hyperparameters(hyperparameters: np.ndarray,
                            exponent: float | np.ndarray) -> np.ndarray:
    """Raise source hyperparameters element-wise to ``exponent``.

    This is the delta construction of Section III.C:
    ``delta_k = [(X_k1)^lam, ..., (X_kV)^lam]``.  As ``exponent`` approaches
    0 every entry approaches 1 (a flat symmetric prior); at 1 the prior is
    exactly the source counts.  ``exponent`` may be a scalar or a per-row
    column vector for per-topic lambdas.
    """
    hyperparameters = np.asarray(hyperparameters, dtype=np.float64)
    if np.any(hyperparameters <= 0):
        raise ValueError("hyperparameters must be strictly positive; apply "
                         "source_hyperparameters() first")
    return np.power(hyperparameters, exponent)


def sample_topic_distribution(hyperparameters: np.ndarray,
                              rng: np.random.Generator) -> np.ndarray:
    """Draw phi ~ Dir(delta) for one topic.

    numpy's Dirichlet sampler can return exact zeros for very small
    concentration parameters; a tiny floor plus renormalization keeps the
    draw inside the open simplex, which downstream divergence computations
    require.
    """
    hyperparameters = np.asarray(hyperparameters, dtype=np.float64)
    draw = rng.dirichlet(hyperparameters)
    floor = np.finfo(np.float64).tiny
    draw = np.maximum(draw, floor)
    return draw / draw.sum()
