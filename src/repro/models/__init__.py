"""Baseline topic models: LDA, EDA and the concept-topic model."""

from repro.models.base import (FittedTopicModel, TopicModel, default_alpha,
                               default_beta)
from repro.models.ctm import CTM, CtmKernel, concept_word_mask
from repro.models.eda import EDA, EdaKernel
from repro.models.lda import LDA, LdaKernel, posterior_theta

__all__ = [
    "CTM",
    "CtmKernel",
    "EDA",
    "EdaKernel",
    "FittedTopicModel",
    "LDA",
    "LdaKernel",
    "TopicModel",
    "concept_word_mask",
    "default_alpha",
    "default_beta",
    "posterior_theta",
]
