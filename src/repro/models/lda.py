"""Vanilla Latent Dirichlet Allocation with collapsed Gibbs sampling.

The unsupervised baseline of every experiment in the paper (Section II.B).
Implements the standard Griffiths-Steyvers sampler:

    P(z_i = j | z_-i, w)  ∝  (n^wi_-i,j + β) / (n^(.)_-i,j + V β)
                             · (n^di_-i,j + α)

with symmetric ``Dir(α)`` and ``Dir(β)`` priors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.base import FittedTopicModel, TopicModel
from repro.sampling.fast_engine import FastKernelPath
from repro.sampling.gibbs import (CollapsedGibbsSampler, TopicWeightKernel,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.rng import ensure_rng
from repro.sampling.scans import ScanStrategy
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


class LdaKernel(TopicWeightKernel):
    """Equation 2's unlabeled-topic case, for all topics."""

    def __init__(self, state: GibbsState, alpha: float, beta: float) -> None:
        super().__init__(state)
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}")
        self.alpha = alpha
        self.beta = beta
        self._beta_sum = beta * state.vocab_size

    def weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        word_part = (state.nw[word] + self.beta) / (state.nt + self._beta_sum)
        return word_part * (state.nd[doc] + self.alpha)

    def phi(self) -> np.ndarray:
        state = self.state
        phi = (state.nw + self.beta) / (state.nt + self._beta_sum)
        return phi.T

    def log_likelihood(self) -> float:
        return symmetric_dirichlet_log_likelihood(
            self.state.nw, self.state.nt, self.beta)

    def fast_path(self) -> "LdaFastPath":
        return LdaFastPath(self)


class LdaFastPath(FastKernelPath):
    """Incremental LDA weights for the fast sweep engine.

    The only cache is the denominator row ``nt + V * beta``: a Gibbs step
    changes ``nt`` for at most two topics, so the two touched entries are
    recomputed (with the reference's exact ``count + constant``
    expression, keeping the weights bit-identical) instead of re-adding
    the constant across all ``T`` topics per token.
    """

    def __init__(self, kernel: LdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self._beta_sum = kernel._beta_sum
        self._nt_beta = np.empty(kernel.state.num_topics)
        self._out = np.empty(kernel.state.num_topics)

    def begin_sweep(self) -> None:
        np.add(self.state.nt, self._beta_sum, out=self._nt_beta)

    def topic_changed(self, topic: int) -> None:
        self._nt_beta[topic] = self.state.nt[topic] + self._beta_sum

    def weights(self, word: int, doc_row: np.ndarray) -> np.ndarray:
        out = self._out
        np.add(self.state.nw[word], self.beta, out=out)
        out /= self._nt_beta
        out *= doc_row
        return out


def posterior_theta(state: GibbsState, alpha: float) -> np.ndarray:
    """Equation 1's ``theta`` estimate: ``(n_dt + α) / (n_d + K α)``."""
    totals = state.doc_lengths[:, np.newaxis] \
        + state.num_topics * alpha
    return (state.nd + alpha) / totals


class LDA(TopicModel):
    """Unsupervised LDA.

    Parameters
    ----------
    num_topics:
        Number of latent topics ``K``.
    alpha, beta:
        Symmetric Dirichlet priors; the paper's experiments use
        ``α = 50/T`` and ``β = 200/V`` (see :func:`default_alpha` /
        :func:`default_beta`), applied by the experiment drivers.
    scan:
        Optional scan strategy (Algorithms 2/3); defaults to serial.
    engine:
        Sweep engine: ``"fast"`` (default) or ``"reference"``; see
        :class:`~repro.sampling.gibbs.CollapsedGibbsSampler`.
    """

    def __init__(self, num_topics: int, alpha: float = 0.5,
                 beta: float = 0.1,
                 scan: ScanStrategy | None = None,
                 engine: str = "fast") -> None:
        if num_topics < 1:
            raise ValueError(f"num_topics must be >= 1, got {num_topics}")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self._scan = scan
        self.engine = engine

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        state = GibbsState(corpus, self.num_topics)
        state.initialize_random(rng)
        kernel = LdaKernel(state, self.alpha, self.beta)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine)
        snapshots: dict[int, np.ndarray] = {}
        wanted = set(int(i) for i in snapshot_iterations)

        def _snapshot(iteration: int, _state: GibbsState) -> None:
            if iteration in wanted:
                snapshots[iteration] = kernel.phi()

        log_likelihoods = sampler.run(
            iterations,
            callback=_snapshot if wanted else None,
            track_log_likelihood=track_log_likelihood)
        return FittedTopicModel(
            phi=kernel.phi(),
            theta=posterior_theta(state, self.alpha),
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            log_likelihoods=log_likelihoods,
            metadata={"snapshots": snapshots,
                      "iteration_seconds": sampler.timings.seconds,
                      "alpha": self.alpha, "beta": self.beta})
