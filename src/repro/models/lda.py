"""Vanilla Latent Dirichlet Allocation with collapsed Gibbs sampling.

The unsupervised baseline of every experiment in the paper (Section II.B).
Implements the standard Griffiths-Steyvers sampler:

    P(z_i = j | z_-i, w)  ∝  (n^wi_-i,j + β) / (n^(.)_-i,j + V β)
                             · (n^di_-i,j + α)

with symmetric ``Dir(α)`` and ``Dir(β)`` priors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models.base import FittedTopicModel, TopicModel
from repro.sampling.alias_engine import AliasKernelPath
from repro.sampling.fast_engine import FastKernelPath
from repro.sampling.gibbs import (CollapsedGibbsSampler, TopicWeightKernel,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.rng import ensure_rng
from repro.sampling.runtime import (AliasMHTable, LdaDenseTable, TopicSet,
                                    WordTopicLists, rebuild_alias_dense)
from repro.sampling.scans import ScanStrategy
from repro.sampling.sparse_engine import SparseKernelPath
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


class LdaKernel(TopicWeightKernel):
    """Equation 2's unlabeled-topic case, for all topics."""

    def __init__(self, state: GibbsState, alpha: float, beta: float) -> None:
        super().__init__(state)
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}")
        self.alpha = alpha
        self.beta = beta
        self._beta_sum = beta * state.vocab_size

    def weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        word_part = (state.nw[word] + self.beta) / (state.nt + self._beta_sum)
        return word_part * (state.nd[doc] + self.alpha)

    def phi(self) -> np.ndarray:
        state = self.state
        phi = (state.nw + self.beta) / (state.nt + self._beta_sum)
        return phi.T

    def log_likelihood(self) -> float:
        return symmetric_dirichlet_log_likelihood(
            self.state.nw, self.state.nt, self.beta)

    def fast_path(self) -> "LdaFastPath":
        return LdaFastPath(self)

    def sparse_path(self) -> "LdaSparsePath":
        return LdaSparsePath(self)

    def alias_path(self) -> "LdaAliasPath":
        return LdaAliasPath(self)


class LdaFastPath(FastKernelPath):
    """Incremental LDA weights for the fast sweep engine.

    The only cache is the denominator row ``nt + V * beta``: a Gibbs step
    changes ``nt`` for at most two topics, so the two touched entries are
    recomputed (with the reference's exact ``count + constant``
    expression, keeping the weights bit-identical) instead of re-adding
    the constant across all ``T`` topics per token.
    """

    def __init__(self, kernel: LdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self._beta_sum = kernel._beta_sum
        self._nt_beta = np.empty(kernel.state.num_topics)
        self._out = np.empty(kernel.state.num_topics)

    def begin_sweep(self) -> None:
        np.add(self.state.nt, self._beta_sum, out=self._nt_beta)

    def topic_changed(self, topic: int) -> None:
        self._nt_beta[topic] = self.state.nt[topic] + self._beta_sum

    def weights(self, word: int, doc_row: np.ndarray) -> np.ndarray:
        out = self._out
        np.add(self.state.nw[word], self.beta, out=out)
        out /= self._nt_beta
        out *= doc_row
        return out

    def table(self) -> LdaDenseTable:
        """The denominator cache as a flat runtime kernel table; the
        backend's inlined per-token refresh writes the same
        ``nt + V * beta`` entries :meth:`topic_changed` would."""
        return LdaDenseTable(alpha=self.alpha, beta=self.beta,
                             beta_sum=self._beta_sum,
                             nt_beta=self._nt_beta, out=self._out)


class LdaSparsePath(SparseKernelPath):
    """The canonical SparseLDA ``s + r + q`` decomposition of Equation 2.

    Per topic, with ``inv = 1 / (nt + V * beta)``::

        weight = alpha*beta*inv  +  beta*nd*inv  +  nw*(nd + alpha)*inv
                 [s: smoothing]     [r: document]    [q: word]

    The smoothing mass is a scalar maintained in O(1) per topic change
    (and refreshed at every document boundary to bound float drift); the
    document and word buckets are gathered fresh per token over the
    nonzero ``nd[d]`` / ``nw[w]`` topics, so a draw costs O(nnz) unless
    it lands in the (tiny) smoothing bucket.
    """

    lane = "lda"

    def __init__(self, kernel: LdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self._beta_sum = kernel._beta_sum
        self._ab = kernel.alpha * kernel.beta
        num_topics = kernel.state.num_topics
        self._inv_nt = np.empty(num_topics)
        self._doc = TopicSet(0, num_topics)
        self._words: WordTopicLists | None = None
        self._s_mass = 0.0
        self._nd_row: np.ndarray | None = None

    def begin_sweep(self) -> None:
        state = self.state
        self._words = WordTopicLists(state.words, state.z,
                                     state.vocab_size)

    def begin_document(self, doc: int) -> None:
        state = self.state
        np.add(state.nt, self._beta_sum, out=self._inv_nt)
        np.reciprocal(self._inv_nt, out=self._inv_nt)
        self._s_mass = self._ab * float(self._inv_nt.sum())
        self._nd_row = state.nd[doc]
        self._doc.begin(self._nd_row)

    def removed(self, word: int, doc: int, topic: int) -> None:
        inv_nt = self._inv_nt
        old = inv_nt[topic]
        new = 1.0 / (self.state.nt[topic] + self._beta_sum)
        inv_nt[topic] = new
        self._s_mass += self._ab * (new - old)
        if self._nd_row[topic] == 0.0:
            self._doc.discard(topic)
        if self.state.nw[word, topic] == 0.0:
            self._words.remove(word, topic)

    def added(self, word: int, doc: int, topic: int) -> None:
        inv_nt = self._inv_nt
        old = inv_nt[topic]
        new = 1.0 / (self.state.nt[topic] + self._beta_sum)
        inv_nt[topic] = new
        self._s_mass += self._ab * (new - old)
        if self._nd_row[topic] == 1.0:
            self._doc.add(topic)
        if self.state.nw[word, topic] == 1.0:
            self._words.add(word, topic)

    def draw(self, word: int, doc: int, u: float) -> int:
        state = self.state
        alpha = self.alpha
        nw = state.nw
        nd_row = self._nd_row
        inv_nt = self._inv_nt
        # q: word bucket over the nonzero nw[word] topics.
        word_topics = self._words.lists[word]
        q_weights: list[float] = []
        q_mass = 0.0
        for t in word_topics:
            weight = nw[word, t] * (nd_row[t] + alpha) * inv_nt[t]
            q_weights.append(weight)
            q_mass += weight
        # r: document bucket over the nonzero nd[doc] topics.
        doc_topics = self._doc.array()
        num_doc = doc_topics.shape[0]
        if num_doc:
            r_weights = nd_row.take(doc_topics) * inv_nt.take(doc_topics)
            r_weights *= self.beta
            r_mass = float(r_weights.sum())
        else:
            r_mass = 0.0
        total = q_mass + r_mass + self._s_mass
        if not (0.0 < total < np.inf):
            raise ValueError(
                f"topic weights must have positive finite mass, got "
                f"total={total!r}")
        x = u * total
        if x < q_mass:
            acc = 0.0
            for weight, t in zip(q_weights, word_topics):
                acc += weight
                if x < acc:
                    return t
            # Float shortfall in the walk: fall through to the next
            # bucket (the perturbation is one ulp of the bucket mass).
        x -= q_mass
        if num_doc and x < r_mass:
            cumulative = np.cumsum(r_weights)
            index = int(cumulative.searchsorted(x, side="right"))
            if index >= num_doc:
                index = num_doc - 1  # r_weights are all positive
            return int(doc_topics[index])
        x -= r_mass
        # s: smoothing bucket over every topic, proportional to inv_nt.
        cumulative = self._inclusive_scan(inv_nt)
        index = int(cumulative.searchsorted(x / self._ab, side="right"))
        if index >= cumulative.shape[0]:
            index = cumulative.shape[0] - 1  # inv_nt is all positive
        return index

    def dense_weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        inv = 1.0 / (state.nt + self._beta_sum)
        nd_row = state.nd[doc]
        return (state.nw[word] * (nd_row + self.alpha)
                + self.beta * nd_row + self._ab) * inv


class LdaAliasPath(AliasKernelPath):
    """The alias/MH stale-mixture decomposition of Equation 2.

    The word-dependent factor ``(nw + beta) / (nt + V * beta)`` splits
    into the stale mixture::

        nw / (nt + V*beta)     [per-word sparse component, frozen at
                                its own rebuild over nonzero nw[w]]
      + beta / (nt + V*beta)   [shared dense component, frozen per
                                sweep into one Walker alias table]

    Both components are non-negative and the dense one strictly
    positive, so the mixture proposal covers every topic; the MH test
    against the exact live conditional corrects whatever staleness the
    frozen values carry.
    """

    def __init__(self, kernel: LdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self._beta_sum = kernel._beta_sum
        self._table: AliasMHTable | None = None

    def alias_table(self) -> AliasMHTable:
        if self._table is None:
            state = self.state
            vocab_size = state.vocab_size
            lengths = state.doc_lengths.astype(np.int64)
            max_len = int(lengths.max()) if lengths.shape[0] else 0
            self._table = AliasMHTable(
                mode="lda",
                alpha=self.alpha,
                num_topics=state.num_topics,
                rebuild_every=self.rebuild_every,
                mh_counts=np.zeros(2, dtype=np.int64),
                doc_starts=np.concatenate(
                    ([0], np.cumsum(lengths))).tolist(),
                doc_lengths=lengths.tolist(),
                doc_z=np.empty(max(max_len, 1), dtype=np.int64),
                word_topics=[None] * vocab_size,
                word_vals=[None] * vocab_size,
                word_cum=[None] * vocab_size,
                word_mass=[0.0] * vocab_size,
                # Start saturated so every word builds its sparse
                # component on first touch.
                draws_since=[self.rebuild_every] * vocab_size,
                beta=self.beta,
                beta_sum=self._beta_sum)
        return self._table

    def begin_sweep(self) -> None:
        table = self.alias_table()
        rebuild_alias_dense(table, self.state)
        table.current_doc = -1


def posterior_theta(state: GibbsState, alpha: float) -> np.ndarray:
    """Equation 1's ``theta`` estimate: ``(n_dt + α) / (n_d + K α)``.

    Stays dense on purpose: unlike the phi/likelihood snapshots (whose
    per-entry special functions make nonzero gathers pay), theta is one
    add and one divide per entry into a dense result — a sparse gather
    would scan the same ``(D, T)`` entries and win nothing.
    """
    totals = state.doc_lengths[:, np.newaxis] \
        + state.num_topics * alpha
    return (state.nd + alpha) / totals


class LDA(TopicModel):
    """Unsupervised LDA.

    Parameters
    ----------
    num_topics:
        Number of latent topics ``K``.
    alpha, beta:
        Symmetric Dirichlet priors; the paper's experiments use
        ``α = 50/T`` and ``β = 200/V`` (see :func:`default_alpha` /
        :func:`default_beta`), applied by the experiment drivers.
    scan:
        Optional scan strategy (Algorithms 2/3); defaults to serial.
    engine:
        Sweep engine: ``"fast"`` (default, draw-identical to the
        reference), ``"sparse"`` (SparseLDA ``s + r + q`` buckets,
        O(nnz) per token, statistically equivalent), ``"alias"``
        (stale-alias/MH proposals, amortized O(1) per token,
        distributionally equivalent) or ``"reference"`` (the literal
        Algorithm 1 loop); see
        :class:`~repro.sampling.gibbs.CollapsedGibbsSampler`.
    backend:
        Token-loop backend for the fast/sparse/alias engines:
        ``"auto"`` (default), ``"python"`` or ``"numba"``; see
        :mod:`repro.sampling.runtime`.
    """

    def __init__(self, num_topics: int, alpha: float = 0.5,
                 beta: float = 0.1,
                 scan: ScanStrategy | None = None,
                 engine: str = "fast",
                 backend: str = "auto") -> None:
        if num_topics < 1:
            raise ValueError(f"num_topics must be >= 1, got {num_topics}")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self._scan = scan
        self.engine = engine
        self.backend = backend

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        state = GibbsState(corpus, self.num_topics)
        state.initialize_random(rng)
        kernel = LdaKernel(state, self.alpha, self.beta)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine,
                                        backend=self.backend)
        snapshots: dict[int, np.ndarray] = {}
        wanted = set(int(i) for i in snapshot_iterations)

        def _snapshot(iteration: int, _state: GibbsState) -> None:
            if iteration in wanted:
                snapshots[iteration] = kernel.phi()

        log_likelihoods = sampler.run(
            iterations,
            callback=_snapshot if wanted else None,
            track_log_likelihood=track_log_likelihood)
        return FittedTopicModel(
            phi=kernel.phi(),
            theta=posterior_theta(state, self.alpha),
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            log_likelihoods=log_likelihoods,
            metadata={"snapshots": snapshots,
                      "iteration_seconds": sampler.timings.seconds,
                      "alpha": self.alpha, "beta": self.beta})
