"""Explicit Dirichlet Allocation (EDA), Hansen et al. 2013.

The "too strict" end of the spectrum the paper positions Source-LDA against
(Section I): every topic's word distribution *is* the knowledge-source
distribution — Wikipedia article counts, normalized — and inference only
fits document mixtures and token assignments.  EDA can label topics
perfectly when the corpus follows the articles exactly, but "does not allow
for variance from the Wikipedia distribution", which is what the graphical
experiment (Fig. 6) and the Section IV.D accuracy comparisons exercise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.knowledge.distributions import (DEFAULT_EPSILON,
                                           source_hyperparameters)
from repro.knowledge.source import KnowledgeSource
from repro.models.base import FittedTopicModel, TopicModel
from repro.models.lda import posterior_theta
from repro.sampling.alias import build_alias_rows
from repro.sampling.alias_engine import AliasKernelPath
from repro.sampling.fast_engine import FastKernelPath
from repro.sampling.gibbs import CollapsedGibbsSampler, TopicWeightKernel
from repro.sampling.rng import ensure_rng
from repro.sampling.runtime import AliasMHTable, EdaDenseTable, TopicSet
from repro.sampling.scans import ScanStrategy, last_positive_index
from repro.sampling.sparse_engine import SparseKernelPath
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus


class EdaKernel(TopicWeightKernel):
    """Fixed-phi kernel: ``P(z=j) ∝ phi_j(w) · (n_dj + α)``."""

    def __init__(self, state: GibbsState, phi: np.ndarray,
                 alpha: float) -> None:
        super().__init__(state)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        phi = np.asarray(phi, dtype=np.float64)
        if phi.shape != (state.num_topics, state.vocab_size):
            raise ValueError(
                f"phi must have shape "
                f"({state.num_topics}, {state.vocab_size}), got {phi.shape}")
        self.alpha = alpha
        self._phi = phi
        self._phi_by_word = phi.T.copy()  # (V, T) for row gathers
        self._log_phi_by_word = np.log(self._phi_by_word)

    def weights(self, word: int, doc: int) -> np.ndarray:
        return self._phi_by_word[word] * (self.state.nd[doc] + self.alpha)

    def phi(self) -> np.ndarray:
        return self._phi

    def log_likelihood(self) -> float:
        # phi is fixed, so log P(w | z) decomposes over word-topic counts.
        return float((self.state.nw * self._log_phi_by_word).sum())

    def fast_path(self) -> "EdaFastPath":
        return EdaFastPath(self)

    def sparse_path(self) -> "EdaSparsePath":
        return EdaSparsePath(self)

    def alias_path(self) -> "EdaAliasPath":
        return EdaAliasPath(self)


class EdaFastPath(FastKernelPath):
    """EDA fast path: phi is fixed, so there is nothing to cache — the
    weight is a row view of the precomputed ``(V, T)`` phi table times
    the engine's document row (bit-identical to the reference)."""

    def __init__(self, kernel: EdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self._phi_by_word = kernel._phi_by_word
        self._out = np.empty(kernel.state.num_topics)

    def begin_sweep(self) -> None:
        pass

    def weights(self, word: int, doc_row: np.ndarray) -> np.ndarray:
        return self._phi_by_word[word] * doc_row

    def table(self) -> EdaDenseTable:
        """The frozen ``(V, T)`` phi gather table as a runtime kernel
        table (there are no count-keyed caches to refresh)."""
        return EdaDenseTable(alpha=self.alpha,
                             phi_by_word=self._phi_by_word,
                             out=self._out)


class EdaSparsePath(SparseKernelPath):
    """Bucketed EDA draws: ``phi`` is fixed, so the weight splits into

        weight = alpha * phi[w]   +   phi[w] * nd
                 [s: prior mass]      [r: document bucket]

    The prior-mass bucket total ``alpha * sum_t phi[t, w]`` is a static
    per-word constant (no drift at all); the document bucket is gathered
    fresh over the nonzero ``nd[d]`` topics.  There is no word-count
    bucket because phi does not depend on the counts.
    """

    lane = "eda"

    def __init__(self, kernel: EdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self._phi_by_word = kernel._phi_by_word            # (V, T)
        self._prior_mass = kernel._phi_by_word.sum(axis=1)  # (V,)
        self._doc = TopicSet(0, kernel.state.num_topics)
        self._nd_row: np.ndarray | None = None

    def begin_sweep(self) -> None:
        pass

    def begin_document(self, doc: int) -> None:
        self._nd_row = self.state.nd[doc]
        self._doc.begin(self._nd_row)

    def removed(self, word: int, doc: int, topic: int) -> None:
        if self._nd_row[topic] == 0.0:
            self._doc.discard(topic)

    def added(self, word: int, doc: int, topic: int) -> None:
        if self._nd_row[topic] == 1.0:
            self._doc.add(topic)

    def draw(self, word: int, doc: int, u: float) -> int:
        phi_row = self._phi_by_word[word]
        nd_row = self._nd_row
        doc_topics = self._doc.array()
        num_doc = doc_topics.shape[0]
        if num_doc:
            r_weights = phi_row.take(doc_topics) * nd_row.take(doc_topics)
            r_mass = float(r_weights.sum())
        else:
            r_mass = 0.0
        s_mass = self.alpha * float(self._prior_mass[word])
        total = r_mass + s_mass
        if not (0.0 < total < np.inf):
            raise ValueError(
                f"topic weights must have positive finite mass, got "
                f"total={total!r}")
        x = u * total
        if num_doc and x < r_mass:
            cumulative = np.cumsum(r_weights)
            index = int(cumulative.searchsorted(x, side="right"))
            if index >= num_doc:
                # phi entries may be zero at doc topics: clamp to the
                # last positive-weight entry, not the last index.
                index = last_positive_index(cumulative)
            return int(doc_topics[index])
        x -= r_mass
        # s: prior-mass bucket proportional to the phi column.
        if s_mass > 0.0:
            cumulative = self._inclusive_scan(phi_row)
            index = int(cumulative.searchsorted(x / self.alpha,
                                                side="right"))
            if index >= cumulative.shape[0]:
                index = last_positive_index(cumulative)
            return index
        # Float shortfall pushed the draw past a massless prior bucket;
        # the document bucket holds all the mass (total > 0).
        cumulative = np.cumsum(r_weights)
        return int(doc_topics[last_positive_index(cumulative)])

    def dense_weights(self, word: int, doc: int) -> np.ndarray:
        phi_row = self._phi_by_word[word]
        return phi_row * self.state.nd[doc] + self.alpha * phi_row


class EdaAliasPath(AliasKernelPath):
    """Alias/MH EDA draws: ``phi`` is fixed, so the word proposal is a
    *static* stacked Walker table over ``phi[:, w]`` — never stale, no
    rebuild cadence, and the whole chunk's word proposals come from one
    vectorized :func:`~repro.sampling.alias.alias_draw_many` batch.  The
    doc proposal and the MH tests against the live ``nd`` counts are
    the standard LightLDA cycle; the word-proposal MH test is exact
    (``q = phi``), so a word proposal is only ever rejected through the
    doc-count factor.
    """

    def __init__(self, kernel: EdaKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self._phi_by_word = kernel._phi_by_word
        self._table: AliasMHTable | None = None

    def alias_table(self) -> AliasMHTable:
        if self._table is None:
            state = self.state
            phi_by_word = self._phi_by_word
            accept, alias_topic = build_alias_rows(phi_by_word)
            lengths = state.doc_lengths.astype(np.int64)
            max_len = int(lengths.max()) if lengths.shape[0] else 0
            self._table = AliasMHTable(
                mode="eda",
                alpha=self.alpha,
                num_topics=state.num_topics,
                rebuild_every=self.rebuild_every,
                mh_counts=np.zeros(2, dtype=np.int64),
                doc_starts=np.concatenate(
                    ([0], np.cumsum(lengths))).tolist(),
                doc_lengths=lengths.tolist(),
                doc_z=np.empty(max(max_len, 1), dtype=np.int64),
                phi_by_word=phi_by_word,
                eda_accept=accept,
                eda_alias=alias_topic,
                # Poison-check the first batch only when some phi row
                # could be all-zero (never after epsilon smoothing, but
                # the kernel accepts arbitrary phi).
                eda_validated=bool(
                    (phi_by_word.sum(axis=1) > 0.0).all()))
        return self._table

    def begin_sweep(self) -> None:
        self.alias_table().current_doc = -1


class EDA(TopicModel):
    """Explicit Dirichlet allocation over a knowledge source.

    Parameters
    ----------
    source:
        Knowledge source whose articles become the (fixed) topics.
    alpha:
        Symmetric document-topic prior.
    epsilon:
        Smoothing added to article counts so every vocabulary word has
        non-zero probability under every topic (otherwise a corpus word
        absent from all articles would have zero total mass).
    engine:
        ``"fast"`` (default, draw-identical to the reference),
        ``"sparse"`` (bucketed document/prior draws, statistically
        equivalent), ``"alias"`` (static alias-table proposals + MH,
        distributionally equivalent) or ``"reference"``; see
        :class:`~repro.sampling.gibbs.CollapsedGibbsSampler`.
    backend:
        Token-loop backend: ``"auto"`` (default), ``"python"`` or
        ``"numba"``; see :mod:`repro.sampling.runtime`.
    """

    def __init__(self, source: KnowledgeSource, alpha: float = 0.5,
                 epsilon: float = DEFAULT_EPSILON,
                 scan: ScanStrategy | None = None,
                 engine: str = "fast",
                 backend: str = "auto") -> None:
        self.source = source
        self.alpha = alpha
        self.epsilon = epsilon
        self._scan = scan
        self.engine = engine
        self.backend = backend

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        counts = self.source.count_matrix(corpus.vocabulary)
        smoothed = source_hyperparameters(counts, self.epsilon)
        phi = smoothed / smoothed.sum(axis=1, keepdims=True)
        state = GibbsState(corpus, len(self.source))
        state.initialize_random(rng)
        kernel = EdaKernel(state, phi, self.alpha)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine,
                                        backend=self.backend)
        log_likelihoods = sampler.run(
            iterations, track_log_likelihood=track_log_likelihood)
        return FittedTopicModel(
            phi=phi,
            theta=posterior_theta(state, self.alpha),
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            topic_labels=self.source.labels,
            log_likelihoods=log_likelihoods,
            metadata={"iteration_seconds": sampler.timings.seconds,
                      "alpha": self.alpha, "epsilon": self.epsilon})
