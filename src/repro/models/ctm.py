"""Concept-Topic Model (CTM), Chemudugunta et al. 2008.

The "too lenient" end of the paper's spectrum (Section I): each known
concept contributes only a *word set* — a bag of words with no frequency
information — and a token may be assigned to a concept only if its word
belongs to that concept's bag.  Unconstrained latent topics can be mixed in
alongside the concepts.  Because the bags carry no distribution, CTM
"assigns more weight to less important words" (Section IV.C), which is the
failure mode the Reuters and Wikipedia experiments measure.

Following the paper's setup, concept bags are built from the top-``N`` most
frequent words of each knowledge-source article.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.knowledge.source import KnowledgeSource
from repro.models.base import FittedTopicModel, TopicModel
from repro.models.lda import posterior_theta
from repro.sampling.fast_engine import FastKernelPath
from repro.sampling.gibbs import (CollapsedGibbsSampler, TopicWeightKernel,
                                  symmetric_dirichlet_log_likelihood)
from repro.sampling.rng import ensure_rng
from repro.sampling.scans import ScanStrategy
from repro.sampling.state import GibbsState
from repro.text.corpus import Corpus
from scipy.special import gammaln


def concept_word_mask(source: KnowledgeSource, vocabulary,
                      top_n_words: int) -> np.ndarray:
    """Boolean ``(V, C)`` mask: may word ``w`` be assigned to concept ``c``?

    A concept's bag is the ``top_n_words`` most frequent words of its
    article, intersected with the corpus vocabulary.
    """
    if top_n_words < 1:
        raise ValueError(f"top_n_words must be >= 1, got {top_n_words}")
    counts = source.count_matrix(vocabulary)
    mask = np.zeros_like(counts, dtype=bool)
    for concept in range(counts.shape[0]):
        present = np.flatnonzero(counts[concept] > 0)
        if present.size == 0:
            continue
        order = present[np.argsort(-counts[concept, present],
                                   kind="stable")]
        mask[concept, order[:top_n_words]] = True
    return mask.T  # (V, C)


class CtmKernel(TopicWeightKernel):
    """Free latent topics plus word-set-restricted concept topics.

    Topic layout matches the paper's mixed models: indices
    ``[0, num_free)`` are unconstrained topics, ``[num_free, T)`` are the
    concepts.
    """

    def __init__(self, state: GibbsState, mask: np.ndarray, num_free: int,
                 alpha: float, beta: float) -> None:
        super().__init__(state)
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}")
        num_concepts = state.num_topics - num_free
        if num_free < 0 or num_concepts < 1:
            raise ValueError(
                f"invalid split: {num_free} free topics of "
                f"{state.num_topics} total")
        if mask.shape != (state.vocab_size, num_concepts):
            raise ValueError(
                f"mask must have shape ({state.vocab_size}, {num_concepts}),"
                f" got {mask.shape}")
        self.alpha = alpha
        self.beta = beta
        self.num_free = num_free
        self.mask = mask.astype(np.float64)
        self._bag_sizes = self.mask.sum(axis=0)  # |W_c|
        self._beta_sum_free = beta * state.vocab_size
        # Concepts whose bag misses the corpus vocabulary entirely would
        # divide 0/0; their mask already zeroes the numerator, so any
        # positive denominator is safe.
        self._beta_sum_concepts = np.where(self._bag_sizes > 0,
                                           beta * self._bag_sizes, 1.0)

    def weights(self, word: int, doc: int) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = np.empty(state.num_topics, dtype=np.float64)
        doc_part = state.nd[doc] + self.alpha
        if k:
            out[:k] = ((state.nw[word, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum_free))
        concept_word = (self.mask[word]
                        * (state.nw[word, k:] + self.beta)
                        / (state.nt[k:] + self._beta_sum_concepts))
        out[k:] = concept_word
        out *= doc_part
        if not out.any():
            # The word is outside every concept bag and there are no free
            # topics: the model cannot explain it.  Keep the sampler
            # well-defined with a uniform draw over concepts (the token
            # contributes "dropout" noise, mirroring the paper's
            # observation about small bags).
            out[k:] = doc_part[k:]
        return out

    def phi(self) -> np.ndarray:
        state = self.state
        k = self.num_free
        phi = np.empty((state.num_topics, state.vocab_size))
        if k:
            phi[:k] = ((state.nw[:, :k] + self.beta)
                       / (state.nt[:k] + self._beta_sum_free)).T
        concept = (self.mask * (state.nw[:, k:] + self.beta)).T
        concept /= (state.nt[k:] + self._beta_sum_concepts)[:, np.newaxis]
        # Concepts whose bag misses the vocabulary entirely normalize to 0;
        # leave them as uniform so phi rows always sum to 1.
        empty = concept.sum(axis=1) == 0
        concept[empty] = 1.0 / state.vocab_size
        phi[k:] = concept / concept.sum(axis=1, keepdims=True)
        return phi

    def log_likelihood(self) -> float:
        state = self.state
        k = self.num_free
        total = 0.0
        if k:
            total += symmetric_dirichlet_log_likelihood(
                state.nw[:, :k], state.nt[:k], self.beta)
        # Concepts: symmetric Dirichlet restricted to each bag.  Empty
        # bags (no vocabulary overlap) contribute nothing.
        bag = self._bag_sizes
        counts = state.nw[:, k:]
        inside = (self.mask > 0)
        nonempty = bag > 0
        per_concept = np.where(
            nonempty,
            (gammaln(np.maximum(bag, 1) * self.beta)
             - bag * gammaln(self.beta)
             + (gammaln(counts + self.beta) * inside).sum(axis=0)
             - gammaln(state.nt[k:] + bag * self.beta)),
            0.0)
        return float(total + per_concept.sum())

    def fast_path(self) -> "CtmFastPath":
        return CtmFastPath(self)


class CtmFastPath(FastKernelPath):
    """CTM fast path: incremental denominator rows for the free topics
    (``nt + V * beta``) and the concepts (``nt + |W_c| * beta``); only
    the (at most two) entries whose ``nt`` changed are recomputed per
    token, with the reference's exact expressions so the weights stay
    bit-identical — including the uniform-over-concepts fallback for
    words outside every bag."""

    def __init__(self, kernel: CtmKernel) -> None:
        super().__init__(kernel.state)
        self.alpha = kernel.alpha
        self.beta = kernel.beta
        self.num_free = kernel.num_free
        self._mask = kernel.mask
        self._beta_sum_free = kernel._beta_sum_free
        self._beta_sum_concepts = kernel._beta_sum_concepts
        self._nt_free = np.empty(self.num_free)
        self._nt_concepts = np.empty(
            kernel.state.num_topics - self.num_free)
        self._out = np.empty(kernel.state.num_topics)

    def begin_sweep(self) -> None:
        state = self.state
        k = self.num_free
        np.add(state.nt[:k], self._beta_sum_free, out=self._nt_free)
        np.add(state.nt[k:], self._beta_sum_concepts,
               out=self._nt_concepts)

    def topic_changed(self, topic: int) -> None:
        state = self.state
        k = self.num_free
        if topic < k:
            self._nt_free[topic] = state.nt[topic] + self._beta_sum_free
        else:
            self._nt_concepts[topic - k] = (
                state.nt[topic] + self._beta_sum_concepts[topic - k])

    def weights(self, word: int, doc_row: np.ndarray) -> np.ndarray:
        state = self.state
        k = self.num_free
        out = self._out
        if k:
            np.divide(state.nw[word, :k] + self.beta, self._nt_free,
                      out=out[:k])
        out[k:] = (self._mask[word] * (state.nw[word, k:] + self.beta)
                   / self._nt_concepts)
        out *= doc_row
        if not out.any():
            out[k:] = doc_row[k:]
        return out


class CTM(TopicModel):
    """Concept-topic model over a knowledge source.

    Parameters
    ----------
    source:
        Knowledge source whose articles define the concept word sets.
    num_free_topics:
        Unconstrained latent topics mixed in alongside the concepts
        (0 reproduces the "Exact"/bijective runs).
    top_n_words:
        Bag size per concept; the paper uses the top 10,000 words by
        frequency.
    engine:
        ``"fast"`` (default) or ``"reference"``; ``"sparse"`` and
        ``"alias"`` are accepted but the CTM kernel defines no bucketed
        or alias path (the out-of-bag fallback does not decompose), so
        both run on the fast engine and stay draw-identical to the
        reference.  See
        :class:`~repro.sampling.gibbs.CollapsedGibbsSampler`.
    backend:
        Token-loop backend: ``"auto"`` (default), ``"python"`` or
        ``"numba"``.  The CTM path exports no kernel table (the
        out-of-bag fallback is a data-dependent branch), so every
        backend runs it on the interpreted object lane; the argument is
        validated and recorded for API uniformity.
    """

    def __init__(self, source: KnowledgeSource, num_free_topics: int = 0,
                 top_n_words: int = 10_000, alpha: float = 0.5,
                 beta: float = 0.1,
                 scan: ScanStrategy | None = None,
                 engine: str = "fast",
                 backend: str = "auto") -> None:
        if num_free_topics < 0:
            raise ValueError(
                f"num_free_topics must be >= 0, got {num_free_topics}")
        self.source = source
        self.num_free_topics = num_free_topics
        self.top_n_words = top_n_words
        self.alpha = alpha
        self.beta = beta
        self._scan = scan
        self.engine = engine
        self.backend = backend

    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        rng = ensure_rng(seed)
        mask = concept_word_mask(self.source, corpus.vocabulary,
                                 self.top_n_words)
        num_topics = self.num_free_topics + len(self.source)
        state = GibbsState(corpus, num_topics)
        state.initialize_random(rng)
        kernel = CtmKernel(state, mask, self.num_free_topics,
                           self.alpha, self.beta)
        sampler = CollapsedGibbsSampler(state, kernel, rng, scan=self._scan,
                                        engine=self.engine,
                                        backend=self.backend)
        log_likelihoods = sampler.run(
            iterations, track_log_likelihood=track_log_likelihood)
        labels = ((None,) * self.num_free_topics) + self.source.labels
        return FittedTopicModel(
            phi=kernel.phi(),
            theta=posterior_theta(state, self.alpha),
            assignments=state.assignments_by_document(),
            vocabulary=corpus.vocabulary,
            topic_labels=labels,
            log_likelihoods=log_likelihoods,
            metadata={"iteration_seconds": sampler.timings.seconds,
                      "alpha": self.alpha, "beta": self.beta,
                      "top_n_words": self.top_n_words})
