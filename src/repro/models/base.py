"""Shared topic-model API.

Every model — the LDA/EDA/CTM baselines and the three Source-LDA variants —
exposes the same surface: construct with hyperparameters, ``fit(corpus)``,
get back a :class:`FittedTopicModel` holding ``phi``, ``theta``, per-token
assignments and (for knowledge-source models) per-topic labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.text.corpus import Corpus
from repro.text.vocabulary import Vocabulary


@dataclass
class FittedTopicModel:
    """The result of fitting a topic model.

    Attributes
    ----------
    phi:
        Topic-word distributions, shape ``(T, V)``; rows sum to 1.
    theta:
        Document-topic distributions, shape ``(D, T)``; rows sum to 1.
    assignments:
        Final per-token topic assignment, one array per document.
    topic_labels:
        Length-``T`` labels; ``None`` marks an unlabeled (latent) topic.
    log_likelihoods:
        Complete-data log-likelihood trace, if tracked during fitting.
    vocabulary:
        The corpus vocabulary the distributions are indexed by.
    metadata:
        Model-specific extras (e.g. which superset topics survived
        reduction).
    """

    phi: np.ndarray
    theta: np.ndarray
    assignments: list[np.ndarray]
    vocabulary: Vocabulary
    topic_labels: tuple[str | None, ...] = ()
    log_likelihoods: list[float] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Lazy phi views (the sharded-artifact loads of
        # repro.serving.sharding, marked by `is_lazy`) expose shape/
        # dtype/row access without holding the matrix; coercing them
        # through np.asarray would materialize — and for an out-of-core
        # model, OOM — so they pass through as-is.
        if not getattr(self.phi, "is_lazy", False):
            self.phi = np.asarray(self.phi, dtype=np.float64)
        self.theta = np.asarray(self.theta, dtype=np.float64)
        if self.phi.ndim != 2 or self.theta.ndim != 2:
            raise ValueError("phi and theta must be 2-d")
        if self.phi.shape[0] != self.theta.shape[1]:
            raise ValueError(
                f"phi has {self.phi.shape[0]} topics but theta has "
                f"{self.theta.shape[1]}")
        if not self.topic_labels:
            self.topic_labels = (None,) * self.num_topics
        if len(self.topic_labels) != self.num_topics:
            raise ValueError(
                f"expected {self.num_topics} topic labels, got "
                f"{len(self.topic_labels)}")

    @property
    def num_topics(self) -> int:
        return int(self.phi.shape[0])

    @property
    def num_documents(self) -> int:
        return int(self.theta.shape[0])

    @property
    def vocab_size(self) -> int:
        return int(self.phi.shape[1])

    def top_word_ids(self, topic: int, n: int = 10) -> np.ndarray:
        """Ids of the ``n`` most probable words of ``topic``."""
        row = self.phi[topic]
        order = np.argsort(-row, kind="stable")
        return order[:n]

    def top_words(self, topic: int, n: int = 10) -> list[str]:
        """The ``n`` most probable words of ``topic``."""
        return self.vocabulary.decode(self.top_word_ids(topic, n))

    def label_of(self, topic: int) -> str | None:
        return self.topic_labels[topic]

    def labeled_topic_indices(self) -> list[int]:
        """Indices of topics carrying a knowledge-source label."""
        return [t for t, label in enumerate(self.topic_labels)
                if label is not None]

    def topics_used(self, min_tokens: int = 1) -> list[int]:
        """Topics with at least ``min_tokens`` assigned tokens."""
        counts = np.zeros(self.num_topics)
        for doc_assignments in self.assignments:
            np.add.at(counts, doc_assignments, 1)
        return [t for t in range(self.num_topics)
                if counts[t] >= min_tokens]

    def flat_assignments(self) -> np.ndarray:
        """All token assignments concatenated in corpus order."""
        if not self.assignments:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.assignments)

    def __repr__(self) -> str:
        labeled = len(self.labeled_topic_indices())
        return (f"{type(self).__name__}(topics={self.num_topics}, "
                f"labeled={labeled}, docs={self.num_documents}, "
                f"vocab={self.vocab_size})")


FitCallback = Callable[[int, "np.ndarray"], None]


class TopicModel(ABC):
    """Abstract base: configure at construction, then ``fit`` a corpus."""

    @abstractmethod
    def fit(self, corpus: Corpus, iterations: int = 100,
            seed: int | np.random.Generator | None = None,
            track_log_likelihood: bool = False,
            snapshot_iterations: Sequence[int] = (),
            ) -> FittedTopicModel:
        """Run inference on ``corpus`` and return the fitted model.

        ``snapshot_iterations`` asks the model to record ``phi`` snapshots
        (under ``metadata['snapshots']``) after those sweep indices — used
        by the Fig. 6 visualization of topics mid-inference.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parameters = ", ".join(f"{k}={v!r}"
                               for k, v in sorted(vars(self).items())
                               if not k.startswith("_"))
        return f"{type(self).__name__}({parameters})"


def default_alpha(num_topics: int) -> float:
    """The paper's symmetric document-topic prior, ``50 / T``."""
    if num_topics < 1:
        raise ValueError(f"num_topics must be >= 1, got {num_topics}")
    return 50.0 / num_topics


def default_beta(vocab_size: int) -> float:
    """The paper's symmetric topic-word prior, ``200 / V``."""
    if vocab_size < 1:
        raise ValueError(f"vocab_size must be >= 1, got {vocab_size}")
    return 200.0 / vocab_size
