"""Pointwise mutual information (PMI) topic coherence.

The Fig. 8(c) metric: "PMI ... takes as input a subset of the most popular
tokens comprising a topic and determines the frequency of all pairs in the
subset occurring at a given input distance from each other in the corpus."
For each topic's top-``n`` words, every unordered pair is scored by

    PMI(w1, w2) = log [ P(w1, w2) / (P(w1) P(w2)) ]

with pair probability estimated from co-occurrence within a sliding window
of the given distance, and the topic's coherence is the average over pairs.
Higher is better.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

import numpy as np

from repro.models.base import FittedTopicModel
from repro.text.corpus import Corpus


class CooccurrenceCounter:
    """Window co-occurrence statistics restricted to words of interest.

    Counting only the words that actually appear in some topic's top list
    keeps the pair table tiny regardless of vocabulary size.
    """

    def __init__(self, corpus: Corpus, words_of_interest: set[int],
                 window: int = 10) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.word_counts: Counter[int] = Counter()
        self.pair_counts: Counter[tuple[int, int]] = Counter()
        self.total_positions = 0
        interest = words_of_interest
        for doc in corpus:
            ids = doc.word_ids
            self.total_positions += max(len(ids), 0)
            positions = [(pos, int(w)) for pos, w in enumerate(ids)
                         if int(w) in interest]
            for _, word in positions:
                self.word_counts[word] += 1
            for i in range(len(positions)):
                pos_i, word_i = positions[i]
                for j in range(i + 1, len(positions)):
                    pos_j, word_j = positions[j]
                    if pos_j - pos_i >= window:
                        break
                    if word_i != word_j:
                        self.pair_counts[_ordered(word_i, word_j)] += 1

    def pmi(self, word_a: int, word_b: int, smoothing: float = 1.0) -> float:
        """Smoothed PMI of one word pair (add-``smoothing`` on the pair
        count so unseen pairs stay finite)."""
        if self.total_positions == 0:
            raise ValueError("co-occurrence counter saw an empty corpus")
        count_a = self.word_counts[word_a]
        count_b = self.word_counts[word_b]
        if count_a == 0 or count_b == 0:
            return 0.0
        joint = self.pair_counts[_ordered(word_a, word_b)] + smoothing
        n = self.total_positions
        return float(np.log(joint * n / (count_a * count_b)))


def _ordered(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


def topic_pmi(counter: CooccurrenceCounter, top_words: np.ndarray) -> float:
    """Average PMI over all unordered pairs of one topic's top words."""
    words = [int(w) for w in top_words]
    pairs = list(combinations(sorted(set(words)), 2))
    if not pairs:
        raise ValueError("need at least two distinct top words")
    return float(np.mean([counter.pmi(a, b) for a, b in pairs]))


def model_pmi(model: FittedTopicModel, corpus: Corpus, top_n: int = 10,
              window: int = 10, topics: list[int] | None = None) -> float:
    """Mean per-topic PMI coherence of a fitted model (Fig. 8c series).

    ``topics`` restricts scoring to a subset (e.g. the topics surviving
    superset reduction); by default topics that received at least one
    token are scored.
    """
    scored_topics = topics if topics is not None \
        else model.topics_used(min_tokens=1)
    if not scored_topics:
        raise ValueError("no topics to score")
    interest: set[int] = set()
    top_lists = {}
    for topic in scored_topics:
        ids = model.top_word_ids(topic, top_n)
        top_lists[topic] = ids
        interest.update(int(w) for w in ids)
    counter = CooccurrenceCounter(corpus, interest, window=window)
    return float(np.mean([topic_pmi(counter, top_lists[t])
                          for t in scored_topics]))
