"""Token-level classification accuracy and topic alignment.

Sections IV.B and IV.D evaluate models by "the number of correct topic
assignments": the generating topic of every token is known, so a model is
scored by how many tokens it assigns to the right topic.  Labeled models
(Source-LDA, EDA, CTM) are compared through their labels; plain LDA's
anonymous topics are first mapped to ground-truth topics — the paper uses
JS divergence for that mapping, and we additionally provide the optimal
(Hungarian) assignment.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.metrics.divergence import js_divergence_matrix


def correct_assignments(predicted: np.ndarray,
                        truth: np.ndarray) -> int:
    """Count of positions where ``predicted == truth`` (Fig. 8a/b bars)."""
    predicted = np.asarray(predicted)
    truth = np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {predicted.shape} vs {truth.shape}")
    return int((predicted == truth).sum())


def token_accuracy(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of correctly assigned tokens (the Fig. 7 "classification
    %" divided by 100)."""
    predicted = np.asarray(predicted)
    if predicted.size == 0:
        raise ValueError("cannot compute accuracy of zero tokens")
    return correct_assignments(predicted, truth) / predicted.size


def align_topics_by_js(phi_model: np.ndarray,
                       phi_truth: np.ndarray) -> np.ndarray:
    """Map each model topic to its JS-closest ground-truth topic.

    The paper's mapping for unlabeled models: "JS divergence was used to
    map each LDA topic to its best matching Wikipedia topic".  Several
    model topics may map to the same truth topic (it is a nearest-
    neighbour map, not a matching).
    """
    distances = js_divergence_matrix(phi_model, phi_truth)
    return distances.argmin(axis=1)


def align_topics_hungarian(phi_model: np.ndarray,
                           phi_truth: np.ndarray) -> np.ndarray:
    """Optimal one-to-one topic matching minimizing total JS divergence.

    Requires at least as many truth topics as model topics.  Returns
    ``mapping[model_topic] = truth_topic``.
    """
    distances = js_divergence_matrix(phi_model, phi_truth)
    if distances.shape[0] > distances.shape[1]:
        raise ValueError(
            f"cannot 1-to-1 match {distances.shape[0]} model topics to "
            f"{distances.shape[1]} truth topics")
    rows, cols = linear_sum_assignment(distances)
    mapping = np.empty(distances.shape[0], dtype=np.int64)
    mapping[rows] = cols
    return mapping


def map_assignments(assignments: np.ndarray,
                    mapping: np.ndarray) -> np.ndarray:
    """Relabel token assignments through a topic mapping."""
    assignments = np.asarray(assignments, dtype=np.int64)
    mapping = np.asarray(mapping, dtype=np.int64)
    if assignments.size and assignments.max() >= mapping.shape[0]:
        raise ValueError(
            f"assignment {int(assignments.max())} outside mapping of size "
            f"{mapping.shape[0]}")
    return mapping[assignments]


def labeled_accuracy(model_assignments: np.ndarray,
                     model_labels: tuple[str | None, ...],
                     truth_assignments: np.ndarray,
                     truth_labels: tuple[str, ...]) -> float:
    """Accuracy through label strings rather than topic indices.

    Tokens the model assigns to an unlabeled topic are always wrong (they
    claim "no known topic" for a token that has one).
    """
    model_assignments = np.asarray(model_assignments, dtype=np.int64)
    truth_assignments = np.asarray(truth_assignments, dtype=np.int64)
    if model_assignments.shape != truth_assignments.shape:
        raise ValueError(
            f"shape mismatch: {model_assignments.shape} vs "
            f"{truth_assignments.shape}")
    if model_assignments.size == 0:
        raise ValueError("cannot compute accuracy of zero tokens")
    truth_label_array = np.asarray(truth_labels, dtype=object)
    model_label_array = np.asarray(
        [label if label is not None else "\x00unlabeled"
         for label in model_labels], dtype=object)
    predicted = model_label_array[model_assignments]
    actual = truth_label_array[truth_assignments]
    return float((predicted == actual).mean())
