"""Evaluation metrics used across the paper's experiments."""

from repro.metrics.accuracy import (align_topics_by_js,
                                    align_topics_hungarian,
                                    correct_assignments, labeled_accuracy,
                                    map_assignments, token_accuracy)
from repro.metrics.coherence import (CooccurrenceCounter, model_pmi,
                                     topic_pmi)
from repro.metrics.divergence import (LN2, js_divergence,
                                      js_divergence_matrix, kl_divergence,
                                      sorted_theta_js, sorted_theta_js_total)
from repro.metrics.perplexity import (heldout_gibbs_theta,
                                      log_likelihood_importance_sampling,
                                      perplexity_heldout_gibbs,
                                      perplexity_importance_sampling)

__all__ = [
    "CooccurrenceCounter",
    "LN2",
    "align_topics_by_js",
    "align_topics_hungarian",
    "correct_assignments",
    "heldout_gibbs_theta",
    "js_divergence",
    "js_divergence_matrix",
    "kl_divergence",
    "labeled_accuracy",
    "log_likelihood_importance_sampling",
    "map_assignments",
    "model_pmi",
    "perplexity_heldout_gibbs",
    "perplexity_importance_sampling",
    "sorted_theta_js",
    "sorted_theta_js_total",
    "token_accuracy",
    "topic_pmi",
]
