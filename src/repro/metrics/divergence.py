"""Kullback-Leibler and Jensen-Shannon divergence.

JS divergence is the workhorse metric of the paper: it maps LDA topics to
labels (intro case study), measures how far Dirichlet draws stray from
source distributions (Figs. 2-4), scores recovered topics in the graphical
experiment (Fig. 6), and compares document-topic distributions (Fig. 8d/e).
All computations use natural log, so JS divergence lies in ``[0, ln 2]``.
"""

from __future__ import annotations

import numpy as np

LN2 = float(np.log(2.0))


def _validate_distributions(p: np.ndarray, name: str) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if np.any(p < 0):
        raise ValueError(f"{name} has negative entries")
    totals = p.sum(axis=-1)
    if np.any(totals <= 0):
        raise ValueError(f"{name} has a row with no probability mass")
    if not np.allclose(totals, 1.0, atol=1e-6):
        raise ValueError(
            f"{name} rows must sum to 1 (max deviation "
            f"{np.abs(totals - 1.0).max():.3g}); normalize first")
    return p


def kl_divergence(p: np.ndarray, q: np.ndarray) -> np.ndarray | float:
    """``KL(p || q)`` along the last axis, in nats.

    Entries where ``p`` is zero contribute nothing; entries where ``p > 0``
    but ``q == 0`` make the divergence infinite, per the definition.
    """
    p = _validate_distributions(p, "p")
    q = _validate_distributions(q, "q")
    if p.shape[-1] != q.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {p.shape[-1]} vs {q.shape[-1]}")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(p > 0, p / q, 1.0)
        terms = np.where(p > 0, p * np.log(ratio), 0.0)
        terms = np.where((p > 0) & (q == 0), np.inf, terms)
    result = terms.sum(axis=-1)
    return float(result) if np.ndim(result) == 0 else result


def js_divergence(p: np.ndarray, q: np.ndarray) -> np.ndarray | float:
    """Jensen-Shannon divergence along the last axis, in nats.

    ``JS(p, q) = KL(p || m)/2 + KL(q || m)/2`` with ``m = (p + q)/2``.
    Symmetric, bounded by ``ln 2``, and finite even with disjoint supports.
    """
    p = _validate_distributions(p, "p")
    q = _validate_distributions(q, "q")
    if p.shape[-1] != q.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {p.shape[-1]} vs {q.shape[-1]}")
    m = 0.5 * (p + q)
    result = 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)
    return float(result) if np.ndim(result) == 0 else result


def js_divergence_matrix(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Pairwise JS divergence: ``out[i, j] = JS(rows[i], cols[j])``.

    Used for topic-to-label mapping and for Hungarian topic alignment.
    """
    rows = _validate_distributions(np.atleast_2d(rows), "rows")
    cols = _validate_distributions(np.atleast_2d(cols), "cols")
    if rows.shape[1] != cols.shape[1]:
        raise ValueError(
            f"dimension mismatch: {rows.shape[1]} vs {cols.shape[1]}")
    out = np.empty((rows.shape[0], cols.shape[0]))
    for i in range(rows.shape[0]):
        out[i] = js_divergence(rows[i][np.newaxis, :], cols)
    return out


def _pad_columns(matrix: np.ndarray, width: int) -> np.ndarray:
    if matrix.shape[1] == width:
        return matrix
    padded = np.zeros((matrix.shape[0], width))
    padded[:, :matrix.shape[1]] = matrix
    return padded


def sorted_theta_js(theta_a: np.ndarray, theta_b: np.ndarray) -> np.ndarray:
    """Per-document JS divergence between *sorted* topic distributions.

    The Fig. 8(d)/(e) metric: sorting each document's topic probabilities
    in descending order makes the comparison "irrespective to any unknown
    mapping" between the two models' topic spaces.  Distributions with
    different topic counts are zero-padded to a common width.
    """
    theta_a = np.atleast_2d(np.asarray(theta_a, dtype=np.float64))
    theta_b = np.atleast_2d(np.asarray(theta_b, dtype=np.float64))
    if theta_a.shape[0] != theta_b.shape[0]:
        raise ValueError(
            f"document count mismatch: {theta_a.shape[0]} vs "
            f"{theta_b.shape[0]}")
    width = max(theta_a.shape[1], theta_b.shape[1])
    sorted_a = _pad_columns(np.sort(theta_a, axis=1)[:, ::-1], width)
    sorted_b = _pad_columns(np.sort(theta_b, axis=1)[:, ::-1], width)
    # Zero-padding keeps rows normalized but can create disjoint zero
    # tails; JS handles that (it is finite on zeros), no smoothing needed.
    return np.asarray(js_divergence(sorted_a, sorted_b))


def sorted_theta_js_total(theta_a: np.ndarray,
                          theta_b: np.ndarray) -> float:
    """Sum of :func:`sorted_theta_js` over all documents (the bar heights
    of Fig. 8(d)/(e))."""
    return float(sorted_theta_js(theta_a, theta_b).sum())
