"""Held-out perplexity (Section III.C.5a).

Two estimators, following the paper's parameter-selection discussion:

* **importance sampling** (Wallach et al. 2009): ``p(w_d | phi, alpha)`` is
  estimated by averaging the document likelihood over ``theta`` samples
  drawn from the ``Dir(alpha)`` prior — "importance sampling is only a
  function of phi given by Equation 4";
* **held-out Gibbs**: the test documents are sampled against the *frozen*
  training counts using the paper's test-set equations (the ``n + ñ``
  forms), and the document likelihood is read off the resulting
  ``theta-hat``.

Perplexity is ``exp(-sum log p / N_tokens)`` — lower is better.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy.special import logsumexp

from repro.sampling.rng import categorical, ensure_rng
from repro.text.corpus import Corpus

#: Row sums within this tolerance of 1 are accepted as exact.
_PHI_SUM_ATOL = 1e-6
#: Row sums within this looser tolerance are renormalized with a warning
#: — the drift signature of phi snapshots stored in float32 and upcast.
_PHI_RENORM_ATOL = 1e-3


def _validate_phi(phi: np.ndarray) -> np.ndarray:
    phi = np.asarray(phi, dtype=np.float64)
    if phi.ndim != 2:
        raise ValueError(f"phi must be 2-d, got shape {phi.shape}")
    if np.any(phi < 0):
        raise ValueError("phi has negative entries")
    sums = phi.sum(axis=1)
    if not np.allclose(sums, 1.0, rtol=0.0, atol=_PHI_SUM_ATOL):
        if not np.allclose(sums, 1.0, rtol=0.0, atol=_PHI_RENORM_ATOL):
            raise ValueError("phi rows must sum to 1")
        warnings.warn(
            "phi row sums drift from 1 by more than "
            f"{_PHI_SUM_ATOL:g} (max |sum - 1| = "
            f"{float(np.abs(sums - 1.0).max()):.2e}, consistent with a "
            "float32 round-trip); renormalizing rows",
            RuntimeWarning, stacklevel=3)
        phi = phi / sums[:, np.newaxis]
    return phi


def log_likelihood_importance_sampling(
        phi: np.ndarray, corpus: Corpus, alpha: float,
        num_samples: int = 32,
        rng: int | np.random.Generator | None = None) -> float:
    """Total held-out log ``p(w)`` over ``corpus`` via theta sampling.

    For each document: ``log p(w_d) ~= logmeanexp_s sum_n log
    (theta_s . phi[:, w_n])`` with ``theta_s ~ Dir(alpha)``.
    """
    phi = _validate_phi(phi)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = ensure_rng(rng)
    num_topics = phi.shape[0]
    floor = np.finfo(np.float64).tiny
    total = 0.0
    for doc in corpus:
        if len(doc) == 0:
            continue
        word_probs = phi[:, doc.word_ids]              # (T, Nd)
        thetas = rng.dirichlet(np.full(num_topics, alpha),
                               size=num_samples)       # (S, T)
        token_probs = thetas @ word_probs              # (S, Nd)
        log_doc = np.log(np.maximum(token_probs, floor)).sum(axis=1)
        total += float(logsumexp(log_doc) - np.log(num_samples))
    return total


def perplexity_importance_sampling(
        phi: np.ndarray, corpus: Corpus, alpha: float,
        num_samples: int = 32,
        rng: int | np.random.Generator | None = None) -> float:
    """``exp(-log p / N)`` using the importance-sampling estimator."""
    tokens = corpus.num_tokens
    if tokens == 0:
        raise ValueError("cannot compute perplexity of an empty corpus")
    log_p = log_likelihood_importance_sampling(phi, corpus, alpha,
                                               num_samples, rng)
    return float(np.exp(-log_p / tokens))


def heldout_gibbs_theta(phi: np.ndarray, corpus: Corpus, alpha: float,
                        iterations: int = 30,
                        rng: int | np.random.Generator | None = None
                        ) -> np.ndarray:
    """Estimate test-document ``theta`` by Gibbs sampling against fixed phi.

    This is the paper's held-out sampler with the training counts folded
    into phi (the ``n^wi_j + ñ`` numerator divided by its total is exactly
    the training-posterior phi when test counts are small relative to
    training counts — the standard query-sampling treatment).
    """
    phi = _validate_phi(phi)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = ensure_rng(rng)
    num_topics = phi.shape[0]
    theta = np.empty((len(corpus), num_topics))
    for index, doc in enumerate(corpus):
        length = len(doc)
        if length == 0:
            theta[index] = 1.0 / num_topics
            continue
        assignments = rng.integers(0, num_topics, size=length)
        doc_counts = np.bincount(assignments, minlength=num_topics) \
            .astype(np.float64)
        word_probs = phi[:, doc.word_ids].T           # (Nd, T)
        # Burn in the first half, but always accumulate at least the
        # final sweep: with iterations == 1 a burn-in of max(1, n // 2)
        # would exclude every sweep and the function would silently
        # return the prior mean alpha / (length + T * alpha).
        burn_in = min(max(1, iterations // 2), iterations - 1)
        accumulated = np.zeros(num_topics)
        samples = 0
        for iteration in range(iterations):
            for position in range(length):
                topic = assignments[position]
                doc_counts[topic] -= 1.0
                weights = word_probs[position] * (doc_counts + alpha)
                topic = categorical(weights, rng)
                assignments[position] = topic
                doc_counts[topic] += 1.0
            if iteration >= burn_in:
                accumulated += doc_counts
                samples += 1
        mean_counts = accumulated / max(samples, 1)
        theta[index] = (mean_counts + alpha) / (length
                                                + num_topics * alpha)
    return theta


def perplexity_heldout_gibbs(phi: np.ndarray, corpus: Corpus, alpha: float,
                             iterations: int = 30,
                             rng: int | np.random.Generator | None = None
                             ) -> float:
    """Perplexity via the held-out Gibbs ``theta`` estimate."""
    tokens = corpus.num_tokens
    if tokens == 0:
        raise ValueError("cannot compute perplexity of an empty corpus")
    phi = _validate_phi(phi)
    theta = heldout_gibbs_theta(phi, corpus, alpha, iterations, rng)
    floor = np.finfo(np.float64).tiny
    total = 0.0
    for index, doc in enumerate(corpus):
        if len(doc) == 0:
            continue
        token_probs = theta[index] @ phi[:, doc.word_ids]
        total += float(np.log(np.maximum(token_probs, floor)).sum())
    return float(np.exp(-total / tokens))
