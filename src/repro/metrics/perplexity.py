"""Held-out perplexity (Section III.C.5a).

Two estimators, following the paper's parameter-selection discussion:

* **importance sampling** (Wallach et al. 2009): ``p(w_d | phi, alpha)`` is
  estimated by averaging the document likelihood over ``theta`` samples
  drawn from the ``Dir(alpha)`` prior — "importance sampling is only a
  function of phi given by Equation 4";
* **held-out Gibbs**: the test documents are sampled against the *frozen*
  training counts using the paper's test-set equations (the ``n + ñ``
  forms), and the document likelihood is read off the resulting
  ``theta-hat``.

Perplexity is ``exp(-sum log p / N_tokens)`` — lower is better.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from repro.sampling.rng import ensure_rng
from repro.serving.foldin import FoldInEngine, validate_phi
from repro.text.corpus import Corpus

# The validation helper (and its tolerances) moved to
# repro.serving.foldin: the serving engine validates phi once per
# session, and this module shares the same check.
_validate_phi = validate_phi


def log_likelihood_importance_sampling(
        phi: np.ndarray, corpus: Corpus, alpha: float,
        num_samples: int = 32,
        rng: int | np.random.Generator | None = None) -> float:
    """Total held-out log ``p(w)`` over ``corpus`` via theta sampling.

    For each document: ``log p(w_d) ~= logmeanexp_s sum_n log
    (theta_s . phi[:, w_n])`` with ``theta_s ~ Dir(alpha)``.
    """
    phi = _validate_phi(phi, stacklevel=3)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = ensure_rng(rng)
    num_topics = phi.shape[0]
    floor = np.finfo(np.float64).tiny
    total = 0.0
    for doc in corpus:
        if len(doc) == 0:
            continue
        word_probs = phi[:, doc.word_ids]              # (T, Nd)
        thetas = rng.dirichlet(np.full(num_topics, alpha),
                               size=num_samples)       # (S, T)
        token_probs = thetas @ word_probs              # (S, Nd)
        log_doc = np.log(np.maximum(token_probs, floor)).sum(axis=1)
        total += float(logsumexp(log_doc) - np.log(num_samples))
    return total


def perplexity_importance_sampling(
        phi: np.ndarray, corpus: Corpus, alpha: float,
        num_samples: int = 32,
        rng: int | np.random.Generator | None = None) -> float:
    """``exp(-log p / N)`` using the importance-sampling estimator."""
    tokens = corpus.num_tokens
    if tokens == 0:
        raise ValueError("cannot compute perplexity of an empty corpus")
    # Validate here so a renormalization warning names the caller of
    # *this* function (the inner validate would name this module); the
    # re-check inside log_likelihood_importance_sampling then passes
    # silently on the already-normalized matrix.
    phi = _validate_phi(phi, stacklevel=3)
    log_p = log_likelihood_importance_sampling(phi, corpus, alpha,
                                               num_samples, rng)
    return float(np.exp(-log_p / tokens))


def heldout_gibbs_theta(phi: np.ndarray, corpus: Corpus, alpha: float,
                        iterations: int = 30,
                        rng: int | np.random.Generator | None = None
                        ) -> np.ndarray:
    """Estimate test-document ``theta`` by Gibbs sampling against fixed phi.

    This is the paper's held-out sampler with the training counts folded
    into phi (the ``n^wi_j + ñ`` numerator divided by its total is exactly
    the training-posterior phi when test counts are small relative to
    training counts — the standard query-sampling treatment).

    Delegates to the exact lane of
    :class:`~repro.serving.foldin.FoldInEngine` — phi is validated once
    per call and the per-document gather/weight buffers are reused,
    while the sampled chain stays bit-identical to the original
    per-token loop on any fixed seed (pinned by
    ``tests/test_serving.py``).
    """
    # Validate here (naming the caller's line if phi drifted) and build
    # the engine on the validated matrix directly, skipping its second
    # O(T * V) pass.
    phi = _validate_phi(phi, stacklevel=3)
    engine = FoldInEngine(phi, alpha, iterations=iterations,
                          mode="exact", validate=False)
    return engine.theta([doc.word_ids for doc in corpus],
                        rng=ensure_rng(rng))


def perplexity_heldout_gibbs(phi: np.ndarray, corpus: Corpus, alpha: float,
                             iterations: int = 30,
                             rng: int | np.random.Generator | None = None
                             ) -> float:
    """Perplexity via the held-out Gibbs ``theta`` estimate."""
    tokens = corpus.num_tokens
    if tokens == 0:
        raise ValueError("cannot compute perplexity of an empty corpus")
    phi = _validate_phi(phi, stacklevel=3)
    # phi is already validated; build the fold-in engine directly so the
    # likelihood read-off below shares the same (possibly renormalized)
    # matrix without a second O(T * V) validation pass.
    engine = FoldInEngine(phi, alpha, iterations=iterations, mode="exact",
                          validate=False)
    theta = engine.theta([doc.word_ids for doc in corpus],
                        rng=ensure_rng(rng))
    floor = np.finfo(np.float64).tiny
    total = 0.0
    for index, doc in enumerate(corpus):
        if len(doc) == 0:
            continue
        token_probs = theta[index] @ phi[:, doc.word_ids]
        total += float(np.log(np.maximum(token_probs, floor)).sum())
    return float(np.exp(-total / tokens))
