"""Shared machine-readable verdict-report shape.

Both CI gates — the perf gate (``benchmarks/compare.py --json``) and
the invariant linter (``python -m repro.analysis --json``) — emit the
same report skeleton so CI consumes one structure::

    {
      "schema": "<tool schema id>",
      "schema_version": N,
      "verdicts": [{"name": ..., "metric": ..., "verdict": ..., ...}],
      "skipped":  [{"name": ..., "reason": ...}],
      "exit_code": 0 | 1 | 2,
      ... tool-specific extras ...
    }

``verdicts`` rows always carry ``name`` (what was judged), ``metric``
(which check judged it) and ``verdict`` (the outcome keyword); tools
add their own value fields per row.  ``skipped`` rows are the findings
deliberately *not* judged — unmeasured bench series there, ``noqa``-
waived violations here — each with a human-readable reason, so waivers
never silently vanish from the machine-readable record.
"""

from __future__ import annotations

import json
from pathlib import Path


def verdict_row(name: str, metric: str, verdict: str, **fields) -> dict:
    """One judged finding; ``fields`` are the tool's value columns."""
    row = {"name": name, "metric": metric, "verdict": verdict}
    row.update(fields)
    return row


def skipped_row(name: str, reason: str) -> dict:
    """One finding deliberately not judged, with its reason."""
    return {"name": name, "reason": reason}


def build_report(schema: str, schema_version: int, *,
                 verdicts: list[dict], skipped: list[dict],
                 exit_code: int, **extra) -> dict:
    """The shared report skeleton plus tool-specific ``extra`` keys."""
    report = {
        "schema": schema,
        "schema_version": schema_version,
        "verdicts": verdicts,
        "skipped": skipped,
        "exit_code": exit_code,
    }
    report.update(extra)
    return report


def write_report(path: str | Path, report: dict) -> None:
    """Write ``report`` as stable (sorted, indented) JSON."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
