"""``python -m repro.analysis``: lint the tree, exit nonzero on findings.

Usage::

    PYTHONPATH=src python -m repro.analysis src/repro
    PYTHONPATH=src python -m repro.analysis src/repro examples \
        --json analysis_report.json
    PYTHONPATH=src python -m repro.analysis --list-rules
    PYTHONPATH=src python -m repro.analysis src/repro --select RPR001,RPR002

Exit codes: 0 clean, 1 violations found, 2 usage error (unknown rule
code, no python files under the given paths).  ``--json`` writes the
verdicts in the shared report shape of :mod:`repro.analysis.report`
(schema ``repro.analysis/report``) — the same skeleton the perf gate's
``compare.py --json`` emits — on every outcome.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.core import (LintResult, Rule, all_rules,
                                 lint_paths, resolve_rules)
from repro.analysis.report import (build_report, skipped_row,
                                   verdict_row, write_report)

#: Schema of the ``--json`` report; bump on layout changes.
ANALYSIS_SCHEMA = "repro.analysis/report"
ANALYSIS_SCHEMA_VERSION = 1

#: Default lint scope when no paths are given (resolved against cwd —
#: the documented invocation runs from the repo root).
DEFAULT_SCOPE = "src/repro"


def build_analysis_report(result: LintResult, rules: tuple[Rule, ...],
                          exit_code: int) -> dict:
    """The linter's verdict report in the shared gate shape: one
    ``verdicts`` row per standing violation, one ``skipped`` row per
    ``noqa``-waived finding (reason = the pragma's justification)."""
    verdicts = [
        verdict_row(name=violation.location, metric=violation.code,
                    verdict="violation", message=violation.message)
        for violation in result.violations]
    skipped = [
        skipped_row(name=entry.violation.location,
                    reason=f"noqa[{entry.violation.code}]: "
                           f"{entry.reason}")
        for entry in result.suppressed]
    return build_report(
        ANALYSIS_SCHEMA, ANALYSIS_SCHEMA_VERSION,
        verdicts=verdicts, skipped=skipped, exit_code=exit_code,
        files=result.files, rules=[rule.code for rule in rules])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Machine-check the repo's determinism, telemetry "
                    "and concurrency contracts (rules RPR001-RPR006).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help=f"files or directories to lint "
                             f"(default: {DEFAULT_SCOPE})")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--json", type=Path, default=None,
                        dest="json_path", metavar="PATH",
                        help="also write the verdicts as machine-"
                             "readable JSON to PATH")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return 0

    try:
        rules = resolve_rules(
            None if args.select is None
            else [code.strip() for code in args.select.split(",")
                  if code.strip()])
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    paths = args.paths or [Path(DEFAULT_SCOPE)]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"path does not exist: {path}", file=sys.stderr)
        return 2
    result = lint_paths(paths, rules)
    if result.files == 0:
        print("no python files found under the given paths",
              file=sys.stderr)
        return 2

    exit_code = 1 if result.violations else 0
    if args.json_path is not None:
        write_report(args.json_path,
                     build_analysis_report(result, rules, exit_code))
    for violation in result.violations:
        print(violation)
    waived = len(result.suppressed)
    summary = (f"{len(result.violations)} violation(s), {waived} "
               f"waived, {result.files} file(s), "
               f"{len(rules)} rule(s)")
    if result.violations:
        print(summary, file=sys.stderr)
    else:
        print(f"clean: {summary}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
