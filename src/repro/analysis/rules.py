"""The repo's contract rules, ``RPR001``–``RPR006``.

Each rule encodes an invariant that has been violated at least once
(and caught only at runtime or in review) or that the ROADMAP's
multi-worker serving direction multiplies the blast radius of.  The
class registries below (:data:`FROZEN_CLASSES`,
:data:`WORKER_SPEC_CLASSES`) are the linter's knowledge of which
classes carry which contract — extend them when a new engine or worker
spec joins the serving path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (ModuleContext, Rule, Violation,
                                 register_rule)

#: Classes that must stay frozen after construction: instances are
#: shared across threads and forked worker processes, so any
#: post-``__init__`` ``self.<attr>`` rebind is the PR 4 shared-scratch
#: bug class.  Maps class name -> attributes deliberately left mutable
#: (``FoldInEngine.recorder`` is reset to the null recorder in forked
#: workers — the one documented exception).
FROZEN_CLASSES: dict[str, frozenset[str]] = {
    "FoldInEngine": frozenset({"recorder"}),
    "EngineSpec": frozenset(),
    "HedgePolicy": frozenset(),
    "WorkerFault": frozenset(),
    "FoldInTable": frozenset(),
    "LdaDenseTable": frozenset(),
    "EdaDenseTable": frozenset(),
    "SourceDenseTable": frozenset(),
    "SourceBijectiveTable": frozenset(),
    "AliasMHTable": frozenset(),
}

#: Classes pickled into worker processes (pool initializers, specs).
#: They must not carry attributes bound to OS resources — open file
#: handles, ``mmap`` objects, ``np.load(..., mmap_mode=...)`` maps —
#: unless they define ``__getstate__``/``__reduce__`` to strip them,
#: or the fork-shipping path breaks for every non-fork start method.
WORKER_SPEC_CLASSES: frozenset[str] = frozenset({
    "EngineSpec",
    "HedgePolicy",
    "ShardedPhi",
    "WorkerFault",
})

#: The one module allowed to construct generators directly; everything
#: else routes through its helpers so streams stay chunked and
#: per-document (the PR 4/6 bit-identity foundation).
RNG_HELPER_MODULE = "repro/sampling/rng.py"

#: Legacy stateful ``np.random.<fn>`` module-level API (global hidden
#: stream — one call silently breaks every pinned-seed contract).
_NP_STATEFUL = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "beta", "gamma", "binomial",
    "poisson", "exponential", "multinomial", "dirichlet", "bytes",
    "random_integers", "get_state", "set_state",
})

#: Recorder methods whose presence inside a sampling loop is the
#: telemetry-granularity violation (instrumentation is per batch/sweep,
#: never per draw).
_RECORDER_METHODS = frozenset({"count", "gauge", "observe", "span"})

#: Generator methods that advance an RNG cursor.
_RNG_METHODS = frozenset({
    "random", "integers", "uniform", "normal", "standard_normal",
    "choice", "shuffle", "permutation", "exponential", "beta",
    "gamma", "binomial", "poisson", "multinomial", "dirichlet",
    "bytes", "spawn",
})

_INIT_METHODS = ("__init__", "__post_init__", "__new__")


def _attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; ``None`` for non-name bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _walk_outside_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _self_assignments(method: ast.AST) -> Iterator[tuple[ast.stmt, str]]:
    """``(statement, attr)`` for every ``self.<attr>`` (re)bind in a
    method body, including tuple unpacking and augmented assignment."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            for element in ast.walk(target):
                if (isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"):
                    yield node, element.attr


@register_rule
class GlobalRngRule(Rule):
    """RPR001: all randomness flows through ``repro.sampling.rng``."""

    code = "RPR001"
    name = "global-rng-ban"
    rationale = ("hidden module-level RNG state breaks the chunked "
                 "per-document stream bit-identity contract")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        in_helper = ctx.is_module(RNG_HELPER_MODULE)
        imported_random = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        imported_random = True
                        yield self.violation(
                            ctx, node,
                            "stdlib `random` is a global hidden stream; "
                            "draw through repro.sampling.rng helpers")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    imported_random = True
                    yield self.violation(
                        ctx, node,
                        "stdlib `random` is a global hidden stream; "
                        "draw through repro.sampling.rng helpers")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            if (len(chain) == 3 and chain[0] in ("np", "numpy")
                    and chain[1] == "random"):
                fn = chain[2]
                if fn in _NP_STATEFUL:
                    yield self.violation(
                        ctx, node,
                        f"np.random.{fn} uses numpy's global stream; "
                        "take an explicit Generator (ensure_rng / "
                        "document_rng)")
                elif fn == "default_rng" and not in_helper:
                    yield self.violation(
                        ctx, node, self._default_rng_message(node))
            elif (chain == ("default_rng",) and not in_helper):
                yield self.violation(
                    ctx, node, self._default_rng_message(node))
            elif (len(chain) == 2 and chain[0] == "random"
                    and imported_random):
                yield self.violation(
                    ctx, node,
                    f"random.{chain[1]} draws from the stdlib global "
                    "stream; draw through repro.sampling.rng helpers")

    @staticmethod
    def _default_rng_message(node: ast.Call) -> str:
        if not node.args and not node.keywords:
            return ("seedless default_rng() is non-deterministic; "
                    "route through repro.sampling.rng.ensure_rng")
        return ("construct generators through repro.sampling.rng "
                "(ensure_rng / document_rng), not default_rng directly, "
                "so streams stay chunked and per-document")


@register_rule
class WarningStacklevelRule(Rule):
    """RPR002: every ``warnings.warn`` names its caller explicitly."""

    code = "RPR002"
    name = "warning-discipline"
    rationale = ("a warning without stacklevel points at library "
                 "internals instead of the operator's call site")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        bare_warn = any(
            isinstance(node, ast.ImportFrom) and node.module == "warnings"
            and any(alias.name == "warn" for alias in node.names)
            for node in ast.walk(ctx.tree))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain == ("warnings", "warn") or \
                    (bare_warn and chain == ("warn",)):
                has_stacklevel = any(
                    keyword.arg == "stacklevel" or keyword.arg is None
                    for keyword in node.keywords)
                if not has_stacklevel:
                    yield self.violation(
                        ctx, node,
                        "warnings.warn without an explicit stacklevel=; "
                        "point the warning at the caller's line")


@register_rule
class FrozenEngineMutationRule(Rule):
    """RPR003: frozen serving classes never rebind state post-init."""

    code = "RPR003"
    name = "frozen-engine-mutation"
    rationale = ("engines and kernel tables are shared across threads "
                 "and forked workers; post-init mutation is the PR 4 "
                 "shared-scratch reentrancy bug class")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name in FROZEN_CLASSES):
                continue
            allowed = FROZEN_CLASSES[node.name]
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name in _INIT_METHODS:
                    continue
                for statement, attr in _self_assignments(method):
                    if attr in allowed:
                        continue
                    yield self.violation(
                        ctx, statement,
                        f"{node.name} is frozen after __init__ but "
                        f"{method.name} assigns self.{attr}; move the "
                        "state into per-caller scratch")


@register_rule
class NopythonLaneRule(Rule):
    """RPR004: ``@njit`` lanes stay cacheable and nopython-safe."""

    code = "RPR004"
    name = "nopython-lane-safety"
    rationale = ("compiled lanes must declare cache=True (cold-start "
                 "cost) and avoid constructs banned from nopython "
                 "mode in this repo")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            decorator = self._njit_decorator(node)
            if decorator is None:
                continue
            if not self._declares_cache(decorator):
                yield self.violation(
                    ctx, node,
                    f"@njit function {node.name} must declare "
                    "cache=True (compiled lanes pay cold-start "
                    "compilation in every worker otherwise)")
            if node.args.kwarg is not None:
                yield self.violation(
                    ctx, node,
                    f"@njit function {node.name} takes **"
                    f"{node.args.kwarg.arg}; nopython lanes use flat "
                    "positional signatures")
            for sub in ast.walk(node):
                if isinstance(sub, ast.JoinedStr):
                    yield self.violation(
                        ctx, sub,
                        f"f-string inside @njit function {node.name}; "
                        "string formatting is banned from compiled "
                        "lanes")
                elif isinstance(sub, ast.Try):
                    yield self.violation(
                        ctx, sub,
                        f"try/except inside @njit function "
                        f"{node.name}; compiled lanes signal via "
                        "sentinel returns, not exceptions")
                elif (isinstance(sub, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.Lambda))
                        and sub is not node):
                    name = getattr(sub, "name", "<lambda>")
                    yield self.violation(
                        ctx, sub,
                        f"nested function {name} inside @njit "
                        f"function {node.name}; closures over mutable "
                        "state do not compile predictably")

    @staticmethod
    def _njit_decorator(node: ast.AST) -> ast.expr | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            chain = _attr_chain(target)
            if chain is not None and chain[-1] == "njit":
                return decorator
        return None

    @staticmethod
    def _declares_cache(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        return any(keyword.arg == "cache"
                   and isinstance(keyword.value, ast.Constant)
                   and keyword.value.value is True
                   for keyword in decorator.keywords)


@register_rule
class TelemetryPurityRule(Rule):
    """RPR005: telemetry defaults to the null recorder and never rides
    inside an RNG-advancing loop."""

    code = "RPR005"
    name = "telemetry-purity"
    rationale = ("recording must be optional (None -> NULL_RECORDER "
                 "via ensure_recorder) and per-batch, never per-draw — "
                 "the bit-identity and <= 5% overhead contracts")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, (ast.For, ast.While)):
                yield from self._check_loop(ctx, node)

    # -------------------------------------------------- recorder params
    def _check_signature(self, ctx: ModuleContext,
                         node: ast.FunctionDef) -> Iterator[Violation]:
        default = self._recorder_default(node.args)
        if default is None:
            return
        if not self._is_null_default(default):
            yield self.violation(
                ctx, default,
                f"{node.name}: recorder= must default to None or "
                "NULL_RECORDER so instrumentation stays opt-in")
        if self._is_stub(node):
            return
        if not self._routes_recorder(node):
            yield self.violation(
                ctx, node,
                f"{node.name}: recorder parameter is neither coerced "
                "via ensure_recorder nor forwarded to one that does")

    @staticmethod
    def _recorder_default(args: ast.arguments) -> ast.expr | None:
        positional = list(args.posonlyargs) + list(args.args)
        defaults = list(args.defaults)
        for arg, default in zip(reversed(positional),
                                reversed(defaults)):
            if arg.arg == "recorder":
                return default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == "recorder" and default is not None:
                return default
        return None

    @staticmethod
    def _is_null_default(default: ast.expr) -> bool:
        if isinstance(default, ast.Constant) and default.value is None:
            return True
        chain = _attr_chain(default)
        return chain is not None and chain[-1] == "NULL_RECORDER"

    @staticmethod
    def _is_stub(node: ast.FunctionDef) -> bool:
        body = node.body
        if body and isinstance(body[0], ast.Expr) \
                and isinstance(body[0].value, ast.Constant):
            body = body[1:]
        return all(isinstance(statement, (ast.Pass, ast.Raise))
                   or (isinstance(statement, ast.Expr)
                       and isinstance(statement.value, ast.Constant))
                   for statement in body) or not body

    @staticmethod
    def _routes_recorder(node: ast.FunctionDef) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = _attr_chain(sub.func)
            if chain is not None and chain[-1] == "ensure_recorder":
                return True
            forwarded = any(isinstance(arg, ast.Name)
                            and arg.id == "recorder"
                            for arg in sub.args)
            forwarded = forwarded or any(
                isinstance(keyword.value, ast.Name)
                and keyword.value.id == "recorder"
                for keyword in sub.keywords)
            if forwarded:
                return True
        return False

    # ----------------------------------------------------- loop purity
    def _check_loop(self, ctx: ModuleContext,
                    loop: ast.For | ast.While) -> Iterator[Violation]:
        body = loop.body + loop.orelse
        recorder_calls: list[ast.Call] = []
        advances_rng = False
        for node in body:
            for sub in self._walk_statement(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if not isinstance(func, ast.Attribute):
                    continue
                base = _attr_chain(func.value)
                if base is None:
                    continue
                if (func.attr in _RECORDER_METHODS
                        and base[-1] == "recorder"):
                    recorder_calls.append(sub)
                elif (func.attr in _RNG_METHODS
                        and (base[-1] == "rng"
                             or base[-1].endswith("_rng"))):
                    advances_rng = True
        if advances_rng:
            for call in recorder_calls:
                yield self.violation(
                    ctx, call,
                    "recorder call inside a loop that advances an RNG "
                    "stream; hoist instrumentation out of the sampling "
                    "loop (record per batch/sweep)")

    @staticmethod
    def _walk_statement(node: ast.AST) -> Iterator[ast.AST]:
        yield node
        # A nested def/lambda is its own timing domain: an rng advance
        # inside it does not pair with recorder calls in this loop.
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            yield from _walk_outside_functions(node)


@register_rule
class ForkShippingRule(Rule):
    """RPR006: worker-spec classes never pickle OS resources."""

    code = "RPR006"
    name = "fork-shipping-safety"
    rationale = ("specs cross the process boundary; an attribute bound "
                 "to an open file / mmap breaks every non-fork start "
                 "method unless __getstate__ strips it")

    _PICKLE_HOOKS = frozenset({"__getstate__", "__reduce__",
                               "__reduce_ex__"})

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name in WORKER_SPEC_CLASSES):
                continue
            if any(isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))
                   and method.name in self._PICKLE_HOOKS
                   for method in node.body):
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                for statement, attr in _self_assignments(method):
                    resource = self._resource_call(statement)
                    if resource is None:
                        continue
                    yield self.violation(
                        ctx, statement,
                        f"{node.name}.{attr} is assigned from "
                        f"{resource} but {node.name} defines no "
                        "__getstate__; the spec cannot cross a "
                        "non-fork process boundary")

    @staticmethod
    def _resource_call(statement: ast.stmt) -> str | None:
        for sub in ast.walk(statement):
            if not isinstance(sub, ast.Call):
                continue
            chain = _attr_chain(sub.func)
            if chain is None:
                continue
            if chain == ("open",):
                return "open(...)"
            if chain[0] == "mmap":
                return f"{'.'.join(chain)}(...)"
            if (len(chain) == 2 and chain[0] in ("np", "numpy")
                    and chain[1] == "load"):
                mmap_kw = next(
                    (keyword for keyword in sub.keywords
                     if keyword.arg == "mmap_mode"), None)
                if mmap_kw is not None and not (
                        isinstance(mmap_kw.value, ast.Constant)
                        and mmap_kw.value.value is None):
                    return "np.load(..., mmap_mode=...)"
        return None
