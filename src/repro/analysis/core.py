"""Linter core: violations, the rule registry, ``noqa`` pragmas, runners.

The repo's correctness rests on a handful of hand-maintained contracts
(chunked per-document RNG streams, telemetry purity, frozen serving
engines, nopython-safe compiled lanes) that historically were enforced
only by runtime tests and review.  :mod:`repro.analysis` turns them
into machine-checked invariants: each contract is a :class:`Rule` with
a stable ``RPRxxx`` code, registered in a module-level registry, run
over the AST of every file in scope.

Suppression
-----------
A violation is waived by a pragma on its reported line::

    warnings.warn(msg, ResourceWarning)  # repro: noqa[RPR002] reason

The pragma names the exact code(s) it waives (``noqa[RPR001,RPR002]``
for several); text after the bracket is the justification, surfaced in
the ``--json`` report's ``skipped`` section so waivers stay auditable.
A blanket, code-less ``noqa`` is deliberately not supported.
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Code reported for files that fail to parse (not a registered rule:
#: it cannot be suppressed or deselected — a syntax error in the tree
#: is never acceptable).
PARSE_ERROR_CODE = "RPR000"

#: ``# repro: noqa[RPR002]`` / ``# repro: noqa[RPR001, RPR004]``; any
#: trailing text is the waiver's justification.
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"\s*(?P<reason>.*)$")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a contract broken at ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def __str__(self) -> str:
        return f"{self.location}: {self.code} {self.message}"


@dataclass(frozen=True, order=True)
class Suppressed:
    """A violation waived by a ``noqa`` pragma, with its justification."""

    violation: Violation
    reason: str


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule sees for one file."""

    path: str
    tree: ast.Module
    lines: tuple[str, ...]

    def is_module(self, *tail: str) -> bool:
        """Whether this file is one of the given repo modules, named by
        trailing path parts (``ctx.is_module("sampling", "rng.py")``)."""
        parts = Path(self.path).parts
        return any(parts[-len(t):] == t
                   for t in (tuple(Path(piece).parts) for piece in tail))


class Rule(ABC):
    """One machine-checked invariant.

    Subclasses define the stable ``code`` (``RPRxxx``), a short
    ``name`` and one-line ``rationale``, and implement :meth:`check`
    yielding :class:`Violation` rows for one module.  Register
    instances with :func:`register_rule`.
    """

    code: str
    name: str
    rationale: str

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        ...

    def violation(self, ctx: ModuleContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=ctx.path, line=node.lineno,
                         col=node.col_offset + 1, code=self.code,
                         message=message)


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Registered rules, ordered by code."""
    return tuple(rule for _, rule in sorted(_RULES.items()))


def resolve_rules(select: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """The rules to run: all of them, or the ``select``-ed codes."""
    if select is None:
        return all_rules()
    codes = list(select)
    unknown = sorted(set(codes) - set(_RULES))
    if unknown:
        known = ", ".join(sorted(_RULES))
        raise KeyError(
            f"unknown rule code(s) {', '.join(unknown)}; known: {known}")
    return tuple(_RULES[code] for code in sorted(set(codes)))


def _noqa_on(line: str) -> tuple[frozenset[str], str]:
    """The codes waived on one physical line, plus the justification."""
    match = _NOQA_PATTERN.search(line)
    if match is None:
        return frozenset(), ""
    codes = frozenset(code.strip()
                      for code in match.group("codes").split(","))
    return codes, match.group("reason").strip(" -—#").strip()


@dataclass(frozen=True)
class LintResult:
    """Violations that stand, and the ones waived by pragmas."""

    violations: tuple[Violation, ...]
    suppressed: tuple[Suppressed, ...]
    files: int

    @property
    def clean(self) -> bool:
        return not self.violations


def lint_source(source: str, path: str,
                rules: Sequence[Rule] | None = None) -> LintResult:
    """Run ``rules`` (default: all registered) over one file's text."""
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        violation = Violation(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {exc.msg}")
        return LintResult((violation,), (), files=1)
    lines = tuple(source.splitlines())
    ctx = ModuleContext(path=path, tree=tree, lines=lines)
    kept: list[Violation] = []
    waived: list[Suppressed] = []
    for rule in rules:
        for violation in rule.check(ctx):
            line_text = (lines[violation.line - 1]
                         if 0 < violation.line <= len(lines) else "")
            codes, reason = _noqa_on(line_text)
            if violation.code in codes:
                waived.append(Suppressed(
                    violation, reason or "waived by pragma"))
            else:
                kept.append(violation)
    return LintResult(tuple(sorted(kept)), tuple(sorted(waived)), files=1)


def lint_file(path: Path,
              rules: Sequence[Rule] | None = None) -> LintResult:
    return lint_source(path.read_text(), str(path), rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """The ``.py`` files under ``paths`` (files pass through; directories
    recurse), skipping hidden directories and ``__pycache__``."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(part == "__pycache__" or part.startswith(".")
                   for part in relative.parts):
                continue
            yield candidate


def lint_paths(paths: Iterable[Path],
               rules: Sequence[Rule] | None = None) -> LintResult:
    """Lint every python file under ``paths``; one merged result."""
    violations: list[Violation] = []
    suppressed: list[Suppressed] = []
    files = 0
    for file_path in iter_python_files(paths):
        result = lint_file(file_path, rules)
        violations.extend(result.violations)
        suppressed.extend(result.suppressed)
        files += 1
    return LintResult(tuple(sorted(violations)),
                      tuple(sorted(suppressed)), files=files)
