"""AST-based invariant linter for the repo's own contracts.

Eight PRs of determinism, telemetry and concurrency discipline live in
conventions no generic linter knows: RNG draws flow through the
chunked per-document streams of :mod:`repro.sampling.rng`, serving
warnings name their caller, engines freeze after ``__init__``,
compiled ``@njit`` lanes stay nopython-safe, telemetry never touches
the RNG stream, and worker specs never pickle OS resources.  This
package machine-checks them:

======  ======================  =======================================
Code    Name                    Contract
======  ======================  =======================================
RPR001  global-rng-ban          no ``np.random.<fn>`` global state, no
                                stdlib ``random``, no direct
                                ``default_rng`` outside
                                ``repro.sampling.rng``
RPR002  warning-discipline      every ``warnings.warn`` passes an
                                explicit ``stacklevel=``
RPR003  frozen-engine-mutation  registered frozen classes never assign
                                ``self.<attr>`` outside ``__init__``
RPR004  nopython-lane-safety    ``@njit`` lanes declare ``cache=True``
                                and avoid f-strings, ``**kwargs``,
                                ``try/except`` and closures
RPR005  telemetry-purity        ``recorder=`` defaults to ``None`` and
                                routes through ``ensure_recorder``; no
                                recorder call inside an RNG-advancing
                                loop
RPR006  fork-shipping-safety    worker-spec classes carry no OS-
                                resource attributes without
                                ``__getstate__``
======  ======================  =======================================

Run it with ``python -m repro.analysis src/repro`` (see
:mod:`repro.analysis.cli`); suppress a deliberate waiver with
``# repro: noqa[RPRxxx] justification`` on the flagged line.  The
tier-1 test ``tests/test_analysis_clean.py`` keeps ``src/repro`` at
zero violations.
"""

from repro.analysis.core import (LintResult, ModuleContext, Rule,
                                 Suppressed, Violation, all_rules,
                                 lint_file, lint_paths, lint_source,
                                 register_rule, resolve_rules)
# Importing the rules module populates the registry.
from repro.analysis import rules as _rules  # noqa: F401
from repro.analysis.rules import (FROZEN_CLASSES, RNG_HELPER_MODULE,
                                  WORKER_SPEC_CLASSES)

__all__ = [
    "FROZEN_CLASSES",
    "LintResult",
    "ModuleContext",
    "RNG_HELPER_MODULE",
    "Rule",
    "Suppressed",
    "Violation",
    "WORKER_SPEC_CLASSES",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "resolve_rules",
]
