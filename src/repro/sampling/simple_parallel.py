"""Algorithm 3 — simple parallel sampling.

The paper's second parallel sampler reduces context switches relative to the
prefix-sums scan: each of the ``P`` parallel units computes a *local*
cumulative sum over its contiguous block of the probability vector, the
block totals are combined serially ("add the end values together"), and the
per-block offsets are then added back in parallel.  One barrier instead of
``2 lg T``, same ``O(Max[T/P, P])`` time, identical cumulative sums.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.parallel import WorkerPool, chunk_bounds
from repro.sampling.scans import ScanStrategy


def blocked_inclusive_scan(values: np.ndarray, blocks: int,
                           pool: WorkerPool | None = None) -> np.ndarray:
    """Inclusive prefix sums via block-local scans plus offset fix-up.

    ``blocks`` plays the role of ``P`` in Algorithm 3.  When ``pool`` is
    given the block-local scans and offset additions execute on its worker
    threads; otherwise they run sequentially (still exercising the exact
    same arithmetic decomposition).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-d array, got shape {values.shape}")
    if blocks < 1:
        raise ValueError(f"blocks must be >= 1, got {blocks}")
    n = values.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    bounds = chunk_bounds(n, blocks)
    out = np.empty_like(values)

    def _local_scan(_segment: np.ndarray, index_lo: int,
                    index_hi: int) -> None:
        for block_index in range(index_lo, index_hi):
            lo, hi = bounds[block_index]
            np.cumsum(values[lo:hi], out=out[lo:hi])

    if pool is not None:
        pool.run_chunked(_local_scan, len(bounds))
    else:
        _local_scan(None, 0, len(bounds))

    # The single serial step: combine block totals into running offsets.
    ends = np.array([out[hi - 1] for _, hi in bounds])
    offsets = np.concatenate(([0.0], np.cumsum(ends)[:-1]))

    def _apply_offsets(_segment: np.ndarray, index_lo: int,
                       index_hi: int) -> None:
        for block_index in range(index_lo, index_hi):
            lo, hi = bounds[block_index]
            out[lo:hi] += offsets[block_index]

    if pool is not None:
        pool.run_chunked(_apply_offsets, len(bounds))
    else:
        _apply_offsets(None, 0, len(bounds))
    return out


class SimpleParallelScan(ScanStrategy):
    """Scan strategy backed by :func:`blocked_inclusive_scan`."""

    def __init__(self, blocks: int = 4,
                 pool: WorkerPool | None = None) -> None:
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        self._blocks = blocks
        self._pool = pool

    def inclusive_scan(self, weights: np.ndarray) -> np.ndarray:
        return blocked_inclusive_scan(weights, self._blocks,
                                      pool=self._pool)
