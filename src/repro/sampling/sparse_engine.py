"""The sparse sweep engine: SparseLDA-style bucketed topic draws.

The fast engine (:mod:`repro.sampling.fast_engine`) removed the Python
object churn and the redundant lambda-grid arithmetic from the reference
sweep, but its per-token work is still ``O(T)``: every token materializes
the full weight vector and cumulative-sums it, even though all but a
handful of entries are identical token to token.

This module removes the ``O(T)`` walk itself, following the bucket
decomposition of SparseLDA (Yao, Mimno & McCallum, KDD 2009).  The LDA
weight of Equation 2 splits into three non-negative buckets::

    (nw + b)(nd + a)      a * b            b * nd         nw * (nd + a)
    ----------------  =  --------    +    --------    +   -------------
       nt + V * b        nt + V*b         nt + V*b           nt + V*b

                         "s": smoothing   "r": document   "q": word
                         (all T topics,   (nonzero        (nonzero
                         scalar mass      nd[d] topics)   nw[w] topics)
                         maintained
                         incrementally)

A uniform draw is located bucket-first: only when it lands in the
smoothing bucket (whose mass is tiny for realistic ``alpha``/``beta``)
does an ``O(T)`` scan happen; the common case touches only the ``O(nnz)``
nonzero topics of the current document row and word column.  The same
treatment applies to the fixed-phi EDA kernel (document bucket over
``nd[d]`` plus a precomputed per-word prior mass) and to the Source-LDA
kernel, whose ``nw * C + D`` lambda-integration caches (PR 1, see
:mod:`repro.core.kernels`) fold into the word bucket while the dense
``D`` term splits into a *floor* bucket (the epsilon-smoothed prior mass
shared by every word absent from a source article) plus a sparse
per-word correction over the article vocabularies.

Exactness contract: the bucket decomposition is algebraically exact but
*reassociates* the per-topic weight sums, so — unlike the fast engine —
the sparse engine is not draw-for-draw identical to the reference: a
uniform draw maps to a bucket-major partition of the probability mass
instead of the topic-major one.  The per-token conditional distribution
is identical up to floating-point reassociation (pinned to ~1e-9 by the
decomposition oracle in ``tests/test_sparse_engine.py``), and chain-level
agreement is pinned there by distributional checks.  Kernels without a
:meth:`~repro.sampling.gibbs.TopicWeightKernel.sparse_path` (CTM, custom
kernels) fall back to the fast engine and therefore remain draw-for-draw
identical to the reference.

The engine consumes the RNG stream exactly like the other engines (one
pre-drawn uniform per token, chunked), so fallback kernels reproduce the
reference chain byte-for-byte.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sampling.fast_engine import FastSweepEngine
from repro.sampling.scans import (ScanStrategy, SerialScan,
                                  last_positive_index)
from repro.sampling.state import GibbsState


class TopicSet:
    """Nonzero-topic ids of one count row restricted to ``[lo, hi)``.

    O(1) add/discard via swap-remove, and a zero-copy array view for
    vectorized gathers.  Entry order is arbitrary — each draw computes
    bucket masses and cumulative sums from the same snapshot of the
    array, so any fixed order partitions the mass consistently.
    """

    __slots__ = ("_lo", "_hi", "_buf", "_pos", "_n")

    def __init__(self, lo: int, hi: int) -> None:
        self._lo = lo
        self._hi = hi
        self._buf = np.empty(max(hi - lo, 1), dtype=np.int64)
        self._pos: dict[int, int] = {}
        self._n = 0

    def begin(self, row: np.ndarray) -> None:
        """Rebuild from a full count row (absolute topic indices)."""
        nonzero = np.flatnonzero(row[self._lo:self._hi])
        n = nonzero.shape[0]
        if n:
            np.add(nonzero, self._lo, out=self._buf[:n])
        self._n = n
        self._pos = {int(t): i for i, t in enumerate(self._buf[:n])}

    def add(self, topic: int) -> None:
        pos = self._pos
        if topic in pos:
            return
        i = self._n
        self._buf[i] = topic
        pos[topic] = i
        self._n = i + 1

    def discard(self, topic: int) -> None:
        pos = self._pos
        i = pos.pop(topic, None)
        if i is None:
            return
        n = self._n - 1
        if i != n:
            last = int(self._buf[n])
            self._buf[i] = last
            pos[last] = i
        self._n = n

    def array(self) -> np.ndarray:
        """View of the current member topics (absolute indices)."""
        return self._buf[:self._n]


class WordTopicLists:
    """Per-word lists of topics with ``nw[w, t] > 0``.

    Built from the flat token/assignment arrays in O(N + V) — not from
    a dense ``nw`` scan, which would cost O(V * T) per sweep — and then
    maintained exactly (add on the 0 -> 1 transition, remove on 1 -> 0),
    so the lists never hold stale zeros or duplicates.  Word columns are
    short in realistic corpora, which keeps the per-token word-bucket
    walk O(nnz).
    """

    __slots__ = ("lists",)

    def __init__(self, words: np.ndarray, z: np.ndarray,
                 vocab_size: int) -> None:
        sets: list[set[int]] = [set() for _ in range(vocab_size)]
        for word, topic in zip(words.tolist(), z.tolist()):
            sets[word].add(topic)
        # Sorted for a canonical walk order: draws must be reproducible
        # functions of the seed, not of set iteration order.
        self.lists: list[list[int]] = [sorted(s) for s in sets]

    def add(self, word: int, topic: int) -> None:
        self.lists[word].append(topic)

    def remove(self, word: int, topic: int) -> None:
        self.lists[word].remove(topic)


class SparseKernelPath(ABC):
    """Bucketed weight computation contract for the sparse engine.

    A path is created by :meth:`TopicWeightKernel.sparse_path` and owns
    the bucket caches plus the nonzero-topic structures of its kernel's
    decomposition.  The engine drives it per token ``i`` with word ``w``
    in document ``d``:

    1. on entering a new document it calls :meth:`begin_document`;
    2. it decrements ``nw/nt/nd`` for the old topic and calls
       :meth:`removed`;
    3. :meth:`draw` locates the pre-drawn uniform ``u`` in the bucket
       partition and returns the new topic;
    4. it increments the counts for the new topic and calls
       :meth:`added`.

    ``begin_sweep`` runs once per sweep so all caches are rebuilt from
    the live count matrices (external edits between sweeps are absorbed
    there, mirroring the fast engine's contract).  ``scan`` is installed
    by the engine and must be used for any full-length cumulative sum
    (the smoothing-bucket fallback), keeping Algorithm 2/3 scan
    strategies exercised on this engine too.

    :meth:`dense_weights` is the decomposition oracle: the full
    unnormalized weight vector assembled from the same bucket formulas
    the sampler uses, for equivalence tests against
    :meth:`TopicWeightKernel.weights`.
    """

    alpha: float

    def __init__(self, state: GibbsState) -> None:
        self.state = state
        self.scan: ScanStrategy = SerialScan()

    @abstractmethod
    def begin_sweep(self) -> None:
        """Rebuild all bucket caches from the current state."""

    @abstractmethod
    def begin_document(self, doc: int) -> None:
        """Refresh per-document structures (also bounds drift of any
        incrementally maintained bucket mass)."""

    @abstractmethod
    def draw(self, word: int, doc: int, u: float) -> int:
        """Locate uniform ``u`` in the bucket partition; returns the new
        topic.  Counts for the token's old topic are already removed."""

    def removed(self, word: int, doc: int, topic: int) -> None:
        """Counts for ``topic`` just dropped by one; refresh caches."""

    def added(self, word: int, doc: int, topic: int) -> None:
        """Counts for ``topic`` just rose by one; refresh caches."""

    def step(self, word: int, doc: int, old: int, u: float) -> int:
        """One full token reassignment: decrement, draw, increment.

        The engine drives tokens through this single entry point so hot
        paths can fuse the count updates with their cache bookkeeping;
        the default implementation composes :meth:`removed`,
        :meth:`draw` and :meth:`added`.  If :meth:`draw` raises, the
        token is left decremented-but-unassigned — the same failure
        state as the other engines.
        """
        state = self.state
        nw = state.nw
        nt = state.nt
        nd = state.nd
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        self.removed(word, doc, old)
        new = self.draw(word, doc, u)
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        self.added(word, doc, new)
        return new

    #: Optional chunk runner.  A path may bind an instance attribute
    #: ``sweep_chunk(words, doc_ids, old_topics, uniforms, out)`` that
    #: consumes whole token chunks in a single frame (calling
    #: :meth:`begin_document` itself on document switches and appending
    #: each new topic to ``out`` as it is committed); the engine then
    #: drives chunks through it instead of per-token :meth:`step` calls.
    sweep_chunk = None

    @abstractmethod
    def dense_weights(self, word: int, doc: int) -> np.ndarray:
        """Full weight vector from the bucket decomposition (test
        oracle; requires :meth:`begin_sweep` to have run)."""

    def _inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        if type(self.scan) is SerialScan:
            return np.cumsum(values, dtype=np.float64)
        return self.scan.inclusive_scan(np.asarray(values,
                                                   dtype=np.float64))


class SparseSweepEngine:
    """Executes one Gibbs sweep with bucketed O(nnz) topic draws.

    Parameters mirror :class:`~repro.sampling.fast_engine.FastSweepEngine`.
    Kernels without a sparse path run on an internal fast engine (same
    RNG consumption, draw-for-draw identical to the reference), so
    ``engine="sparse"`` is safe on every kernel.
    """

    def __init__(self, state: GibbsState, kernel, rng: np.random.Generator,
                 scan: ScanStrategy | None = None,
                 chunk_size: int = 65536) -> None:
        if chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.state = state
        self.kernel = kernel
        self.rng = rng
        self.scan = scan or SerialScan()
        self.chunk_size = chunk_size
        self._path: SparseKernelPath | None = kernel.sparse_path()
        self._fallback: FastSweepEngine | None = None
        if self._path is None:
            self._fallback = FastSweepEngine(state, kernel, rng,
                                             scan=self.scan,
                                             chunk_size=chunk_size)
        else:
            self._path.scan = self.scan

    def sweep(self) -> None:
        if self._path is not None:
            self._sweep_sparse(self._path)
        else:
            self._fallback.sweep()

    # ------------------------------------------------------------------
    def _sweep_sparse(self, path: SparseKernelPath) -> None:
        state = self.state
        z = state.z
        step = path.step
        begin_document = path.begin_document
        rng_random = self.rng.random
        chunk = self.chunk_size

        path.begin_sweep()
        chunk_runner = path.sweep_chunk
        current_doc = -1
        # Same chunked layout as the fast engine: plain Python lists for
        # the token streams, uniforms pre-drawn per chunk (consecutive
        # ``rng.random(c)`` batches concatenate to the one-call stream),
        # and a finally that keeps ``z`` synced with the counts if a
        # kernel raises mid-chunk.
        for start in range(0, state.num_tokens, chunk):
            stop = min(start + chunk, state.num_tokens)
            words = state.words[start:stop].tolist()
            doc_ids = state.doc_ids[start:stop].tolist()
            old_topics = z[start:stop].tolist()
            uniforms = rng_random(stop - start).tolist()
            new_topics: list[int] = []
            append_new = new_topics.append
            try:
                if chunk_runner is not None:
                    chunk_runner(words, doc_ids, old_topics, uniforms,
                                 new_topics)
                else:
                    for word, doc, old, u in zip(words, doc_ids,
                                                 old_topics, uniforms):
                        if doc != current_doc:
                            begin_document(doc)
                            current_doc = doc
                        append_new(step(word, doc, old, u))
            finally:
                if new_topics:
                    z[start:start + len(new_topics)] = new_topics
