"""The sparse sweep engine: SparseLDA-style bucketed topic draws.

The fast engine (:mod:`repro.sampling.fast_engine`) removed the Python
object churn and the redundant lambda-grid arithmetic from the reference
sweep, but its per-token work is still ``O(T)``: every token materializes
the full weight vector and cumulative-sums it, even though all but a
handful of entries are identical token to token.

This module removes the ``O(T)`` walk itself, following the bucket
decomposition of SparseLDA (Yao, Mimno & McCallum, KDD 2009).  The LDA
weight of Equation 2 splits into three non-negative buckets::

    (nw + b)(nd + a)      a * b            b * nd         nw * (nd + a)
    ----------------  =  --------    +    --------    +   -------------
       nt + V * b        nt + V*b         nt + V*b           nt + V*b

                         "s": smoothing   "r": document   "q": word
                         (all T topics,   (nonzero        (nonzero
                         scalar mass      nd[d] topics)   nw[w] topics)
                         maintained
                         incrementally)

A uniform draw is located bucket-first: only when it lands in the
smoothing bucket (whose mass is tiny for realistic ``alpha``/``beta``)
does an ``O(T)`` scan happen; the common case touches only the ``O(nnz)``
nonzero topics of the current document row and word column.  The same
treatment applies to the fixed-phi EDA kernel (document bucket over
``nd[d]`` plus a precomputed per-word prior mass) and to the Source-LDA
kernel, whose ``nw * C + D`` lambda-integration caches (PR 1, see
:mod:`repro.core.kernels`) fold into the word bucket while the dense
``D`` term splits into a *floor* bucket (the epsilon-smoothed prior mass
shared by every word absent from a source article) plus a sparse
per-word correction over the article vocabularies.

The sweep itself executes in :mod:`repro.sampling.runtime`: paths whose
bucket structure compiles into a flat kernel table
(:meth:`SparseKernelPath.sparse_table` — today the bijective Source-LDA
lane's :class:`~repro.sampling.runtime.SourceBijectiveTable`) run on the
runtime's table-driven chunk loop; the remaining paths (LDA/EDA buckets,
the mixed-layout source lane) are driven per token through
:meth:`SparseKernelPath.step`.  The nonzero-membership structures
(:class:`~repro.sampling.runtime.TopicSet`,
:class:`~repro.sampling.runtime.WordTopicLists`) live in the runtime and
are re-exported here.

Exactness contract: the bucket decomposition is algebraically exact but
*reassociates* the per-topic weight sums, so — unlike the fast engine —
the sparse engine is not draw-for-draw identical to the reference: a
uniform draw maps to a bucket-major partition of the probability mass
instead of the topic-major one.  The per-token conditional distribution
is identical up to floating-point reassociation (pinned to ~1e-9 by the
decomposition oracle in ``tests/test_sparse_engine.py``), and chain-level
agreement is pinned there by distributional checks.  Kernels without a
:meth:`~repro.sampling.gibbs.TopicWeightKernel.sparse_path` (CTM, custom
kernels) fall back to the fast engine and therefore remain draw-for-draw
identical to the reference.

The engine consumes the RNG stream exactly like the other engines (one
pre-drawn uniform per token, chunked), so fallback kernels reproduce the
reference chain byte-for-byte.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sampling.fast_engine import FastSweepEngine
from repro.sampling.runtime import (TokenLoopBackend, TopicSet,
                                    WordTopicLists, resolve_backend)
from repro.sampling.scans import ScanStrategy, SerialScan
from repro.sampling.state import GibbsState

__all__ = ["SparseKernelPath", "SparseSweepEngine", "TopicSet",
           "WordTopicLists"]


class SparseKernelPath(ABC):
    """Bucketed weight computation contract for the sparse engine.

    A path is created by :meth:`TopicWeightKernel.sparse_path` and owns
    the bucket caches plus the nonzero-topic structures of its kernel's
    decomposition.  The runtime loop drives it per token ``i`` with word
    ``w`` in document ``d``:

    1. on entering a new document it calls :meth:`begin_document`;
    2. it decrements ``nw/nt/nd`` for the old topic and calls
       :meth:`removed`;
    3. :meth:`draw` locates the pre-drawn uniform ``u`` in the bucket
       partition and returns the new topic;
    4. it increments the counts for the new topic and calls
       :meth:`added`.

    Paths whose buckets compile into a flat kernel table override
    :meth:`sparse_table`; the runtime then executes its table-driven
    chunk loop instead of per-token :meth:`step` calls (and handles the
    document switching itself).

    ``begin_sweep`` runs once per sweep so all caches are rebuilt from
    the live count matrices (external edits between sweeps are absorbed
    there, mirroring the fast engine's contract).  ``scan`` is installed
    by the engine and must be used for any full-length cumulative sum
    (the smoothing-bucket fallback), keeping Algorithm 2/3 scan
    strategies exercised on this engine too.

    :meth:`dense_weights` is the decomposition oracle: the full
    unnormalized weight vector assembled from the same bucket formulas
    the sampler uses, for equivalence tests against
    :meth:`TopicWeightKernel.weights`.
    """

    alpha: float
    #: Compiled-lane tag for the numba backend (``"lda"``/``"eda"``);
    #: ``None`` keeps the path on the interpreted per-token lane (the
    #: table lane is tagged by :meth:`sparse_table` instead).
    lane: str | None = None

    def __init__(self, state: GibbsState) -> None:
        self.state = state
        self.scan: ScanStrategy = SerialScan()

    @abstractmethod
    def begin_sweep(self) -> None:
        """Rebuild all bucket caches from the current state."""

    @abstractmethod
    def begin_document(self, doc: int) -> None:
        """Refresh per-document structures (also bounds drift of any
        incrementally maintained bucket mass)."""

    @abstractmethod
    def draw(self, word: int, doc: int, u: float) -> int:
        """Locate uniform ``u`` in the bucket partition; returns the new
        topic.  Counts for the token's old topic are already removed."""

    def removed(self, word: int, doc: int, topic: int) -> None:
        """Counts for ``topic`` just dropped by one; refresh caches."""

    def added(self, word: int, doc: int, topic: int) -> None:
        """Counts for ``topic`` just rose by one; refresh caches."""

    def step(self, word: int, doc: int, old: int, u: float) -> int:
        """One full token reassignment: decrement, draw, increment.

        The runtime loop drives tokens through this single entry point
        so hot paths can fuse the count updates with their cache
        bookkeeping; the default implementation composes
        :meth:`removed`, :meth:`draw` and :meth:`added`.  If
        :meth:`draw` raises, the token is left
        decremented-but-unassigned — the same failure state as the
        other engines.
        """
        state = self.state
        nw = state.nw
        nt = state.nt
        nd = state.nd
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        self.removed(word, doc, old)
        new = self.draw(word, doc, u)
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        self.added(word, doc, new)
        return new

    def sparse_table(self):
        """Optional flat kernel table for the runtime's table lane.

        ``None`` (the default) keeps the path on the per-token
        :meth:`step` lane; the bijective Source-LDA path overrides this
        with a :class:`~repro.sampling.runtime.SourceBijectiveTable`
        whose array fields alias the path's live caches (rebound per
        sweep by :meth:`begin_sweep`).
        """
        return None

    @abstractmethod
    def dense_weights(self, word: int, doc: int) -> np.ndarray:
        """Full weight vector from the bucket decomposition (test
        oracle; requires :meth:`begin_sweep` to have run)."""

    def _inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        if type(self.scan) is SerialScan:
            return np.cumsum(values, dtype=np.float64)
        return self.scan.inclusive_scan(np.asarray(values,
                                                   dtype=np.float64))


class SparseSweepEngine:
    """Executes one Gibbs sweep with bucketed O(nnz) topic draws.

    Parameters mirror :class:`~repro.sampling.fast_engine.FastSweepEngine`
    (including ``backend``).  Kernels without a sparse path run on an
    internal fast engine (same RNG consumption, draw-for-draw identical
    to the reference), so ``engine="sparse"`` is safe on every kernel.
    """

    def __init__(self, state: GibbsState, kernel, rng: np.random.Generator,
                 scan: ScanStrategy | None = None,
                 chunk_size: int = 65536,
                 backend: str | TokenLoopBackend = "auto") -> None:
        if chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.state = state
        self.kernel = kernel
        self.rng = rng
        self.scan = scan or SerialScan()
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)
        self._path: SparseKernelPath | None = kernel.sparse_path()
        self._fallback: FastSweepEngine | None = None
        if self._path is None:
            self._fallback = FastSweepEngine(state, kernel, rng,
                                             scan=self.scan,
                                             chunk_size=chunk_size,
                                             backend=self.backend)
        else:
            self._path.scan = self.scan

    def sweep(self) -> None:
        if self._path is not None:
            self.backend.sweep_sparse(self)
        else:
            self._fallback.sweep()
