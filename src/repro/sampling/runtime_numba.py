"""The compiled token-loop backend (optional, requires :mod:`numba`).

Importing this module requires numba; :mod:`repro.sampling.runtime`
imports it inside a ``try`` so machines without numba simply keep the
python backend.  On machines with numba, :class:`NumbaBackend`
registers under ``"numba"`` and ``backend="auto"`` resolves to it.

What is compiled — and what the compilation preserves:

* **Dense LDA / EDA lanes**: the per-token weight, running cumulative
  sum and right-bisection are written as sequential scalar loops, the
  same association order as the python backend's ``np.cumsum`` (NumPy's
  cumsum is sequential, unlike its pairwise ``sum``), so these lanes
  are **draw-for-draw identical** to the python backend.
* **Dense Source-LDA lane**: the E-column refresh contracts
  ``aug[t] @ ratio`` with an explicit loop; BLAS and a scalar loop are
  not guaranteed to round identically, so this lane is pinned
  **distributionally** — the same contract the sparse engine
  established in PR 2 (the per-token conditional agrees to float
  reassociation).
* **Fold-in exact lane**: sequential cumsum again — draw-identical.
* **Fold-in sparse lane**: the document-bucket mass uses a scalar
  accumulation where the python backend uses (pairwise) ``np.sum`` —
  distributionally equivalent.
* **Sparse training lanes** (LDA, EDA, the bijective Source-LDA
  ``s+r+q`` bucket walk): the python lanes' list-based membership
  structures (``WordTopicLists``, ``TopicSet``) are mirrored into flat
  CSR/swap-remove arrays rebuilt per sweep, and the bucket masses
  accumulate sequentially where the python lanes mix ``np.sum`` /
  python-float walks — **distributionally** equivalent, the sparse
  engine's own PR-2 contract (its bucket partition is already a
  reassociation of the reference weights).
* **Alias/MH training lane** (LDA mode): the stale sparse/dense
  proposal mixture lives in flat arrays on ``table.compiled``; per-word
  rebuilds run inside the compiled chunk.  The MH accept/reject is
  exact against the live counts, so this lane carries the alias
  engine's own **distributional** contract.  The EDA and
  source-bijective alias modes stay on the interpreted loop (their
  per-token cost is already dominated by numpy-vectorized batch draws
  and E-cache refreshes respectively).

The backend subclasses :class:`PythonBackend`, so every lane it does
not override — and every configuration the compiled lanes do not cover
(non-serial scans, mixed source layouts, object-path kernels) — falls
through to the interpreted loop: requesting ``backend="numba"`` never
changes which lanes exist, only how fast the covered ones run.

All randomness stays outside the compiled region: uniforms are
pre-drawn per chunk/sweep with the caller's ``rng`` (one uniform per
token; four for the alias/MH lane — the library-wide contracts), so
the compiled loops are pure functions of (counts, caches, uniforms)
and swapping backends never shifts a shared stream.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.sampling.runtime import (FoldInTable, PythonBackend,
                                    register_backend)
from repro.sampling.scans import SerialScan

#: Lanes `sweep_dense` compiles; anything else falls through.
_COMPILED_DENSE = ("lda", "eda", "source")


@njit(cache=True)
def _searchsorted_right(cumulative, n, x):
    """First index with ``cumulative[i] > x`` (np.searchsorted
    side="right" on the first ``n`` entries)."""
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True)
def _last_positive_index(cumulative, n):
    """First index reaching the total — the last positive-weight entry
    (np.searchsorted side="left" for the boundary clamp)."""
    total = cumulative[n - 1]
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < total:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True)
def _dense_lda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                     nw, nt, nd, nt_beta, doc_row, cursor,
                     alpha, beta, beta_sum, cumulative):
    """One chunk of the dense LDA token loop (sequential cumsum: the
    draws match the python backend bit for bit).  ``cursor[0]`` carries
    the current document across chunk calls; ``z`` is written per token
    so a mid-chunk error leaves the same single-token failure state as
    the interpreted loop."""
    num_topics = nt_beta.shape[0]
    current_doc = cursor[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if doc != current_doc:
            for t in range(num_topics):
                doc_row[t] = nd[doc, t] + alpha
            current_doc = doc
        else:
            doc_row[old] = nd[doc, old] + alpha
        nt_beta[old] = nt[old] + beta_sum
        acc = 0.0
        for t in range(num_topics):
            acc += (nw[word, t] + beta) / nt_beta[t] * doc_row[t]
            cumulative[t] = acc
        total = cumulative[num_topics - 1]
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        new = _searchsorted_right(cumulative, num_topics,
                                  uniforms[i] * total)
        if new == num_topics:
            new = _last_positive_index(cumulative, num_topics)
        z[start + i] = new
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        doc_row[new] = nd[doc, new] + alpha
        nt_beta[new] = nt[new] + beta_sum
    cursor[0] = current_doc


@njit(cache=True)
def _dense_eda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                     nw, nt, nd, phi_by_word, doc_row, cursor,
                     alpha, cumulative):
    """One chunk of the dense fixed-phi (EDA) token loop."""
    num_topics = nt.shape[0]
    current_doc = cursor[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if doc != current_doc:
            for t in range(num_topics):
                doc_row[t] = nd[doc, t] + alpha
            current_doc = doc
        else:
            doc_row[old] = nd[doc, old] + alpha
        acc = 0.0
        for t in range(num_topics):
            acc += phi_by_word[word, t] * doc_row[t]
            cumulative[t] = acc
        total = cumulative[num_topics - 1]
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        new = _searchsorted_right(cumulative, num_topics,
                                  uniforms[i] * total)
        if new == num_topics:
            new = _last_positive_index(cumulative, num_topics)
        z[start + i] = new
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        doc_row[new] = nd[doc, new] + alpha
    cursor[0] = current_doc


@njit(cache=True)
def _refresh_source_column(topic, k, nt, sum_delta, aug, E, ratio):
    """The ``E[:, t] = aug[t] @ (omega_over) `` refresh, scalar loops.
    ``ratio`` already holds ``omega``; it is overwritten in place."""
    t = topic - k
    num_nodes = ratio.shape[0]
    for a in range(num_nodes):
        ratio[a] = ratio[a] / (nt[topic] + sum_delta[t, a])
    rows = E.shape[0]
    for r in range(rows):
        acc = 0.0
        for a in range(num_nodes):
            acc += aug[t, r, a] * ratio[a]
        E[r, t] = acc


@njit(cache=True)
def _dense_source_chunk(words, doc_ids, old_topics, uniforms, z, start,
                        nw, nt, nd, num_free, omega, sum_delta, aug,
                        E, inverse_plus, nt_free, doc_row, cursor,
                        alpha, beta, beta_sum, ratio, cumulative):
    """One chunk of the dense Source-LDA token loop.

    ``inverse_plus[w, s]`` is the unique-value row index (``inverse + 1``)
    of word ``w`` under source topic ``s``, so ``D[w, s] =
    E[inverse_plus[w, s], s]`` and ``C[s] = E[0, s]``.  The E-column
    refresh reassociates the quadrature contraction (scalar loop vs
    BLAS), so this lane is distributionally — not draw-for-draw —
    equivalent to the python backend.
    """
    num_topics = nt.shape[0]
    k = num_free
    num_nodes = omega.shape[0]
    current_doc = cursor[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if doc != current_doc:
            for t in range(num_topics):
                doc_row[t] = nd[doc, t] + alpha
            current_doc = doc
        else:
            doc_row[old] = nd[doc, old] + alpha
        if old < k:
            nt_free[old] = nt[old] + beta_sum
        else:
            for a in range(num_nodes):
                ratio[a] = omega[a]
            _refresh_source_column(old, k, nt, sum_delta, aug, E, ratio)
        acc = 0.0
        for t in range(k):
            acc += (nw[word, t] + beta) / nt_free[t] * doc_row[t]
            cumulative[t] = acc
        for t in range(k, num_topics):
            s = t - k
            weight = (nw[word, t] * E[0, s]
                      + E[inverse_plus[word, s], s]) * doc_row[t]
            acc += weight
            cumulative[t] = acc
        total = cumulative[num_topics - 1]
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        new = _searchsorted_right(cumulative, num_topics,
                                  uniforms[i] * total)
        if new == num_topics:
            new = _last_positive_index(cumulative, num_topics)
        z[start + i] = new
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        doc_row[new] = nd[doc, new] + alpha
        if new < k:
            nt_free[new] = nt[new] + beta_sum
        else:
            for a in range(num_nodes):
                ratio[a] = omega[a]
            _refresh_source_column(new, k, nt, sum_delta, aug, E, ratio)
    cursor[0] = current_doc


@njit(cache=True)
def _foldin_exact_doc(word_ids, phi_by_word, alpha, iterations,
                      init_assignments, uniforms, work, cumulative,
                      accumulated, doc_counts, theta_out):
    """Compiled fold-in, exact lane: sequential cumsum per token —
    draw-identical to the python backend given the same pre-drawn
    ``init_assignments`` and ``uniforms``."""
    length = word_ids.shape[0]
    num_topics = doc_counts.shape[0]
    for t in range(num_topics):
        doc_counts[t] = 0.0
        accumulated[t] = 0.0
    for i in range(length):
        doc_counts[init_assignments[i]] += 1.0
    burn_in = min(max(1, iterations // 2), iterations - 1)
    samples = 0
    for iteration in range(iterations):
        base = iteration * length
        for position in range(length):
            word = word_ids[position]
            doc_counts[init_assignments[position]] -= 1.0
            acc = 0.0
            for t in range(num_topics):
                work[t] = phi_by_word[word, t] * (doc_counts[t] + alpha)
                acc += work[t]
                cumulative[t] = acc
            total = cumulative[num_topics - 1]
            if not (0.0 < total < np.inf):
                raise ValueError(
                    "categorical weights must have positive finite mass")
            topic = _searchsorted_right(cumulative, num_topics,
                                        uniforms[base + position] * total)
            if topic >= num_topics:
                topic = _last_positive_index(cumulative, num_topics)
            init_assignments[position] = topic
            doc_counts[topic] += 1.0
        if iteration >= burn_in:
            for t in range(num_topics):
                accumulated[t] += doc_counts[t]
            samples += 1
    denom = length + num_topics * alpha
    scale = 1.0 / max(samples, 1)
    for t in range(num_topics):
        theta_out[t] = (accumulated[t] * scale + alpha) / denom


@njit(cache=True)
def _foldin_sparse_doc(word_ids, phi_by_word, prior_mass, alias_accept,
                       alias_topic, alpha, iterations, init_assignments,
                       uniforms, members, member_pos, r_cum, accumulated,
                       doc_counts, theta_out):
    """Compiled fold-in, sparse lane: prior/document bucket split with
    O(1) alias prior hits.  ``members``/``member_pos`` implement the
    TopicSet (swap-remove membership) as flat arrays; bucket masses
    accumulate sequentially, so this lane is distributionally (not
    draw-for-draw) equivalent to the python backend's pairwise sums.
    """
    length = word_ids.shape[0]
    num_topics = doc_counts.shape[0]
    for t in range(num_topics):
        doc_counts[t] = 0.0
        accumulated[t] = 0.0
        member_pos[t] = -1
    for i in range(length):
        doc_counts[init_assignments[i]] += 1.0
    num_members = 0
    for t in range(num_topics):
        if doc_counts[t] > 0.0:
            members[num_members] = t
            member_pos[t] = num_members
            num_members += 1
    burn_in = min(max(1, iterations // 2), iterations - 1)
    samples = 0
    for iteration in range(iterations):
        base = iteration * length
        for position in range(length):
            old = init_assignments[position]
            doc_counts[old] -= 1.0
            if doc_counts[old] == 0.0:
                # swap-remove from the membership array
                idx = member_pos[old]
                num_members -= 1
                last = members[num_members]
                members[idx] = last
                member_pos[last] = idx
                member_pos[old] = -1
            word = word_ids[position]
            r_mass = 0.0
            for m in range(num_members):
                t = members[m]
                r_mass += doc_counts[t] * phi_by_word[word, t]
                r_cum[m] = r_mass
            s_mass = prior_mass[word]
            total = r_mass + s_mass
            if not (0.0 < total < np.inf):
                raise ValueError(
                    "categorical weights must have positive finite mass")
            x = uniforms[base + position] * total
            if x < r_mass:
                index = _searchsorted_right(r_cum, num_members, x)
                if index >= num_members:
                    index = _last_positive_index(r_cum, num_members)
                topic = members[index]
            else:
                v = (x - r_mass) / s_mass
                scaled = v * num_topics
                cell = int(scaled)
                if cell >= num_topics:
                    cell = num_topics - 1
                if (scaled - cell) < alias_accept[word, cell]:
                    topic = cell
                else:
                    topic = alias_topic[word, cell]
            init_assignments[position] = topic
            if doc_counts[topic] == 0.0:
                members[num_members] = topic
                member_pos[topic] = num_members
                num_members += 1
            doc_counts[topic] += 1.0
        if iteration >= burn_in:
            for t in range(num_topics):
                accumulated[t] += doc_counts[t]
            samples += 1
    denom = length + num_topics * alpha
    scale = 1.0 / max(samples, 1)
    for t in range(num_topics):
        theta_out[t] = (accumulated[t] * scale + alpha) / denom


@njit(cache=True)
def _csr_remove(word_list, base, n, topic):
    """Swap-remove ``topic`` from a word's CSR topic slice.

    The python ``WordTopicLists`` removes order-preservingly; the walk
    order only reassociates the bucket partition, so swap-remove keeps
    the per-token conditional identical (distributional contract)."""
    for j in range(n):
        if word_list[base + j] == topic:
            word_list[base + j] = word_list[base + n - 1]
            return
    # Unreachable on consistent counts; keep going rather than poison.


@njit(cache=True)
def _sparse_lda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                      nw, nt, nd, alpha, beta, beta_sum, ab,
                      inv_nt, members, member_pos, r_cum, q_cum,
                      word_ptr, word_list, word_len, int_state,
                      float_state):
    """One chunk of the sparse (SparseLDA ``s + r + q``) LDA loop.

    ``members``/``member_pos`` mirror the python ``TopicSet`` (swap
    -remove membership), ``word_ptr``/``word_list``/``word_len`` the
    ``WordTopicLists`` as a CSR whose per-word capacity is the word's
    token count (an upper bound on its distinct topics).  The smoothing
    mass ``s_mass`` is maintained incrementally and refreshed at every
    document boundary exactly like the python path; bucket walks
    accumulate sequentially, so the lane is distributionally equivalent.
    ``int_state`` carries ``[current_doc, num_members]`` and
    ``float_state`` ``[s_mass]`` across chunk calls."""
    num_topics = nt.shape[0]
    current_doc = int_state[0]
    num_members = int_state[1]
    s_mass = float_state[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        if doc != current_doc:
            # Document entry: refresh inv_nt + the smoothing mass
            # (bounds incremental float drift) and rebuild the
            # document's nonzero-topic membership.
            acc = 0.0
            for t in range(num_topics):
                inv = 1.0 / (nt[t] + beta_sum)
                inv_nt[t] = inv
                acc += inv
                member_pos[t] = -1
            s_mass = ab * acc
            num_members = 0
            for t in range(num_topics):
                if nd[doc, t] > 0.0:
                    members[num_members] = t
                    member_pos[t] = num_members
                    num_members += 1
            current_doc = doc
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        old_inv = inv_nt[old]
        new_inv = 1.0 / (nt[old] + beta_sum)
        inv_nt[old] = new_inv
        s_mass += ab * (new_inv - old_inv)
        if nd[doc, old] == 0.0:
            idx = member_pos[old]
            num_members -= 1
            last = members[num_members]
            members[idx] = last
            member_pos[last] = idx
            member_pos[old] = -1
        base = word_ptr[word]
        n_w = word_len[word]
        if nw[word, old] == 0.0:
            _csr_remove(word_list, base, n_w, old)
            n_w -= 1
            word_len[word] = n_w
        # q: word bucket over the nonzero nw[word] topics.
        q_mass = 0.0
        for j in range(n_w):
            t = word_list[base + j]
            q_mass += nw[word, t] * (nd[doc, t] + alpha) * inv_nt[t]
            q_cum[j] = q_mass
        # r: document bucket over the nonzero nd[doc] topics.
        r_mass = 0.0
        for m in range(num_members):
            t = members[m]
            r_mass += beta * nd[doc, t] * inv_nt[t]
            r_cum[m] = r_mass
        total = q_mass + r_mass + s_mass
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        x = uniforms[i] * total
        new = -1
        if x < q_mass:
            idx = _searchsorted_right(q_cum, n_w, x)
            if idx < n_w:
                new = word_list[base + idx]
            # Float shortfall in the walk falls through to the next
            # bucket, matching the python path.
        if new < 0:
            x -= q_mass
            if num_members > 0 and x < r_mass:
                idx = _searchsorted_right(r_cum, num_members, x)
                if idx >= num_members:
                    idx = num_members - 1  # r weights are all positive
                new = members[idx]
            else:
                x -= r_mass
                # s: smoothing bucket, proportional to inv_nt.
                target = x / ab
                acc = 0.0
                new = num_topics - 1  # inv_nt is all positive
                for t in range(num_topics):
                    acc += inv_nt[t]
                    if target < acc:
                        new = t
                        break
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        old_inv = inv_nt[new]
        new_inv = 1.0 / (nt[new] + beta_sum)
        inv_nt[new] = new_inv
        s_mass += ab * (new_inv - old_inv)
        if nd[doc, new] == 1.0:
            members[num_members] = new
            member_pos[new] = num_members
            num_members += 1
        if nw[word, new] == 1.0:
            word_list[base + n_w] = new
            word_len[word] = n_w + 1
        z[start + i] = new
    int_state[0] = current_doc
    int_state[1] = num_members
    float_state[0] = s_mass


@njit(cache=True)
def _sparse_eda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                      nw, nt, nd, phi_by_word, prior_mass, alpha,
                      members, member_pos, r_cum, int_state):
    """One chunk of the sparse fixed-phi (EDA) loop: document bucket
    over the nonzero ``nd[doc]`` topics plus the static per-word prior
    mass, mirroring ``EdaSparsePath`` (distributional contract)."""
    num_topics = nt.shape[0]
    current_doc = int_state[0]
    num_members = int_state[1]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        if doc != current_doc:
            num_members = 0
            for t in range(num_topics):
                member_pos[t] = -1
            for t in range(num_topics):
                if nd[doc, t] > 0.0:
                    members[num_members] = t
                    member_pos[t] = num_members
                    num_members += 1
            current_doc = doc
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if nd[doc, old] == 0.0:
            idx = member_pos[old]
            num_members -= 1
            last = members[num_members]
            members[idx] = last
            member_pos[last] = idx
            member_pos[old] = -1
        r_mass = 0.0
        for m in range(num_members):
            t = members[m]
            r_mass += phi_by_word[word, t] * nd[doc, t]
            r_cum[m] = r_mass
        s_mass = alpha * prior_mass[word]
        total = r_mass + s_mass
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        x = uniforms[i] * total
        new = -1
        if num_members > 0 and x < r_mass:
            idx = _searchsorted_right(r_cum, num_members, x)
            if idx >= num_members:
                # phi entries may be zero at doc topics: clamp to the
                # last positive-weight entry.
                idx = _last_positive_index(r_cum, num_members)
            new = members[idx]
        elif s_mass > 0.0:
            # s: prior-mass bucket proportional to the phi column.
            target = (x - r_mass) / alpha
            acc = 0.0
            last_pos = -1
            for t in range(num_topics):
                v = phi_by_word[word, t]
                if v > 0.0:
                    last_pos = t
                acc += v
                if target < acc:
                    new = t
                    break
            if new < 0:
                new = last_pos
        else:
            # Float shortfall past a massless prior bucket: the
            # document bucket holds all the mass.
            idx = _last_positive_index(r_cum, num_members)
            new = members[idx]
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        if nd[doc, new] == 1.0:
            members[num_members] = new
            member_pos[new] = num_members
            num_members += 1
        z[start + i] = new
    int_state[0] = current_doc
    int_state[1] = num_members


@njit(cache=True)
def _sparse_source_bijective_chunk(words, doc_ids, old_topics, uniforms,
                                   z, start, nw, nt, nd, alpha, omega,
                                   sum_delta, aug, E, inverse_plus,
                                   corr_ptr, corr_row, corr_topics,
                                   doc_starts, doc_lengths, doc_z,
                                   r_cum, corr_cum, q_cum, ratio,
                                   word_ptr, word_list, word_len,
                                   int_state):
    """One chunk of the bijective Source-LDA sparse loop (the
    ``s + r + q`` bucket walk of :func:`run_source_bijective_chunk` as
    scalar loops).

    ``C[t] = E[0, t]``, ``D[w, t] = E[inverse_plus[w, t], t]`` and the
    floor is ``E[1, :]``; corrections walk the per-word CSR
    ``corr_ptr``/``corr_row``/``corr_topics``.  The E-column refresh
    and every bucket mass accumulate sequentially, so the lane is
    distributionally equivalent to the python path (which itself
    carries the PR-2 distributional contract).  ``int_state`` carries
    ``[current_doc, position, doc_len]`` across chunk calls."""
    num_topics = nt.shape[0]
    num_nodes = omega.shape[0]
    current_doc = int_state[0]
    position = int_state[1]
    doc_len = int_state[2]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        if doc != current_doc:
            doc_len = doc_lengths[doc]
            start_token = doc_starts[doc]
            for j in range(doc_len):
                doc_z[j] = z[start_token + j]
            position = 0
            current_doc = doc
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        for a in range(num_nodes):
            ratio[a] = omega[a]
        _refresh_source_column(old, 0, nt, sum_delta, aug, E, ratio)
        base = word_ptr[word]
        n_w = word_len[word]
        if nw[word, old] == 0.0:
            _csr_remove(word_list, base, n_w, old)
            n_w -= 1
            word_len[word] = n_w
        # q: word bucket over the nonzero nw[word] topics.
        q_mass = 0.0
        for j in range(n_w):
            t = word_list[base + j]
            q_mass += nw[word, t] * E[0, t] * (nd[doc, t] + alpha)
            q_cum[j] = q_mass
        # r: document bucket over the document's token slice (weight
        # D[z_j] per other token; the current slot is zeroed).
        r_mass = 0.0
        for j in range(doc_len):
            if j != position:
                tj = doc_z[j]
                r_mass += E[inverse_plus[word, tj], tj]
            r_cum[j] = r_mass
        # s (correction): alpha * (D - E1) over this word's articles.
        lo = corr_ptr[word]
        hi = corr_ptr[word + 1]
        n_corr = hi - lo
        sc_acc = 0.0
        for c in range(n_corr):
            t = corr_topics[lo + c]
            sc_acc += E[corr_row[lo + c], t] - E[1, t]
            corr_cum[c] = sc_acc
        sc_mass = alpha * sc_acc
        # s (floor): alpha * E1 over every source topic.
        fl_acc = 0.0
        for t in range(num_topics):
            fl_acc += E[1, t]
        sfl_mass = alpha * fl_acc
        total = q_mass + r_mass + sc_mass + sfl_mass
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        x = uniforms[i] * total
        new = -1
        if x < q_mass:
            idx = _searchsorted_right(q_cum, n_w, x)
            if idx < n_w:
                new = word_list[base + idx]
        if new < 0:
            x -= q_mass
            if x < r_mass:
                idx = _searchsorted_right(r_cum, doc_len, x)
                if idx >= doc_len:
                    # Boundary draw over the zeroed current slot.
                    idx = _last_positive_index(r_cum, doc_len)
                new = doc_z[idx]
            else:
                x -= r_mass
                if n_corr > 0 and x < sc_mass:
                    idx = _searchsorted_right(corr_cum, n_corr,
                                              x / alpha)
                    if idx >= n_corr:
                        # Corrections may include zeros; clamp to the
                        # last positive one.
                        idx = _last_positive_index(corr_cum, n_corr)
                    new = corr_topics[lo + idx]
                else:
                    x -= sc_mass
                    # s (floor): E1 is strictly positive.
                    target = x / alpha
                    acc = 0.0
                    new = num_topics - 1
                    for t in range(num_topics):
                        acc += E[1, t]
                        if target < acc:
                            new = t
                            break
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        for a in range(num_nodes):
            ratio[a] = omega[a]
        _refresh_source_column(new, 0, nt, sum_delta, aug, E, ratio)
        if nw[word, new] == 1.0:
            word_list[base + n_w] = new
            word_len[word] = n_w + 1
        doc_z[position] = new
        position += 1
        z[start + i] = new
    int_state[0] = current_doc
    int_state[1] = position
    int_state[2] = doc_len


@njit(cache=True)
def _stale_component_value(sup_topics, sup_vals, base, n, topic):
    """Frozen sparse-component weight of ``topic`` (0 off support) —
    binary search over the word's sorted support slice."""
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if sup_topics[base + mid] < topic:
            lo = mid + 1
        else:
            hi = mid
    if lo < n and sup_topics[base + lo] == topic:
        return sup_vals[base + lo]
    return 0.0


@njit(cache=True)
def _alias_lda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                     nw, nt, nd, alpha, beta, beta_sum, rebuild_every,
                     sup_ptr, sup_topics, sup_vals, sup_cum, sup_len,
                     sup_mass, draws_since, dense_vals, dense_accept,
                     dense_alias, dense_mass, doc_starts, doc_lengths,
                     doc_z, int_state, mh_out):
    """One chunk of the alias/MH LDA loop — the compiled mirror of
    :func:`~repro.sampling.runtime.run_alias_mh_chunk`'s lda mode.

    The per-word stale sparse components live in the CSR arrays
    ``sup_*`` (capacity = the word's token count, an upper bound on its
    support; support topics are stored ascending so the frozen ``q``
    lookups binary-search); rebuilds run inline as an O(T) support scan
    — amortized over ``rebuild_every`` draws.  Four pre-drawn uniforms
    per token, coins consumed on self-proposals, rebuilds draw no RNG —
    the same stream pin as the interpreted lane.  ``int_state`` carries
    ``[current_doc, position, doc_len]``; ``mh_out`` accumulates
    ``[proposals, accepts, rebuilds]``."""
    num_topics = nt.shape[0]
    alpha_times_t = alpha * num_topics
    current_doc = int_state[0]
    position = int_state[1]
    doc_len = int_state[2]
    proposals = 0
    accepts = 0
    rebuilds = 0
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        s0 = old_topics[i]
        u1 = uniforms[4 * i]
        u2 = uniforms[4 * i + 1]
        u3 = uniforms[4 * i + 2]
        u4 = uniforms[4 * i + 3]
        if doc != current_doc:
            doc_len = doc_lengths[doc]
            start_token = doc_starts[doc]
            for j in range(doc_len):
                doc_z[j] = z[start_token + j]
            position = 0
            current_doc = doc
        nw[word, s0] -= 1.0
        nt[s0] -= 1.0
        nd[doc, s0] -= 1.0
        # Rebuild *after* the decrement: the frozen component must
        # never include the topic being resampled, or the proposal
        # depends on the current state and the fixed-proposal MH test
        # stops being exact.
        base = sup_ptr[word]
        if draws_since[word] >= rebuild_every:
            rebuilds += 1
            count = 0
            acc = 0.0
            for t in range(num_topics):
                cnt = nw[word, t]
                if cnt > 0.0:
                    v = cnt / (nt[t] + beta_sum)
                    sup_topics[base + count] = t
                    sup_vals[base + count] = v
                    acc += v
                    sup_cum[base + count] = acc
                    count += 1
            sup_len[word] = count
            sup_mass[word] = acc
            draws_since[word] = 0
        draws_since[word] += 1
        s = s0
        pi_s = 0.0
        have_pi = False
        # ---------------------------------------- word sub-step
        wm = sup_mass[word]
        x = u1 * (wm + dense_mass)
        if x < wm:
            n_w = sup_len[word]
            idx = _searchsorted_right(sup_cum[base:base + n_w], n_w, x)
            if idx >= n_w:  # float boundary
                idx = n_w - 1
            t = sup_topics[base + idx]
        else:
            v = (x - wm) / dense_mass
            scaled = v * num_topics
            cell = int(scaled)
            if cell >= num_topics:
                cell = num_topics - 1
            if scaled - cell < dense_accept[cell]:
                t = cell
            else:
                t = dense_alias[cell]
        proposals += 1
        if t != s:
            pi_s = (nw[word, s] + beta) / (nt[s] + beta_sum) \
                * (nd[doc, s] + alpha)
            pi_t = (nw[word, t] + beta) / (nt[t] + beta_sum) \
                * (nd[doc, t] + alpha)
            have_pi = True
            n_w = sup_len[word]
            q_s = dense_vals[s] + _stale_component_value(
                sup_topics, sup_vals, base, n_w, s)
            q_t = dense_vals[t] + _stale_component_value(
                sup_topics, sup_vals, base, n_w, t)
            if u2 * pi_s * q_t < pi_t * q_s:
                s = t
                pi_s = pi_t
                accepts += 1
        else:
            accepts += 1
        # ----------------------------------------- doc sub-step
        # The current token's slot is skipped so q_d = nd_dec + alpha
        # never depends on the topic being resampled (mirrors the
        # interpreted lane's exactness note).
        others = doc_len - 1
        x = u3 * (others + alpha_times_t)
        if x < others:
            j = int(x)
            if j >= others:  # float boundary
                j = others - 1
            if j >= position:
                j += 1
            t = doc_z[j]
        else:
            t = int((x - others) / alpha)
            if t >= num_topics:  # float boundary
                t = num_topics - 1
        proposals += 1
        if t != s:
            if not have_pi:
                pi_s = (nw[word, s] + beta) / (nt[s] + beta_sum) \
                    * (nd[doc, s] + alpha)
            pi_t = (nw[word, t] + beta) / (nt[t] + beta_sum) \
                * (nd[doc, t] + alpha)
            qd_s = nd[doc, s] + alpha
            qd_t = nd[doc, t] + alpha
            if u4 * pi_s * qd_t < pi_t * qd_s:
                s = t
                accepts += 1
        else:
            accepts += 1
        nw[word, s] += 1.0
        nt[s] += 1.0
        nd[doc, s] += 1.0
        doc_z[position] = s
        position += 1
        z[start + i] = s
    int_state[0] = current_doc
    int_state[1] = position
    int_state[2] = doc_len
    mh_out[0] += proposals
    mh_out[1] += accepts
    mh_out[2] += rebuilds


def _word_topic_csr(state):
    """The word -> nonzero-topic lists (python ``WordTopicLists``) as a
    CSR rebuilt per sweep from the live ``nw``.

    Per-word capacity is the word's corpus token count — an upper bound
    on its distinct assigned topics at any point of the sweep, so
    in-sweep appends never overflow.  Returns ``(counts, word_ptr,
    word_list, word_len)``."""
    vocab_size = state.vocab_size
    counts = np.bincount(state.words,
                         minlength=vocab_size).astype(np.int64)
    word_ptr = np.zeros(vocab_size + 1, dtype=np.int64)
    np.cumsum(counts, out=word_ptr[1:])
    word_list = np.zeros(int(word_ptr[-1]), dtype=np.int64)
    word_len = np.zeros(vocab_size, dtype=np.int64)
    rows, topics = np.nonzero(state.nw)
    if rows.size:
        nnz = np.bincount(rows, minlength=vocab_size)
        word_len[:] = nnz
        starts = np.concatenate(([0], np.cumsum(nnz)[:-1]))
        offsets = np.arange(rows.size, dtype=np.int64) \
            - np.repeat(starts, nnz)
        word_list[word_ptr[rows] + offsets] = topics
    return counts, word_ptr, word_list, word_len


class NumbaBackend(PythonBackend):
    """Compiled dense, sparse, alias (LDA mode) and fold-in lanes;
    everything else inherits the interpreted loops from
    :class:`PythonBackend` (per-lane fallback — see the module
    docstring for the lane-by-lane equivalence contract)."""

    name = "numba"

    def sweep_sparse(self, engine) -> None:
        path = engine._path
        table = path.sparse_table()
        lane = getattr(path, "lane", None)
        # Non-serial scans stay on the interpreted loop (the scan
        # strategy must drive the smoothing-bucket fallback there), as
        # do paths without a compiled lane (the mixed-layout source
        # path, custom kernels).
        if (type(engine.scan) is not SerialScan
                or (table is None and lane not in ("lda", "eda"))):
            super().sweep_sparse(engine)
            return
        path.begin_sweep()
        if table is not None:
            self._sweep_sparse_bijective(engine, table)
        elif lane == "lda":
            self._sweep_sparse_lda(engine, path)
        else:
            self._sweep_sparse_eda(engine, path)

    def _sweep_sparse_lda(self, engine, path) -> None:
        state = engine.state
        z = state.z
        chunk = engine.chunk_size
        rng_random = engine.rng.random
        num_topics = state.num_topics
        counts, word_ptr, word_list, word_len = _word_topic_csr(state)
        max_count = int(counts.max()) if counts.size else 0
        q_cum = np.empty(max(1, min(max_count, num_topics)))
        inv_nt = np.empty(num_topics)
        members = np.empty(num_topics, dtype=np.int64)
        member_pos = np.empty(num_topics, dtype=np.int64)
        r_cum = np.empty(num_topics)
        int_state = np.array([-1, 0], dtype=np.int64)
        float_state = np.zeros(1)
        for start in range(0, state.num_tokens, chunk):
            stop = min(start + chunk, state.num_tokens)
            _sparse_lda_chunk(
                state.words[start:stop], state.doc_ids[start:stop],
                z[start:stop].copy(), rng_random(stop - start), z,
                start, state.nw, state.nt, state.nd, path.alpha,
                path.beta, path._beta_sum, path._ab, inv_nt, members,
                member_pos, r_cum, q_cum, word_ptr, word_list,
                word_len, int_state, float_state)

    def _sweep_sparse_eda(self, engine, path) -> None:
        state = engine.state
        z = state.z
        chunk = engine.chunk_size
        rng_random = engine.rng.random
        num_topics = state.num_topics
        members = np.empty(num_topics, dtype=np.int64)
        member_pos = np.empty(num_topics, dtype=np.int64)
        r_cum = np.empty(num_topics)
        int_state = np.array([-1, 0], dtype=np.int64)
        for start in range(0, state.num_tokens, chunk):
            stop = min(start + chunk, state.num_tokens)
            _sparse_eda_chunk(
                state.words[start:stop], state.doc_ids[start:stop],
                z[start:stop].copy(), rng_random(stop - start), z,
                start, state.nw, state.nt, state.nd,
                path._phi_by_word, path._prior_mass, path.alpha,
                members, member_pos, r_cum, int_state)

    def _sweep_sparse_bijective(self, engine, table) -> None:
        state = engine.state
        z = state.z
        chunk = engine.chunk_size
        rng_random = engine.rng.random
        comp = table.compiled
        if comp is None:
            # Static gather structures: the (V, S) flat indices map to
            # E rows by integer division (flat = row * S + topic), and
            # the correction CSR gets the same treatment.
            num_source = table.num_source
            comp = {
                "inverse_plus":
                    (table.flat // num_source).astype(np.int64),
                "corr_ptr": np.asarray(table.corr_ptr, dtype=np.int64),
                "corr_row":
                    (table.corr_flat // num_source).astype(np.int64),
                "corr_topics":
                    np.asarray(table.corr_topics, dtype=np.int64),
                "doc_starts":
                    np.asarray(table.doc_starts, dtype=np.int64),
                "doc_lengths":
                    np.asarray(table.doc_lengths, dtype=np.int64),
            }
            table.compiled = comp
        counts, word_ptr, word_list, word_len = _word_topic_csr(state)
        max_count = int(counts.max()) if counts.size else 0
        q_cum = np.empty(max(1, min(max_count, state.num_topics)))
        r_cum = np.empty(max(table.doc_z.shape[0], 1))
        corr_cum = np.empty(max(table.corr_buf.shape[0], 1))
        int_state = np.array([-1, 0, 0], dtype=np.int64)
        for start in range(0, state.num_tokens, chunk):
            stop = min(start + chunk, state.num_tokens)
            _sparse_source_bijective_chunk(
                state.words[start:stop], state.doc_ids[start:stop],
                z[start:stop].copy(), rng_random(stop - start), z,
                start, state.nw, state.nt, state.nd, table.alpha,
                table.omega, table.sum_delta, table.aug, table.E,
                comp["inverse_plus"], comp["corr_ptr"],
                comp["corr_row"], comp["corr_topics"],
                comp["doc_starts"], comp["doc_lengths"], table.doc_z,
                r_cum, corr_cum, q_cum, table.ratio_buf, word_ptr,
                word_list, word_len, int_state)

    def sweep_alias(self, engine) -> None:
        path = engine._path
        table = path.alias_table()
        if table.mode != "lda":
            # EDA's word proposals are one vectorized batch and the
            # source mode's hot cost is numpy E-cache refreshes — the
            # interpreted lane already amortizes both.
            super().sweep_alias(engine)
            return
        path.begin_sweep()
        state = engine.state
        z = state.z
        chunk = engine.chunk_size
        rng_random = engine.rng.random
        comp = table.compiled
        if comp is None:
            # The stale sparse components as CSR arrays — these persist
            # across sweeps (that persistence IS the amortization), so
            # they live on the table, not per-sweep scratch.
            vocab_size = state.vocab_size
            sup_counts = np.bincount(
                state.words, minlength=vocab_size).astype(np.int64)
            sup_ptr = np.zeros(vocab_size + 1, dtype=np.int64)
            np.cumsum(sup_counts, out=sup_ptr[1:])
            capacity = int(sup_ptr[-1])
            comp = {
                "sup_ptr": sup_ptr,
                "sup_topics": np.zeros(capacity, dtype=np.int64),
                "sup_vals": np.zeros(capacity),
                "sup_cum": np.zeros(capacity),
                "sup_len": np.zeros(vocab_size, dtype=np.int64),
                "sup_mass": np.zeros(vocab_size),
                # Start saturated so every word builds on first touch.
                "draws_since": np.full(vocab_size, table.rebuild_every,
                                       dtype=np.int64),
                "doc_starts":
                    np.asarray(table.doc_starts, dtype=np.int64),
                "doc_lengths":
                    np.asarray(table.doc_lengths, dtype=np.int64),
            }
            table.compiled = comp
        dense_vals = np.asarray(table.dense_vals)
        dense_accept = np.asarray(table.dense_accept)
        dense_alias = np.asarray(table.dense_alias, dtype=np.int64)
        int_state = np.array([-1, 0, 0], dtype=np.int64)
        mh_out = np.zeros(3, dtype=np.int64)
        try:
            for start in range(0, state.num_tokens, chunk):
                stop = min(start + chunk, state.num_tokens)
                _alias_lda_chunk(
                    state.words[start:stop],
                    state.doc_ids[start:stop], z[start:stop].copy(),
                    rng_random(4 * (stop - start)), z, start, state.nw,
                    state.nt, state.nd, table.alpha, table.beta,
                    table.beta_sum, table.rebuild_every,
                    comp["sup_ptr"], comp["sup_topics"],
                    comp["sup_vals"], comp["sup_cum"], comp["sup_len"],
                    comp["sup_mass"], comp["draws_since"], dense_vals,
                    dense_accept, dense_alias, table.dense_mass,
                    comp["doc_starts"], comp["doc_lengths"],
                    table.doc_z, int_state, mh_out)
        finally:
            table.mh_counts[0] += mh_out[0]
            table.mh_counts[1] += mh_out[1]
            table.rebuilds[0] += mh_out[2]

    def sweep_dense(self, engine) -> None:
        path = engine._path
        table = engine._table
        if (path is None or table is None or not engine._inline_serial
                or table.kind not in _COMPILED_DENSE):
            super().sweep_dense(engine)
            return
        path.begin_sweep()
        state = engine.state
        z = state.z
        chunk = engine.chunk_size
        rng_random = engine.rng.random
        num_topics = state.num_topics
        cumulative = np.empty(num_topics)
        doc_row = np.empty(num_topics)
        cursor = np.full(1, -1, dtype=np.int64)
        for start in range(0, state.num_tokens, chunk):
            stop = min(start + chunk, state.num_tokens)
            words = state.words[start:stop]
            doc_ids = state.doc_ids[start:stop]
            old_topics = z[start:stop].copy()
            uniforms = rng_random(stop - start)
            if table.kind == "lda":
                _dense_lda_chunk(
                    words, doc_ids, old_topics, uniforms, z, start,
                    state.nw, state.nt, state.nd, table.nt_beta,
                    doc_row, cursor, table.alpha, table.beta,
                    table.beta_sum, cumulative)
            elif table.kind == "eda":
                _dense_eda_chunk(
                    words, doc_ids, old_topics, uniforms, z, start,
                    state.nw, state.nt, state.nd, table.phi_by_word,
                    doc_row, cursor, table.alpha, cumulative)
            else:
                _dense_source_chunk(
                    words, doc_ids, old_topics, uniforms, z, start,
                    state.nw, state.nt, state.nd, table.num_free,
                    table.omega, table.sum_delta, table.aug, table.E,
                    table.inverse_plus, table.nt_free, doc_row, cursor,
                    table.alpha, table.beta, table.beta_sum,
                    table.ratio_buf, cumulative)

    def foldin_exact(self, table: FoldInTable, word_ids: np.ndarray,
                     rng: np.random.Generator, scratch) -> np.ndarray:
        length = int(word_ids.shape[0])
        iterations = table.iterations
        num_topics = table.num_topics
        phi_by_word = table.phi_by_word
        if not isinstance(phi_by_word, np.ndarray):
            # Lazy (sharded) phi: gather this document's rows into a
            # dense block and remap word ids onto it.  The gathered
            # rows are byte-identical to the whole-matrix rows, so the
            # compiled kernel consumes the same numbers — and the same
            # RNG stream — as the unsharded path.
            phi_by_word = np.ascontiguousarray(
                phi_by_word.take(word_ids, axis=0))
            word_ids = np.arange(length, dtype=np.int64)
        assignments = rng.integers(0, num_topics, size=length)
        # One draw covering all sweeps: rng.random consumes the bit
        # stream identically in one call or per-sweep calls, so the
        # stream matches the python backend exactly.
        uniforms = rng.random(iterations * length)
        doc_counts = np.empty(num_topics)
        theta = np.empty(num_topics)
        _foldin_exact_doc(word_ids, phi_by_word, table.alpha,
                          iterations, assignments, uniforms,
                          scratch.work, scratch.cumulative,
                          scratch.accumulated, doc_counts, theta)
        return theta

    def foldin_sparse(self, table: FoldInTable, word_ids: np.ndarray,
                      rng: np.random.Generator, scratch) -> np.ndarray:
        length = int(word_ids.shape[0])
        iterations = table.iterations
        num_topics = table.num_topics
        phi_by_word = table.phi_by_word
        prior_mass = table.prior_mass
        alias_accept = table.alias_accept
        alias_topic = table.alias_topic
        if not isinstance(phi_by_word, np.ndarray):
            # Same gather-and-remap as foldin_exact, extended to the
            # per-word alias rows and prior masses (all row-independent
            # quantities, so the gathered values match the unsharded
            # tables bit for bit).
            phi_by_word = np.ascontiguousarray(
                phi_by_word.take(word_ids, axis=0))
            prior_mass = np.ascontiguousarray(
                prior_mass.take(word_ids, axis=0))
            alias_accept = np.ascontiguousarray(
                alias_accept.take(word_ids, axis=0))
            alias_topic = np.ascontiguousarray(
                alias_topic.take(word_ids, axis=0))
            word_ids = np.arange(length, dtype=np.int64)
        assignments = rng.integers(0, num_topics, size=length)
        uniforms = rng.random(iterations * length)
        doc_counts = np.empty(num_topics)
        members = np.empty(num_topics, dtype=np.int64)
        member_pos = np.empty(num_topics, dtype=np.int64)
        theta = np.empty(num_topics)
        _foldin_sparse_doc(word_ids, phi_by_word,
                           prior_mass, alias_accept,
                           alias_topic, table.alpha, iterations,
                           assignments, uniforms, members, member_pos,
                           scratch.cumulative, scratch.accumulated,
                           doc_counts, theta)
        return theta


register_backend(NumbaBackend())
