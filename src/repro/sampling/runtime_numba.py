"""The compiled token-loop backend (optional, requires :mod:`numba`).

Importing this module requires numba; :mod:`repro.sampling.runtime`
imports it inside a ``try`` so machines without numba simply keep the
python backend.  On machines with numba, :class:`NumbaBackend`
registers under ``"numba"`` and ``backend="auto"`` resolves to it.

What is compiled — and what the compilation preserves:

* **Dense LDA / EDA lanes**: the per-token weight, running cumulative
  sum and right-bisection are written as sequential scalar loops, the
  same association order as the python backend's ``np.cumsum`` (NumPy's
  cumsum is sequential, unlike its pairwise ``sum``), so these lanes
  are **draw-for-draw identical** to the python backend.
* **Dense Source-LDA lane**: the E-column refresh contracts
  ``aug[t] @ ratio`` with an explicit loop; BLAS and a scalar loop are
  not guaranteed to round identically, so this lane is pinned
  **distributionally** — the same contract the sparse engine
  established in PR 2 (the per-token conditional agrees to float
  reassociation).
* **Fold-in exact lane**: sequential cumsum again — draw-identical.
* **Fold-in sparse lane**: the document-bucket mass uses a scalar
  accumulation where the python backend uses (pairwise) ``np.sum`` —
  distributionally equivalent.

Sparse *training* sweeps are not compiled yet: their bucket walks
mutate list-based membership structures per token, and the bucketed
tables are exactly what a future compiled sparse lane should inherit
(see ROADMAP).  The backend subclasses :class:`PythonBackend`, so every
lane it does not override falls through to the interpreted loop —
requesting ``backend="numba"`` never changes which lanes exist, only
how fast the compiled ones run.

All randomness stays outside the compiled region: uniforms are
pre-drawn per chunk/sweep with the caller's ``rng`` (one uniform per
token, the library-wide contract), so the compiled loops are pure
functions of (counts, caches, uniforms) and swapping backends never
shifts a shared stream.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.sampling.runtime import (FoldInTable, PythonBackend,
                                    register_backend)

#: Lanes `sweep_dense` compiles; anything else falls through.
_COMPILED_DENSE = ("lda", "eda", "source")


@njit(cache=True)
def _searchsorted_right(cumulative, n, x):
    """First index with ``cumulative[i] > x`` (np.searchsorted
    side="right" on the first ``n`` entries)."""
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True)
def _last_positive_index(cumulative, n):
    """First index reaching the total — the last positive-weight entry
    (np.searchsorted side="left" for the boundary clamp)."""
    total = cumulative[n - 1]
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < total:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True)
def _dense_lda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                     nw, nt, nd, nt_beta, doc_row, cursor,
                     alpha, beta, beta_sum, cumulative):
    """One chunk of the dense LDA token loop (sequential cumsum: the
    draws match the python backend bit for bit).  ``cursor[0]`` carries
    the current document across chunk calls; ``z`` is written per token
    so a mid-chunk error leaves the same single-token failure state as
    the interpreted loop."""
    num_topics = nt_beta.shape[0]
    current_doc = cursor[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if doc != current_doc:
            for t in range(num_topics):
                doc_row[t] = nd[doc, t] + alpha
            current_doc = doc
        else:
            doc_row[old] = nd[doc, old] + alpha
        nt_beta[old] = nt[old] + beta_sum
        acc = 0.0
        for t in range(num_topics):
            acc += (nw[word, t] + beta) / nt_beta[t] * doc_row[t]
            cumulative[t] = acc
        total = cumulative[num_topics - 1]
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        new = _searchsorted_right(cumulative, num_topics,
                                  uniforms[i] * total)
        if new == num_topics:
            new = _last_positive_index(cumulative, num_topics)
        z[start + i] = new
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        doc_row[new] = nd[doc, new] + alpha
        nt_beta[new] = nt[new] + beta_sum
    cursor[0] = current_doc


@njit(cache=True)
def _dense_eda_chunk(words, doc_ids, old_topics, uniforms, z, start,
                     nw, nt, nd, phi_by_word, doc_row, cursor,
                     alpha, cumulative):
    """One chunk of the dense fixed-phi (EDA) token loop."""
    num_topics = nt.shape[0]
    current_doc = cursor[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if doc != current_doc:
            for t in range(num_topics):
                doc_row[t] = nd[doc, t] + alpha
            current_doc = doc
        else:
            doc_row[old] = nd[doc, old] + alpha
        acc = 0.0
        for t in range(num_topics):
            acc += phi_by_word[word, t] * doc_row[t]
            cumulative[t] = acc
        total = cumulative[num_topics - 1]
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        new = _searchsorted_right(cumulative, num_topics,
                                  uniforms[i] * total)
        if new == num_topics:
            new = _last_positive_index(cumulative, num_topics)
        z[start + i] = new
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        doc_row[new] = nd[doc, new] + alpha
    cursor[0] = current_doc


@njit(cache=True)
def _refresh_source_column(topic, k, nt, sum_delta, aug, E, ratio):
    """The ``E[:, t] = aug[t] @ (omega_over) `` refresh, scalar loops.
    ``ratio`` already holds ``omega``; it is overwritten in place."""
    t = topic - k
    num_nodes = ratio.shape[0]
    for a in range(num_nodes):
        ratio[a] = ratio[a] / (nt[topic] + sum_delta[t, a])
    rows = E.shape[0]
    for r in range(rows):
        acc = 0.0
        for a in range(num_nodes):
            acc += aug[t, r, a] * ratio[a]
        E[r, t] = acc


@njit(cache=True)
def _dense_source_chunk(words, doc_ids, old_topics, uniforms, z, start,
                        nw, nt, nd, num_free, omega, sum_delta, aug,
                        E, inverse_plus, nt_free, doc_row, cursor,
                        alpha, beta, beta_sum, ratio, cumulative):
    """One chunk of the dense Source-LDA token loop.

    ``inverse_plus[w, s]`` is the unique-value row index (``inverse + 1``)
    of word ``w`` under source topic ``s``, so ``D[w, s] =
    E[inverse_plus[w, s], s]`` and ``C[s] = E[0, s]``.  The E-column
    refresh reassociates the quadrature contraction (scalar loop vs
    BLAS), so this lane is distributionally — not draw-for-draw —
    equivalent to the python backend.
    """
    num_topics = nt.shape[0]
    k = num_free
    num_nodes = omega.shape[0]
    current_doc = cursor[0]
    for i in range(words.shape[0]):
        word = words[i]
        doc = doc_ids[i]
        old = old_topics[i]
        nw[word, old] -= 1.0
        nt[old] -= 1.0
        nd[doc, old] -= 1.0
        if doc != current_doc:
            for t in range(num_topics):
                doc_row[t] = nd[doc, t] + alpha
            current_doc = doc
        else:
            doc_row[old] = nd[doc, old] + alpha
        if old < k:
            nt_free[old] = nt[old] + beta_sum
        else:
            for a in range(num_nodes):
                ratio[a] = omega[a]
            _refresh_source_column(old, k, nt, sum_delta, aug, E, ratio)
        acc = 0.0
        for t in range(k):
            acc += (nw[word, t] + beta) / nt_free[t] * doc_row[t]
            cumulative[t] = acc
        for t in range(k, num_topics):
            s = t - k
            weight = (nw[word, t] * E[0, s]
                      + E[inverse_plus[word, s], s]) * doc_row[t]
            acc += weight
            cumulative[t] = acc
        total = cumulative[num_topics - 1]
        if not (0.0 < total < np.inf):
            raise ValueError(
                "topic weights must have positive finite mass")
        new = _searchsorted_right(cumulative, num_topics,
                                  uniforms[i] * total)
        if new == num_topics:
            new = _last_positive_index(cumulative, num_topics)
        z[start + i] = new
        nw[word, new] += 1.0
        nt[new] += 1.0
        nd[doc, new] += 1.0
        doc_row[new] = nd[doc, new] + alpha
        if new < k:
            nt_free[new] = nt[new] + beta_sum
        else:
            for a in range(num_nodes):
                ratio[a] = omega[a]
            _refresh_source_column(new, k, nt, sum_delta, aug, E, ratio)
    cursor[0] = current_doc


@njit(cache=True)
def _foldin_exact_doc(word_ids, phi_by_word, alpha, iterations,
                      init_assignments, uniforms, work, cumulative,
                      accumulated, doc_counts, theta_out):
    """Compiled fold-in, exact lane: sequential cumsum per token —
    draw-identical to the python backend given the same pre-drawn
    ``init_assignments`` and ``uniforms``."""
    length = word_ids.shape[0]
    num_topics = doc_counts.shape[0]
    for t in range(num_topics):
        doc_counts[t] = 0.0
        accumulated[t] = 0.0
    for i in range(length):
        doc_counts[init_assignments[i]] += 1.0
    burn_in = min(max(1, iterations // 2), iterations - 1)
    samples = 0
    for iteration in range(iterations):
        base = iteration * length
        for position in range(length):
            word = word_ids[position]
            doc_counts[init_assignments[position]] -= 1.0
            acc = 0.0
            for t in range(num_topics):
                work[t] = phi_by_word[word, t] * (doc_counts[t] + alpha)
                acc += work[t]
                cumulative[t] = acc
            total = cumulative[num_topics - 1]
            if not (0.0 < total < np.inf):
                raise ValueError(
                    "categorical weights must have positive finite mass")
            topic = _searchsorted_right(cumulative, num_topics,
                                        uniforms[base + position] * total)
            if topic >= num_topics:
                topic = _last_positive_index(cumulative, num_topics)
            init_assignments[position] = topic
            doc_counts[topic] += 1.0
        if iteration >= burn_in:
            for t in range(num_topics):
                accumulated[t] += doc_counts[t]
            samples += 1
    denom = length + num_topics * alpha
    scale = 1.0 / max(samples, 1)
    for t in range(num_topics):
        theta_out[t] = (accumulated[t] * scale + alpha) / denom


@njit(cache=True)
def _foldin_sparse_doc(word_ids, phi_by_word, prior_mass, alias_accept,
                       alias_topic, alpha, iterations, init_assignments,
                       uniforms, members, member_pos, r_cum, accumulated,
                       doc_counts, theta_out):
    """Compiled fold-in, sparse lane: prior/document bucket split with
    O(1) alias prior hits.  ``members``/``member_pos`` implement the
    TopicSet (swap-remove membership) as flat arrays; bucket masses
    accumulate sequentially, so this lane is distributionally (not
    draw-for-draw) equivalent to the python backend's pairwise sums.
    """
    length = word_ids.shape[0]
    num_topics = doc_counts.shape[0]
    for t in range(num_topics):
        doc_counts[t] = 0.0
        accumulated[t] = 0.0
        member_pos[t] = -1
    for i in range(length):
        doc_counts[init_assignments[i]] += 1.0
    num_members = 0
    for t in range(num_topics):
        if doc_counts[t] > 0.0:
            members[num_members] = t
            member_pos[t] = num_members
            num_members += 1
    burn_in = min(max(1, iterations // 2), iterations - 1)
    samples = 0
    for iteration in range(iterations):
        base = iteration * length
        for position in range(length):
            old = init_assignments[position]
            doc_counts[old] -= 1.0
            if doc_counts[old] == 0.0:
                # swap-remove from the membership array
                idx = member_pos[old]
                num_members -= 1
                last = members[num_members]
                members[idx] = last
                member_pos[last] = idx
                member_pos[old] = -1
            word = word_ids[position]
            r_mass = 0.0
            for m in range(num_members):
                t = members[m]
                r_mass += doc_counts[t] * phi_by_word[word, t]
                r_cum[m] = r_mass
            s_mass = prior_mass[word]
            total = r_mass + s_mass
            if not (0.0 < total < np.inf):
                raise ValueError(
                    "categorical weights must have positive finite mass")
            x = uniforms[base + position] * total
            if x < r_mass:
                index = _searchsorted_right(r_cum, num_members, x)
                if index >= num_members:
                    index = _last_positive_index(r_cum, num_members)
                topic = members[index]
            else:
                v = (x - r_mass) / s_mass
                scaled = v * num_topics
                cell = int(scaled)
                if cell >= num_topics:
                    cell = num_topics - 1
                if (scaled - cell) < alias_accept[word, cell]:
                    topic = cell
                else:
                    topic = alias_topic[word, cell]
            init_assignments[position] = topic
            if doc_counts[topic] == 0.0:
                members[num_members] = topic
                member_pos[topic] = num_members
                num_members += 1
            doc_counts[topic] += 1.0
        if iteration >= burn_in:
            for t in range(num_topics):
                accumulated[t] += doc_counts[t]
            samples += 1
    denom = length + num_topics * alpha
    scale = 1.0 / max(samples, 1)
    for t in range(num_topics):
        theta_out[t] = (accumulated[t] * scale + alpha) / denom


class NumbaBackend(PythonBackend):
    """Compiled dense and fold-in lanes; everything else inherits the
    interpreted loops from :class:`PythonBackend` (per-lane fallback —
    see the module docstring for the lane-by-lane equivalence
    contract)."""

    name = "numba"

    def sweep_dense(self, engine) -> None:
        path = engine._path
        table = engine._table
        if (path is None or table is None or not engine._inline_serial
                or table.kind not in _COMPILED_DENSE):
            super().sweep_dense(engine)
            return
        path.begin_sweep()
        state = engine.state
        z = state.z
        chunk = engine.chunk_size
        rng_random = engine.rng.random
        num_topics = state.num_topics
        cumulative = np.empty(num_topics)
        doc_row = np.empty(num_topics)
        cursor = np.full(1, -1, dtype=np.int64)
        for start in range(0, state.num_tokens, chunk):
            stop = min(start + chunk, state.num_tokens)
            words = state.words[start:stop]
            doc_ids = state.doc_ids[start:stop]
            old_topics = z[start:stop].copy()
            uniforms = rng_random(stop - start)
            if table.kind == "lda":
                _dense_lda_chunk(
                    words, doc_ids, old_topics, uniforms, z, start,
                    state.nw, state.nt, state.nd, table.nt_beta,
                    doc_row, cursor, table.alpha, table.beta,
                    table.beta_sum, cumulative)
            elif table.kind == "eda":
                _dense_eda_chunk(
                    words, doc_ids, old_topics, uniforms, z, start,
                    state.nw, state.nt, state.nd, table.phi_by_word,
                    doc_row, cursor, table.alpha, cumulative)
            else:
                _dense_source_chunk(
                    words, doc_ids, old_topics, uniforms, z, start,
                    state.nw, state.nt, state.nd, table.num_free,
                    table.omega, table.sum_delta, table.aug, table.E,
                    table.inverse_plus, table.nt_free, doc_row, cursor,
                    table.alpha, table.beta, table.beta_sum,
                    table.ratio_buf, cumulative)

    def foldin_exact(self, table: FoldInTable, word_ids: np.ndarray,
                     rng: np.random.Generator, scratch) -> np.ndarray:
        length = int(word_ids.shape[0])
        iterations = table.iterations
        num_topics = table.num_topics
        assignments = rng.integers(0, num_topics, size=length)
        # One draw covering all sweeps: rng.random consumes the bit
        # stream identically in one call or per-sweep calls, so the
        # stream matches the python backend exactly.
        uniforms = rng.random(iterations * length)
        doc_counts = np.empty(num_topics)
        theta = np.empty(num_topics)
        _foldin_exact_doc(word_ids, table.phi_by_word, table.alpha,
                          iterations, assignments, uniforms,
                          scratch.work, scratch.cumulative,
                          scratch.accumulated, doc_counts, theta)
        return theta

    def foldin_sparse(self, table: FoldInTable, word_ids: np.ndarray,
                      rng: np.random.Generator, scratch) -> np.ndarray:
        length = int(word_ids.shape[0])
        iterations = table.iterations
        num_topics = table.num_topics
        assignments = rng.integers(0, num_topics, size=length)
        uniforms = rng.random(iterations * length)
        doc_counts = np.empty(num_topics)
        members = np.empty(num_topics, dtype=np.int64)
        member_pos = np.empty(num_topics, dtype=np.int64)
        theta = np.empty(num_topics)
        _foldin_sparse_doc(word_ids, table.phi_by_word,
                           table.prior_mass, table.alias_accept,
                           table.alias_topic, table.alpha, iterations,
                           assignments, uniforms, members, member_pos,
                           scratch.cumulative, scratch.accumulated,
                           doc_counts, theta)
        return theta


register_backend(NumbaBackend())
